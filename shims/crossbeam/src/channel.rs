//! Bounded multi-producer multi-consumer channel.
//!
//! A small, faithful subset of `crossbeam-channel`: [`bounded`] returns a
//! cloneable [`Sender`]/[`Receiver`] pair over a fixed-capacity queue.
//! Producers block (or report [`TrySendError::Full`]) once the queue holds
//! `cap` messages, which is what gives the engine's shard handoff its
//! backpressure. The channel disconnects when every handle on one side is
//! dropped: `recv` then drains the remaining messages and reports
//! [`RecvError`]; `send` reports [`SendError`] immediately.
//!
//! Built on `std::sync::{Mutex, Condvar}` — no fancy lock-free ring, but the
//! semantics match the real crate for the operations provided.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message back to the caller.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message is handed back.
    Full(T),
    /// Every receiver has been dropped; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the queue is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty but senders remain.
    Empty,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// The sending half of a channel created by [`bounded`]. Cloneable; the
/// channel disconnects for receivers once the last clone is dropped.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel created by [`bounded`]. Cloneable; the
/// channel disconnects for senders once the last clone is dropped.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a bounded channel holding at most `cap` in-flight messages.
///
/// # Panics
///
/// Panics if `cap` is zero — zero-capacity rendezvous channels are not
/// supported by this shim.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    let inner = Arc::new(Inner {
        state: Mutex::new(State { queue: VecDeque::with_capacity(cap), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`.
    ///
    /// # Errors
    ///
    /// [`SendError`] with the value if every receiver has been dropped.
    ///
    /// # Panics
    ///
    /// Panics if the channel mutex was poisoned by a panicking thread.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.inner.cap {
                state.queue.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueues `value` without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] if the queue is at capacity, or
    /// [`TrySendError::Disconnected`] if every receiver has been dropped;
    /// both hand the value back.
    ///
    /// # Panics
    ///
    /// Panics if the channel mutex was poisoned by a panicking thread.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.inner.cap {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives and returns it. Messages already in the
    /// queue are delivered even after every sender has been dropped.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the queue is empty and every sender has been
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if the channel mutex was poisoned by a panicking thread.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Number of messages currently queued.  A snapshot: by the time the
    /// caller acts on it other threads may have enqueued or dequeued — fine
    /// for telemetry (queue-depth high-water sampling), not for
    /// synchronisation.
    ///
    /// # Panics
    ///
    /// Panics if the channel mutex was poisoned by a panicking thread.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("channel poisoned").queue.len()
    }

    /// True when no message is currently queued (same snapshot caveat as
    /// [`Receiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequeues a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if the queue is momentarily empty, or
    /// [`TryRecvError::Disconnected`] once it is empty and every sender has
    /// been dropped.
    ///
    /// # Panics
    ///
    /// Panics if the channel mutex was poisoned by a panicking thread.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        if let Some(value) = state.queue.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").receivers += 1;
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = match self.inner.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            drop(state);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = match self.inner.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn try_send_reports_full_and_returns_the_message() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(2).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn len_reports_queued_messages() {
        let (tx, rx) = bounded(4);
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }

    #[test]
    fn dropping_all_senders_disconnects_after_draining() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        // A clone keeps the channel alive.
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_the_receiver_fails_sends() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn blocked_sender_wakes_when_room_appears() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let tx = tx.clone();
            s.spawn(move || tx.send(1).unwrap());
            // Make room; the blocked sender must complete for scope to join.
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        });
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (tx, rx) = bounded(8);
        let total = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..3 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..3 {
                let rx = rx.clone();
                let (total, count) = (&total, &count);
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 300);
        // Sum of p*100+i over p in 0..3, i in 0..100.
        let expected: usize = (0..3).flat_map(|p| (0..100).map(move |i| p * 100 + i)).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }
}
