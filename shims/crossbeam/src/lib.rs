//! Offline stand-in for the `crossbeam` crate.
//!
//! Two entry points are provided: the scoped-thread API ([`scope`]),
//! implemented on top of `std::thread::scope` (stable since Rust 1.63), and
//! a bounded multi-producer multi-consumer channel ([`channel::bounded`])
//! implemented over `std::sync::{Mutex, Condvar}`. Semantics mirror the real
//! crate: all spawned threads are joined before `scope` returns, a panicking
//! child surfaces as `Err` instead of unwinding through the caller, and a
//! channel disconnects when every handle on one side is dropped.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

pub mod channel;

/// A scope handle passed to the closure given to [`scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The child receives a scope reference so it can
    /// spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned.
///
/// All threads spawned inside are joined before this returns. Returns `Err`
/// with the first panic payload if the closure or any child panicked.
///
/// # Errors
///
/// The boxed panic payload of whichever thread panicked first.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_is_reported_not_propagated() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child failed"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(scope(|_| 42).unwrap(), 42);
    }
}
