//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the *deterministic subset* of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_bool`], [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — fast, full-period over 2^64 seeds, and more
//! than adequate for seeded test-instance generation (nothing in this
//! workspace needs cryptographic or statistically pristine randomness). All
//! experiments remain bit-for-bit reproducible given a seed, which is the only
//! property the callers rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bounded(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsMutStdRng,
    {
        T::sample(self.as_mut_std())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsMutStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self.as_mut_std()) < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsMutStdRng,
    {
        range.sample_from(self.as_mut_std())
    }
}

/// Helper enabling the blanket default methods above to reach the concrete
/// generator state.
pub trait AsMutStdRng {
    /// The concrete generator.
    fn as_mut_std(&mut self) -> &mut rngs::StdRng;
}

/// Concrete generators.
pub mod rngs {
    use super::{AsMutStdRng, Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Uniform value in `0..bound` (`bound > 0`) via 128-bit widening
        /// multiply (Lemire's method, without the rejection refinement —
        /// the tiny modulo bias is irrelevant for test-instance generation).
        pub(crate) fn bounded(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl AsMutStdRng for StdRng {
        fn as_mut_std(&mut self) -> &mut StdRng {
            self
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::rngs::StdRng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place, uniformly over permutations.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.bounded(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let z: u32 = rng.gen_range(0..4u32);
            assert!(z < 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
