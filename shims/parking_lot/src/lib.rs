//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns a guard directly instead of a `Result`). A poisoned lock
//! — a thread panicking while holding the guard — is treated the way
//! `parking_lot` treats it: the data stays accessible to other threads.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
