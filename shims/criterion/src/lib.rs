//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timing loop instead of criterion's statistical machinery.
//!
//! When the harness binary is invoked with `--test` (as `cargo test` does for
//! bench targets with `harness = false`), every benchmark body runs exactly
//! once so the suite doubles as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("build", 64)` renders as `build/64`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// Passed to every benchmark body; runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed repetitions per benchmark (clamped to 1 in test mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement windows.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let iters = if self.test_mode { 1 } else { self.samples };
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        body(&mut b);
        if !self.test_mode && b.iters > 0 {
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            println!("{}/{}: {:>12.3} µs/iter ({} iters)", self.name, id, per_iter * 1e6, b.iters);
        }
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.id.clone();
        self.run(&name, |b| body(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into();
        self.run(&name, |b| body(b));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Creates a harness, detecting `--test` mode from the command line.
    pub fn new_from_args() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup { name: name.into(), samples: 10, test_mode, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, body);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("build", 64).id, "build/64");
    }
}
