//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`), [`ProptestConfig`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Instead of proptest's adaptive generation and shrinking, cases are
//! drawn from a fixed-seed SplitMix64 stream, so every run of the suite
//! exercises the same deterministic set of cases. Failures surface as plain
//! assertion panics (the stream is deterministic, so re-running reproduces
//! the failing case); there is no shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 raw bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every produced value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a normal test that samples its arguments `cases` times from a
/// deterministic stream and runs the body for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seed_from_u64(0xfeed_5eed ^ stringify!($name).len() as u64);
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let one_case = move || $body;
                    one_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::seed_from_u64(2);
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(a in 0u32..100, b in 0u64..50) {
            prop_assume!(a > 0);
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
        }
    }
}
