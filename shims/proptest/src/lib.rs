//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`), [`ProptestConfig`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Instead of proptest's adaptive generation, cases are drawn from a
//! fixed-seed SplitMix64 stream, so every run of the suite exercises the
//! same deterministic set of cases.
//!
//! **Shrinking**: when a case fails, the runner ([`find_minimal_failure`])
//! greedily shrinks it — integer strategies try halving the offset toward
//! the range minimum, then a decrement; tuples shrink one component at a
//! time — re-running the body on each candidate until no candidate fails
//! any more, and the test panics with the *smallest* failing case found
//! (plus the original assertion message).  `prop_map` values do not shrink
//! (the mapping is not invertible).  Shrinking is deterministic, so the
//! reported minimal case is stable across runs.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 raw bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Shrink candidates for `value`, each strictly "smaller", tried in
    /// order by the failure minimiser.  Integer ranges yield the
    /// halved-offset value (toward the range minimum) then a decrement;
    /// tuples shrink one component at a time; the default (and `prop_map`,
    /// whose mapping is not invertible) yields nothing.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transforms every produced value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bounded(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    let half = self.start + (*value - self.start) / 2;
                    out.push(half);
                    let dec = *value - 1;
                    if dec != half {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng),)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.0.shrink(&value.0).into_iter().map(|a| (a,)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B)
where
    A::Value: Clone,
    B::Value: Clone,
{
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> =
            self.0.shrink(&value.0).into_iter().map(|a| (a, value.1.clone())).collect();
        out.extend(self.1.shrink(&value.1).into_iter().map(|b| (value.0.clone(), b)));
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone(), value.2.clone()))
            .collect();
        out.extend(
            self.1.shrink(&value.1).into_iter().map(|b| (value.0.clone(), b, value.2.clone())),
        );
        out.extend(
            self.2.shrink(&value.2).into_iter().map(|c| (value.0.clone(), value.1.clone(), c)),
        );
        out
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Upper bound on shrink-candidate re-runs of the property body after a
    /// failure.  The default (128) minimises typical integer counterexamples
    /// with room to spare while keeping the failure path bounded for
    /// expensive bodies — an opaque *seed* parameter gains nothing from a
    /// long decrement walk, and each attempt re-runs the whole body.  Raise
    /// it for cheap bodies with large shrink distances.
    pub max_shrink_attempts: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_attempts: 128 }
    }
}

/// Renders a caught panic payload (the failing assertion's message).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The property runner behind the [`proptest!`] macro: samples `cases`
/// values from the deterministic stream, runs `body` on each, and — on the
/// first failure — greedily shrinks the failing value through
/// [`Strategy::shrink`] candidates (adopting any candidate that still
/// fails) until no candidate fails or the configured budget
/// ([`ProptestConfig::max_shrink_attempts`] body re-runs) is spent.
///
/// Returns `None` when every case passes, or `Some((minimal_value,
/// assertion_message))` for the smallest failing case found.  Exposed so the
/// shim's own self-tests (and curious callers) can assert on the minimiser
/// without tripping a test panic.
///
/// Each failing shrink candidate panics through the process panic hook
/// before being caught, so a shrinking run emits one trace per adopted
/// candidate.  That noise is deliberate: libtest captures per-test output
/// anyway, and swapping the global hook here would race with (and silence)
/// other tests failing concurrently in the same process.
pub fn find_minimal_failure<S>(
    config: &ProptestConfig,
    seed: u64,
    strategy: &S,
    body: impl Fn(S::Value),
) -> Option<(S::Value, String)>
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    let fails = |value: &S::Value| {
        catch_unwind(AssertUnwindSafe(|| body(value.clone()))).err().map(|p| payload_message(&*p))
    };
    let mut rng = TestRng::seed_from_u64(seed);
    for _case in 0..config.cases {
        let value = strategy.sample(&mut rng);
        let Some(mut message) = fails(&value) else {
            continue;
        };
        let budget = config.max_shrink_attempts as usize;
        let mut minimal = value;
        let mut attempts = 0usize;
        'shrinking: while attempts < budget {
            for candidate in strategy.shrink(&minimal) {
                attempts += 1;
                if let Some(msg) = fails(&candidate) {
                    minimal = candidate;
                    message = msg;
                    continue 'shrinking;
                }
                if attempts >= budget {
                    break;
                }
            }
            break;
        }
        return Some((minimal, message));
    }
    None
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        find_minimal_failure, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a normal test that samples its arguments `cases` times from a
/// deterministic stream and runs the body for each case.  A failing case is
/// shrunk (see [`find_minimal_failure`]) and the test panics with the
/// smallest failing arguments found.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = 0xfeed_5eed ^ stringify!($name).len() as u64;
                let strategy = ($($strat,)+);
                let outcome = $crate::find_minimal_failure(&config, seed, &strategy, |case| {
                    let ($($arg,)+) = case;
                    $body
                });
                if let Some((minimal, message)) = outcome {
                    panic!(
                        "proptest shim: property failed; minimal failing case {:?}: {}",
                        minimal, message
                    );
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::seed_from_u64(2);
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(a in 0u32..100, b in 0u64..50) {
            prop_assume!(a > 0);
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn range_shrink_halves_then_decrements_toward_the_minimum() {
        let strat = 10u32..100;
        assert_eq!(strat.shrink(&90), vec![50, 89]);
        assert_eq!(strat.shrink(&11), vec![10]); // halve and decrement coincide
        assert!(strat.shrink(&10).is_empty(), "the range minimum is terminal");
    }

    #[test]
    fn tuple_shrink_moves_one_component_at_a_time() {
        let strat = (0u32..10, 0u64..10);
        let candidates = strat.shrink(&(4, 6));
        assert_eq!(candidates, vec![(2, 6), (3, 6), (4, 3), (4, 5)]);
        assert!(strat.shrink(&(0, 0)).is_empty());
    }

    /// The shim self-test of the minimiser: a property failing exactly on
    /// `x >= 17` must shrink to 17, whatever the initial failing sample was.
    #[test]
    fn shrinking_reports_the_smallest_failing_case() {
        let config = ProptestConfig::with_cases(64);
        let found = find_minimal_failure(&config, 42, &(0u32..1000,), |(x,)| {
            assert!(x < 17, "x too big: {x}");
        });
        let (minimal, message) = found.expect("the property fails on most samples");
        assert_eq!(minimal, (17,));
        assert_eq!(message, "x too big: 17");
    }

    #[test]
    fn shrinking_minimises_tuples_componentwise() {
        let config = ProptestConfig::with_cases(64);
        let found = find_minimal_failure(&config, 7, &(0u32..500, 0u64..500), |(a, b)| {
            assert!(a < 5 || b < 9, "joint failure");
        });
        assert_eq!(found.expect("the property fails eventually").0, (5, 9));
    }

    #[test]
    fn shrink_budget_bounds_body_reruns() {
        use std::cell::Cell;
        let runs = Cell::new(0u32);
        let config = ProptestConfig { cases: 1, max_shrink_attempts: 10 };
        // Everything fails, so shrinking halves then decrements toward 0;
        // the budget must cut the walk after 10 candidate re-runs (plus the
        // initial sample), reporting the best value reached so far.
        let found = find_minimal_failure(&config, 1, &(0u64..1_000_000,), |(_x,)| {
            runs.set(runs.get() + 1);
            panic!("always fails");
        });
        assert!(found.is_some());
        assert!(runs.get() <= 11, "budget exceeded: {} body runs", runs.get());
    }

    #[test]
    fn passing_properties_report_no_failure() {
        let config = ProptestConfig::with_cases(32);
        let found = find_minimal_failure(&config, 3, &(0u32..100,), |(x,)| {
            assert!(x < 100);
        });
        assert!(found.is_none());
    }

    #[test]
    fn assume_skips_do_not_count_as_failures_during_shrinking() {
        // The failing region is x >= 20 with the point 5 assumed away: a
        // skipped candidate must read as "pass" (never adopted, never a
        // crash), leaving 20 as the true minimum.
        let config = ProptestConfig::with_cases(64);
        let found = find_minimal_failure(&config, 11, &(0u32..1000,), |(x,)| {
            prop_assume!(x != 5);
            assert!(x < 20);
        });
        let (minimal, _) = found.expect("values >= 20 fail");
        assert_eq!(minimal, (20,));
    }
}
