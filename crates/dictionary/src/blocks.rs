//! The randomized block distribution of Lemma 1 / Lemma 4.
//!
//! Every node is assigned a set `S_v` of blocks such that, for every node `v`,
//! every level `i < k`, and every prefix `τ ∈ Σ^i`, some node of the level-`i`
//! neighborhood `N_i(v)` holds a block whose digit string starts with `τ` —
//! while each node holds only `O(log n)` blocks.
//!
//! The construction follows the paper's probabilistic method (each node picks
//! each block independently with probability `c·ln n / q^{k−1}`), followed by
//! a deterministic *repair pass* that inserts a block wherever a `(v, i, τ)`
//! requirement is still unsatisfied. The coverage property therefore holds
//! with certainty; the repair count and the block-set sizes are reported so
//! experiment E3 can confirm they behave as the lemma predicts.

use crate::digits::{AddressSpace, BlockId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_graph::NodeId;
use rtr_metric::RoundtripOrder;
use std::collections::HashSet;

/// Tunables of the randomized distribution.
#[derive(Debug, Clone, Copy)]
pub struct DistributionParams {
    /// The constant `c` in the selection probability `c·ln n / q^{k−1}`.
    pub density: f64,
    /// RNG seed (the distribution is deterministic given the seed).
    pub seed: u64,
}

impl Default for DistributionParams {
    fn default() -> Self {
        DistributionParams { density: 4.0, seed: 0xb10c_5eed }
    }
}

/// The assignment `v ↦ S_v` produced by [`BlockDistribution::build`].
#[derive(Debug, Clone)]
pub struct BlockDistribution {
    space: AddressSpace,
    k: u32,
    /// `sets[v]`: sorted block ids held by node `v` (indexed by `NodeId`).
    sets: Vec<Vec<BlockId>>,
    /// Number of blocks inserted by the repair pass.
    repairs: usize,
}

impl BlockDistribution {
    /// Builds the distribution for the given address space and roundtrip
    /// neighborhood structure. `space.digit_count()` is the `k` of Lemma 4
    /// (use `k = 2` for Lemma 1).
    ///
    /// # Panics
    ///
    /// Panics if the order and the space disagree on `n`, or `k < 2`.
    pub fn build(space: AddressSpace, order: &RoundtripOrder, params: DistributionParams) -> Self {
        let n = space.name_count();
        let k = space.digit_count();
        assert!(k >= 2, "block distribution needs k >= 2");
        assert_eq!(n, order.node_count(), "order and address space disagree on n");

        let block_count = space.block_count();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let p = (params.density * (n.max(2) as f64).ln() / block_count as f64).min(1.0);

        // Random phase.
        let mut sets: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        for set in sets.iter_mut() {
            for b in 0..block_count as u32 {
                if rng.gen_bool(p) {
                    set.insert(BlockId(b));
                }
            }
        }

        // Repair phase: enforce the Lemma 4 coverage property exactly — over
        // the **unfiltered** prefix set.  A rounded-up space (q^k > n) has
        // blocks with no existing member, but the schemes' dictionary tables
        // still index storage item (2) by block id, so every neighborhood
        // must hold every block: filtering to inhabited prefixes here is what
        // used to leave unlucky small-n/low-density instances without a
        // holder and panic `StretchSix::build_with_order`.
        let mut repairs = 0usize;
        let prefixes_by_level: Vec<Vec<Vec<u32>>> =
            (0..k).map(|i| space.all_prefixes_of_len(i)).collect();
        // Pre-compute, per block, its digit string (used in the covered-prefix
        // scan below).
        let block_digits: Vec<Vec<u32>> =
            (0..block_count as u32).map(|b| space.block_digits(BlockId(b))).collect();

        for vi in 0..n {
            let v = NodeId::from_index(vi);
            for i in 0..k {
                let level_size = RoundtripOrder::level_size(n, i, k);
                let neighborhood = order.neighborhood(v, level_size);
                // Prefixes of length i covered by blocks held inside N_i(v).
                let mut covered: HashSet<&[u32]> = HashSet::new();
                for &w in neighborhood {
                    for b in &sets[w.index()] {
                        covered.insert(&block_digits[b.index()][..i as usize]);
                    }
                }
                for tau in &prefixes_by_level[i as usize] {
                    if covered.contains(tau.as_slice()) {
                        continue;
                    }
                    // Unsatisfied: give a block with prefix τ to the
                    // least-loaded node of the neighborhood, choosing the
                    // block deterministically but spread by the node id.
                    let candidates = space.blocks_with_prefix(tau);
                    debug_assert!(!candidates.is_empty());
                    let pick = candidates[vi % candidates.len()];
                    let target = *neighborhood
                        .iter()
                        .min_by_key(|w| (sets[w.index()].len(), w.0))
                        .expect("neighborhood is never empty");
                    sets[target.index()].insert(pick);
                    repairs += 1;
                }
            }
        }

        let sets: Vec<Vec<BlockId>> = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<BlockId> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        BlockDistribution { space, k, sets, repairs }
    }

    /// The address space the blocks partition.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The Lemma 4 parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The block set `S_v`.
    pub fn set(&self, v: NodeId) -> &[BlockId] {
        &self.sets[v.index()]
    }

    /// Whether node `v` holds `block`.
    pub fn holds(&self, v: NodeId, block: BlockId) -> bool {
        self.sets[v.index()].binary_search(&block).is_ok()
    }

    /// Number of repair insertions that were needed after the random phase.
    pub fn repair_count(&self) -> usize {
        self.repairs
    }

    /// The largest `|S_v|`.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The mean `|S_v|`.
    pub fn avg_set_size(&self) -> f64 {
        let total: usize = self.sets.iter().map(Vec::len).sum();
        total as f64 / self.sets.len().max(1) as f64
    }

    /// Finds the closest node (by `Init_v` order) within the level-`i`
    /// neighborhood of `v` that holds a block whose digit string starts with
    /// `prefix`. This is the dictionary lookup the schemes embed into their
    /// tables (storage item (2) of §2.1 and item (3a) of §3.3).
    pub fn holder_for_prefix(
        &self,
        order: &RoundtripOrder,
        v: NodeId,
        i: u32,
        prefix: &[u32],
    ) -> Option<NodeId> {
        let level_size = RoundtripOrder::level_size(self.space.name_count(), i, self.k);
        order
            .neighborhood(v, level_size)
            .iter()
            .copied()
            .find(|&w| self.sets[w.index()].iter().any(|&b| self.space.block_has_prefix(b, prefix)))
    }

    /// Finds the closest node within `N(v)` (level `1`… for Lemma 1 use
    /// `k = 2`) that holds exactly `block`.
    pub fn holder_of_block(
        &self,
        order: &RoundtripOrder,
        v: NodeId,
        block: BlockId,
    ) -> Option<NodeId> {
        let level_size = RoundtripOrder::level_size(self.space.name_count(), self.k - 1, self.k);
        order.neighborhood(v, level_size).iter().copied().find(|&w| self.holds(w, block))
    }

    /// Verifies the Lemma 4 coverage property from scratch; used by tests and
    /// by experiment E3 (it re-derives the property rather than trusting the
    /// construction).
    pub fn verify_coverage(&self, order: &RoundtripOrder) -> bool {
        let n = self.space.name_count();
        for vi in 0..n {
            let v = NodeId::from_index(vi);
            for i in 0..self.k {
                // The unfiltered prefix set: coverage must also hold for
                // blocks with no existing member, because the schemes look
                // up a holder for every block id of the rounded-up space.
                for tau in self.space.all_prefixes_of_len(i) {
                    if self.holder_for_prefix(order, v, i, &tau).is_none() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits::NodeName;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp, Family};
    use rtr_metric::DistanceMatrix;

    fn setup(n: usize, k: u32, seed: u64) -> (RoundtripOrder, BlockDistribution) {
        let g = Family::Gnp.generate(n, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let order = RoundtripOrder::build(&m);
        let space = AddressSpace::new(g.node_count(), k);
        let dist =
            BlockDistribution::build(space, &order, DistributionParams { density: 4.0, seed });
        (order, dist)
    }

    #[test]
    fn lemma_1_coverage_k2() {
        let (order, dist) = setup(64, 2, 1);
        assert!(dist.verify_coverage(&order));
        // Level 1 with k = 2: every block must have a holder in every N(v).
        let n = order.node_count();
        for vi in 0..n {
            let v = NodeId::from_index(vi);
            for b in 0..dist.space().block_count() as u32 {
                assert!(
                    dist.holder_of_block(&order, v, BlockId(b)).is_some(),
                    "block {b} has no holder near {v}"
                );
            }
        }
    }

    #[test]
    fn lemma_4_coverage_k3_and_k4() {
        for k in [3u32, 4] {
            let (order, dist) = setup(81, k, 7);
            assert!(dist.verify_coverage(&order), "coverage fails for k={k}");
        }
    }

    #[test]
    fn set_sizes_are_logarithmic() {
        // Lemma guarantee: |S_v| = O(log n). With density c = 4 the expected
        // size is 4 ln n; allow a generous constant for the tail + repairs.
        for (n, k) in [(100usize, 2u32), (144, 2), (125, 3)] {
            let (_, dist) = setup(n, k, 3);
            let bound = (16.0 * (n as f64).ln()).ceil() as usize + 8;
            assert!(
                dist.max_set_size() <= bound,
                "n={n} k={k}: max |S_v| = {} exceeds {bound}",
                dist.max_set_size()
            );
            assert!(dist.avg_set_size() <= 8.0 * (n as f64).ln() + 4.0);
        }
    }

    #[test]
    fn repairs_are_rare() {
        // With density 4 the probabilistic argument leaves only a handful of
        // unsatisfied requirements; the repair pass is a safety net, not the
        // main mechanism.
        let (_, dist) = setup(100, 2, 11);
        assert!(dist.repair_count() <= 100, "unexpectedly many repairs: {}", dist.repair_count());
    }

    #[test]
    fn holders_are_inside_the_right_neighborhood() {
        let (order, dist) = setup(49, 2, 5);
        let n = order.node_count();
        let level_size = RoundtripOrder::level_size(n, 1, 2);
        for vi in 0..n {
            let v = NodeId::from_index(vi);
            for b in 0..dist.space().block_count() as u32 {
                let w = dist.holder_of_block(&order, v, BlockId(b)).unwrap();
                assert!(order.in_neighborhood(v, w, level_size));
                assert!(dist.holds(w, BlockId(b)));
            }
        }
    }

    #[test]
    fn determinism_given_seed() {
        let (_, a) = setup(50, 2, 42);
        let (_, b) = setup(50, 2, 42);
        for vi in 0..50 {
            assert_eq!(a.set(NodeId::from_index(vi)), b.set(NodeId::from_index(vi)));
        }
        assert_eq!(a.repair_count(), b.repair_count());
    }

    #[test]
    fn different_seeds_differ() {
        // Use k = 3 so the selection probability is strictly below 1 (for
        // k = 2 and small n the density pushes p to 1 and every node holds
        // every block, which is correct but makes the assignments identical).
        let (_, a) = setup(100, 3, 1);
        let (_, b) = setup(100, 3, 2);
        let same =
            (0..100).all(|vi| a.set(NodeId::from_index(vi)) == b.set(NodeId::from_index(vi)));
        assert!(!same);
    }

    #[test]
    fn works_on_grid_neighborhoods() {
        let g = bidirected_grid(7, 7, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let order = RoundtripOrder::build(&m);
        let space = AddressSpace::new(g.node_count(), 2);
        let dist = BlockDistribution::build(space, &order, DistributionParams::default());
        assert!(dist.verify_coverage(&order));
    }

    #[test]
    fn every_name_is_in_exactly_one_block() {
        let (_, dist) = setup(60, 2, 9);
        let space = dist.space();
        let mut seen = vec![0u32; space.name_count()];
        for b in 0..space.block_count() as u32 {
            for name in space.block_members(BlockId(b)) {
                seen[name.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // And block_of agrees with membership.
        for v in 0..space.name_count() as u32 {
            let b = space.block_of(NodeName(v));
            assert!(space.block_members(b).contains(&NodeName(v)));
        }
    }

    #[test]
    fn empty_blocks_of_a_rounded_up_space_still_get_holders() {
        // n = 30, k = 2 → q = 6 and block 5 starts at name 30: the block
        // exists in the address space but has no member.  With density 0 the
        // random phase assigns nothing, so only the repair pass can give it a
        // holder — exactly the configuration that used to panic
        // `StretchSix::build_with_order` ("Lemma 1 guarantees a holder in
        // every neighborhood") on unlucky small instances.
        let g = strongly_connected_gnp(30, 0.18, 2).unwrap();
        let m = DistanceMatrix::build(&g);
        let order = RoundtripOrder::build(&m);
        let space = AddressSpace::new(30, 2);
        assert!(
            space.block_members(BlockId(space.block_count() as u32 - 1)).is_empty(),
            "test premise: the last block must be empty"
        );
        let dist =
            BlockDistribution::build(space, &order, DistributionParams { density: 0.0, seed: 3 });
        for vi in 0..30 {
            let v = NodeId::from_index(vi);
            for b in 0..dist.space().block_count() as u32 {
                assert!(
                    dist.holder_of_block(&order, v, BlockId(b)).is_some(),
                    "block {b} has no holder near {v}"
                );
            }
        }
        assert!(dist.verify_coverage(&order));
    }

    mod holder_property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            // Small n × many seeds × low density: every block of the
            // (possibly rounded-up) space has a holder in every
            // neighborhood, for k = 2 and k = 3.  This is the property
            // whose violation panicked the sparse suite at e.g. n = 300,
            // seed 7.
            #[test]
            fn every_block_has_a_holder_for_small_n_and_any_seed(
                n in 8usize..72,
                seed in 0u64..10_000,
                k in 2u32..4,
            ) {
                let g = strongly_connected_gnp(n, 0.2, seed).unwrap();
                let m = DistanceMatrix::build(&g);
                let order = RoundtripOrder::build(&m);
                let space = AddressSpace::new(n, k);
                let dist = BlockDistribution::build(
                    space,
                    &order,
                    DistributionParams { density: 1.0, seed },
                );
                for vi in 0..n {
                    let v = NodeId::from_index(vi);
                    for b in 0..dist.space().block_count() as u32 {
                        prop_assert!(
                            dist.holder_of_block(&order, v, BlockId(b)).is_some(),
                            "n={n} k={k} seed={seed}: block {b} has no holder near {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_density_relies_entirely_on_repair_but_still_covers() {
        // Degenerate configuration: the random phase selects nothing, so the
        // repair pass must establish coverage on its own.
        let g = strongly_connected_gnp(36, 0.15, 13).unwrap();
        let m = DistanceMatrix::build(&g);
        let order = RoundtripOrder::build(&m);
        let space = AddressSpace::new(36, 2);
        let dist =
            BlockDistribution::build(space, &order, DistributionParams { density: 0.0, seed: 1 });
        assert!(dist.verify_coverage(&order));
        assert!(dist.repair_count() > 0);
    }
}
