//! Names, base-`n^{1/k}` digit strings, prefixes `σ^i` and blocks `B_α` (§3.1).

use std::fmt;

/// A topology-independent node name: an element of `{0, …, n−1}` assigned to a
/// node by an adversarial permutation (paper §1.1.2).
///
/// Deliberately distinct from `rtr_graph::NodeId` (the topological index used
/// by graph algorithms): routing-scheme code that only has a `NodeName` cannot
/// accidentally use it as topology information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeName(pub u32);

impl NodeName {
    /// The raw name value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The name as a `usize` index into `{0, …, n−1}`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name{}", self.0)
    }
}

/// Identifier of a block `B_α`, `α ∈ Σ^{k−1}`: the integer whose base-`q`
/// representation is `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw block index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// The address space `{0, …, n−1}` viewed as length-`k` strings over the
/// alphabet `Σ = {0, …, q−1}` with `q = ⌈n^{1/k}⌉` (§3.1, §4.1).
///
/// The paper assumes `n` is a perfect `k`-th power "for simplicity"; this
/// implementation handles arbitrary `n` by rounding the alphabet size up, so
/// some blocks near the top of the space may contain fewer than `q` names (or
/// none). All consumers tolerate partially filled blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    n: u32,
    k: u32,
    q: u32,
}

impl AddressSpace {
    /// Creates the address space for `n` names split into `k` digits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n > 0, "address space must be non-empty");
        assert!(k > 0, "need at least one digit");
        let q = Self::alphabet_size(n, k);
        AddressSpace { n: n as u32, k, q }
    }

    /// `⌈n^{1/k}⌉`, the alphabet size `|Σ|`.
    pub fn alphabet_size(n: usize, k: u32) -> u32 {
        if k == 1 {
            return n as u32;
        }
        let mut q = (n as f64).powf(1.0 / k as f64).floor() as u64;
        // Floating point can undershoot; fix up so q^k >= n > (q-1)^k.
        while q.checked_pow(k).is_none_or(|p| p < n as u64) {
            q += 1;
        }
        while q > 1 && (q - 1).checked_pow(k).is_some_and(|p| p >= n as u64) {
            q -= 1;
        }
        q as u32
    }

    /// Number of names `n`.
    pub fn name_count(&self) -> usize {
        self.n as usize
    }

    /// Number of digits `k`.
    pub fn digit_count(&self) -> u32 {
        self.k
    }

    /// Alphabet size `q = |Σ|`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Number of blocks `q^{k−1}` (each block groups the names sharing their
    /// first `k−1` digits).
    pub fn block_count(&self) -> usize {
        (self.q as u64).pow(self.k - 1) as usize
    }

    /// Maximum number of names per block (`q`).
    pub fn block_capacity(&self) -> usize {
        self.q as usize
    }

    /// `⟨u⟩`: the base-`q` representation of `u`, most significant digit
    /// first, padded with leading zeros to exactly `k` digits.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the address space.
    pub fn digits(&self, u: NodeName) -> Vec<u32> {
        assert!(u.0 < self.n, "name {u} outside address space of size {}", self.n);
        let mut out = vec![0u32; self.k as usize];
        let mut rest = u.0;
        for slot in out.iter_mut().rev() {
            *slot = rest % self.q;
            rest /= self.q;
        }
        out
    }

    /// The inverse of [`digits`](Self::digits); returns `None` if the digit
    /// string encodes a value `≥ n` (a hole in a partially filled block).
    pub fn from_digits(&self, digits: &[u32]) -> Option<NodeName> {
        assert_eq!(digits.len(), self.k as usize, "wrong number of digits");
        let mut value: u64 = 0;
        for &d in digits {
            assert!(d < self.q, "digit out of alphabet");
            value = value * self.q as u64 + d as u64;
        }
        if value < self.n as u64 {
            Some(NodeName(value as u32))
        } else {
            None
        }
    }

    /// `σ^i(⟨u⟩)`: the length-`i` prefix of `u`'s digit string.
    pub fn prefix(&self, u: NodeName, i: u32) -> Vec<u32> {
        assert!(i <= self.k, "prefix longer than the digit string");
        let mut d = self.digits(u);
        d.truncate(i as usize);
        d
    }

    /// The length of the longest common prefix of `⟨a⟩` and `⟨b⟩`.
    pub fn common_prefix_len(&self, a: NodeName, b: NodeName) -> u32 {
        let da = self.digits(a);
        let db = self.digits(b);
        da.iter().zip(&db).take_while(|(x, y)| x == y).count() as u32
    }

    /// The block `B_α` containing `u`: `α = σ^{k−1}(⟨u⟩)`.
    pub fn block_of(&self, u: NodeName) -> BlockId {
        let d = self.digits(u);
        let mut idx: u64 = 0;
        for &digit in &d[..(self.k - 1) as usize] {
            idx = idx * self.q as u64 + digit as u64;
        }
        BlockId(idx as u32)
    }

    /// The digit string `α ∈ Σ^{k−1}` identifying `block`.
    pub fn block_digits(&self, block: BlockId) -> Vec<u32> {
        assert!(block.index() < self.block_count(), "block out of range");
        let mut out = vec![0u32; (self.k - 1) as usize];
        let mut rest = block.0;
        for slot in out.iter_mut().rev() {
            *slot = rest % self.q;
            rest /= self.q;
        }
        out
    }

    /// `σ^i(B_α)`: the length-`i` prefix of the block's digit string
    /// (requires `i ≤ k−1`).
    pub fn block_prefix(&self, block: BlockId, i: u32) -> Vec<u32> {
        assert!(i < self.k, "block prefixes have length at most k-1");
        let mut d = self.block_digits(block);
        d.truncate(i as usize);
        d
    }

    /// All existing names in `block` (at most `q`; fewer in the last block of
    /// a non-perfect-power space).
    pub fn block_members(&self, block: BlockId) -> Vec<NodeName> {
        let base: u64 = block.0 as u64 * self.q as u64;
        (0..self.q as u64)
            .map(|off| base + off)
            .filter(|&v| v < self.n as u64)
            .map(|v| NodeName(v as u32))
            .collect()
    }

    /// Whether the block's digit string starts with `prefix`.
    pub fn block_has_prefix(&self, block: BlockId, prefix: &[u32]) -> bool {
        let d = self.block_digits(block);
        prefix.len() <= d.len() && d[..prefix.len()] == *prefix
    }

    /// All blocks whose digit string starts with `prefix` (`|prefix| ≤ k−1`).
    pub fn blocks_with_prefix(&self, prefix: &[u32]) -> Vec<BlockId> {
        assert!(prefix.len() < self.k as usize);
        (0..self.block_count() as u32)
            .map(BlockId)
            .filter(|&b| self.block_has_prefix(b, prefix))
            .collect()
    }

    /// Iterator over all prefixes of length `i` (`Σ^i`), in lexicographic
    /// order. Only prefixes that contain at least one *existing* name are
    /// returned, so consumers never chase empty regions of a rounded-up space.
    pub fn prefixes_of_len(&self, i: u32) -> Vec<Vec<u32>> {
        assert!(i <= self.k);
        let mut out = Vec::new();
        let count = (self.q as u64).pow(i);
        for code in 0..count {
            let digits = self.prefix_digits(code, i);
            // Smallest name with this prefix: pad with zeros.
            let mut full = digits.clone();
            full.resize(self.k as usize, 0);
            if self.from_digits(&full).is_some() {
                out.push(digits);
            }
        }
        out
    }

    /// Every prefix of length `i` of the rounded-up space (`Σ^i`, in
    /// lexicographic order), **including** prefixes whose region contains no
    /// existing name.  For `i < k` each of these prefixes still addresses at
    /// least one block id in `0..q^{k−1}`, and the schemes' dictionary tables
    /// index storage by block id — so coverage passes that must guarantee a
    /// holder for *every block* (Lemma 1's "a holder in every neighborhood")
    /// have to walk this unfiltered set, not [`prefixes_of_len`].
    ///
    /// [`prefixes_of_len`]: Self::prefixes_of_len
    pub fn all_prefixes_of_len(&self, i: u32) -> Vec<Vec<u32>> {
        assert!(i <= self.k);
        let count = (self.q as u64).pow(i);
        (0..count).map(|code| self.prefix_digits(code, i)).collect()
    }

    /// Decodes `code` into its base-`q` digit string of length `i`.
    fn prefix_digits(&self, code: u64, i: u32) -> Vec<u32> {
        let mut digits = vec![0u32; i as usize];
        let mut rest = code;
        for slot in digits.iter_mut().rev() {
            *slot = (rest % self.q as u64) as u32;
            rest /= self.q as u64;
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alphabet_size_is_minimal() {
        assert_eq!(AddressSpace::alphabet_size(16, 2), 4);
        assert_eq!(AddressSpace::alphabet_size(16, 4), 2);
        assert_eq!(AddressSpace::alphabet_size(17, 2), 5);
        assert_eq!(AddressSpace::alphabet_size(1000, 3), 10);
        assert_eq!(AddressSpace::alphabet_size(1, 3), 1);
        assert_eq!(AddressSpace::alphabet_size(7, 1), 7);
    }

    #[test]
    fn digits_roundtrip_for_perfect_square() {
        let space = AddressSpace::new(16, 2);
        assert_eq!(space.q(), 4);
        for v in 0..16u32 {
            let name = NodeName(v);
            let d = space.digits(name);
            assert_eq!(d.len(), 2);
            assert_eq!(space.from_digits(&d), Some(name));
        }
        assert_eq!(space.digits(NodeName(7)), vec![1, 3]);
    }

    #[test]
    fn block_of_groups_consecutive_names() {
        let space = AddressSpace::new(16, 2);
        assert_eq!(space.block_count(), 4);
        for v in 0..16u32 {
            assert_eq!(space.block_of(NodeName(v)).0, v / 4);
        }
        assert_eq!(
            space.block_members(BlockId(2)),
            vec![NodeName(8), NodeName(9), NodeName(10), NodeName(11)]
        );
    }

    #[test]
    fn partial_blocks_in_non_perfect_space() {
        let space = AddressSpace::new(10, 2);
        assert_eq!(space.q(), 4);
        assert_eq!(space.block_count(), 4);
        // Block 2 holds names 8, 9 only; block 3 is empty.
        assert_eq!(space.block_members(BlockId(2)), vec![NodeName(8), NodeName(9)]);
        assert!(space.block_members(BlockId(3)).is_empty());
    }

    #[test]
    fn prefixes_and_common_prefix() {
        let space = AddressSpace::new(27, 3);
        assert_eq!(space.q(), 3);
        let a = NodeName(14); // digits 1,1,2
        let b = NodeName(13); // digits 1,1,1
        assert_eq!(space.digits(a), vec![1, 1, 2]);
        assert_eq!(space.prefix(a, 2), vec![1, 1]);
        assert_eq!(space.common_prefix_len(a, b), 2);
        assert_eq!(space.common_prefix_len(a, a), 3);
        assert_eq!(space.common_prefix_len(a, NodeName(0)), 0);
    }

    #[test]
    fn block_prefix_relation_matches_member_prefixes() {
        // σ^{k−1}(B_α) = σ^{k−1}(⟨u⟩) iff u ∈ B_α (§3.1).
        let space = AddressSpace::new(64, 3);
        for v in 0..64u32 {
            let name = NodeName(v);
            let block = space.block_of(name);
            assert_eq!(space.block_digits(block), space.prefix(name, 2));
            assert!(space.block_members(block).contains(&name));
        }
    }

    #[test]
    fn blocks_with_prefix_partition() {
        let space = AddressSpace::new(81, 4);
        assert_eq!(space.q(), 3);
        let all: usize =
            space.prefixes_of_len(2).iter().map(|p| space.blocks_with_prefix(p).len()).sum();
        assert_eq!(all, space.block_count());
    }

    #[test]
    fn prefixes_of_len_zero_is_the_empty_prefix() {
        let space = AddressSpace::new(9, 2);
        assert_eq!(space.prefixes_of_len(0), vec![Vec::<u32>::new()]);
    }

    #[test]
    #[should_panic(expected = "outside address space")]
    fn digits_reject_out_of_range_names() {
        AddressSpace::new(10, 2).digits(NodeName(10));
    }

    proptest! {
        #[test]
        fn digits_always_roundtrip(n in 2usize..5000, k in 2u32..6, v in 0u32..5000) {
            let space = AddressSpace::new(n, k);
            prop_assume!((v as usize) < n);
            let name = NodeName(v);
            let d = space.digits(name);
            prop_assert_eq!(d.len(), k as usize);
            prop_assert_eq!(space.from_digits(&d), Some(name));
        }

        #[test]
        fn alphabet_size_covers_space(n in 1usize..100_000, k in 1u32..7) {
            let q = AddressSpace::alphabet_size(n, k) as u64;
            prop_assert!(q.pow(k) >= n as u64);
            if q > 1 {
                prop_assert!((q - 1).pow(k) < n as u64);
            }
        }

        #[test]
        fn block_membership_is_consistent(n in 4usize..3000, k in 2u32..5, v in 0u32..3000) {
            let space = AddressSpace::new(n, k);
            prop_assume!((v as usize) < n);
            let name = NodeName(v);
            let b = space.block_of(name);
            prop_assert!(b.index() < space.block_count());
            prop_assert!(space.block_members(b).contains(&name));
            prop_assert!(space.block_members(b).len() <= space.block_capacity());
        }
    }
}
