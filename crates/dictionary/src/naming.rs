//! The §1.1.2 name-independence reduction: arbitrary unique node names are
//! hashed into `{0, …, n−1}` with a universal hash function, and collisions
//! are absorbed by letting a dictionary slot hold a small bucket of original
//! names. The paper shows this costs only a constant blow-up in table size;
//! experiment E11 measures that constant.

use crate::digits::NodeName;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A Mersenne-like prime comfortably larger than any 61-bit name, used by the
/// Carter–Wegman style hash `h(x) = ((a·x + b) mod p) mod n`.
const PRIME: u128 = (1u128 << 61) - 1;

/// Errors from building a [`NameRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NamingError {
    /// The same original name appeared twice (the model requires unique names).
    DuplicateName(u64),
    /// No names were supplied.
    Empty,
}

impl fmt::Display for NamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamingError::DuplicateName(x) => write!(f, "duplicate original name {x}"),
            NamingError::Empty => write!(f, "no names supplied"),
        }
    }
}

impl Error for NamingError {}

/// The hashing reduction: maps each original (adversarially chosen, unique)
/// name to a slot in `{0, …, n−1}`.
#[derive(Debug, Clone)]
pub struct NameRegistry {
    n: usize,
    a: u64,
    b: u64,
    /// `buckets[slot]`: the original names mapped to this slot (sorted).
    buckets: Vec<Vec<u64>>,
    /// Original name → slot.
    slot_of: HashMap<u64, u32>,
}

impl NameRegistry {
    /// Builds the registry for the given original names. The hash function is
    /// drawn from the universal family using `seed` — crucially *after* the
    /// adversary fixed the names, exactly as footnote 5 of the paper requires.
    ///
    /// # Errors
    ///
    /// [`NamingError::DuplicateName`] if a name repeats, [`NamingError::Empty`]
    /// if `names` is empty.
    pub fn new(names: &[u64], seed: u64) -> Result<Self, NamingError> {
        if names.is_empty() {
            return Err(NamingError::Empty);
        }
        let n = names.len();
        // Derive (a, b) from the seed with a splitmix step; a must be nonzero.
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            s ^= s >> 30;
            s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            s ^= s >> 27;
            s = s.wrapping_mul(0x94d0_49bb_1331_11eb);
            s ^= s >> 31;
            s
        };
        let a = (next() % (PRIME as u64 - 1)) + 1;
        let b = next() % PRIME as u64;

        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut slot_of = HashMap::with_capacity(n);
        for &x in names {
            let slot = Self::hash(a, b, n, x);
            if slot_of.insert(x, slot).is_some() {
                return Err(NamingError::DuplicateName(x));
            }
            buckets[slot as usize].push(x);
        }
        for bucket in &mut buckets {
            bucket.sort_unstable();
        }
        Ok(NameRegistry { n, a, b, buckets, slot_of })
    }

    fn hash(a: u64, b: u64, n: usize, x: u64) -> u32 {
        let v = (a as u128 * x as u128 + b as u128) % PRIME;
        (v % n as u128) as u32
    }

    /// Number of slots (`n`).
    pub fn slot_count(&self) -> usize {
        self.n
    }

    /// The dictionary slot of an original name, if it was registered.
    pub fn slot(&self, original: u64) -> Option<NodeName> {
        self.slot_of.get(&original).map(|&s| NodeName(s))
    }

    /// The slot any 64-bit name hashes to under this registry's hash function,
    /// whether or not it was registered — what a node computes locally before
    /// consulting the dictionary holder responsible for that slot.
    pub fn hash_slot(&self, x: u64) -> NodeName {
        NodeName(Self::hash(self.a, self.b, self.n, x))
    }

    /// The original names sharing `slot`.
    pub fn bucket(&self, slot: NodeName) -> &[u64] {
        &self.buckets[slot.index()]
    }

    /// Number of slots holding at least two names.
    pub fn collision_slots(&self) -> usize {
        self.buckets.iter().filter(|b| b.len() >= 2).count()
    }

    /// Number of names beyond the first in each slot, summed — the extra
    /// dictionary entries the reduction costs.
    pub fn excess_entries(&self) -> usize {
        self.buckets.iter().map(|b| b.len().saturating_sub(1)).sum()
    }

    /// The largest bucket (the worst-case per-slot blow-up).
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The table blow-up factor the reduction induces: total stored entries
    /// divided by `n` (the paper argues this is `O(1)`; measured in E11).
    pub fn blowup(&self) -> f64 {
        let total: usize = self.buckets.iter().map(Vec::len).sum();
        total as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_names(count: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::new();
        while set.len() < count {
            set.insert(rng.gen::<u64>() >> 3);
        }
        set.into_iter().collect()
    }

    #[test]
    fn every_name_gets_a_slot_below_n() {
        let names = random_names(500, 1);
        let reg = NameRegistry::new(&names, 7).unwrap();
        for &x in &names {
            let slot = reg.slot(x).unwrap();
            assert!(slot.index() < 500);
            assert!(reg.bucket(slot).contains(&x));
            assert_eq!(reg.hash_slot(x), slot);
        }
        assert_eq!(reg.slot(123456789), None);
        assert!(reg.hash_slot(123456789).index() < 500);
    }

    #[test]
    fn total_entries_equal_n() {
        let names = random_names(300, 2);
        let reg = NameRegistry::new(&names, 3);
        let reg = reg.unwrap();
        let total: usize = (0..300).map(|s| reg.bucket(NodeName(s as u32)).len()).sum();
        assert_eq!(total, 300);
        assert!((reg.blowup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collisions_are_modest() {
        // Balls-into-bins: the max bucket is O(log n / log log n) w.h.p.; with
        // a fixed seed we assert a comfortable constant.
        let names = random_names(2000, 4);
        let reg = NameRegistry::new(&names, 11).unwrap();
        assert!(reg.max_bucket_size() <= 10, "max bucket {}", reg.max_bucket_size());
        assert!(reg.excess_entries() < 2000);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = NameRegistry::new(&[5, 6, 5], 0).unwrap_err();
        assert_eq!(err, NamingError::DuplicateName(5));
        assert_eq!(NameRegistry::new(&[], 0).unwrap_err(), NamingError::Empty);
    }

    #[test]
    fn deterministic_given_seed_and_sensitive_to_seed() {
        let names = random_names(100, 9);
        let a = NameRegistry::new(&names, 42).unwrap();
        let b = NameRegistry::new(&names, 42).unwrap();
        for &x in &names {
            assert_eq!(a.slot(x), b.slot(x));
        }
        let c = NameRegistry::new(&names, 43).unwrap();
        let same = names.iter().all(|&x| a.slot(x) == c.slot(x));
        assert!(!same, "different hash seeds should permute slots");
    }

    #[test]
    fn adversarial_consecutive_names_still_spread() {
        // An adversary who names nodes 0..n consecutively gains nothing: the
        // hash family is chosen after the names are fixed.
        let names: Vec<u64> = (0..1000u64).collect();
        let reg = NameRegistry::new(&names, 5).unwrap();
        assert!(reg.max_bucket_size() <= 10);
    }
}
