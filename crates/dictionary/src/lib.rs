//! # rtr-dictionary — the distributed dictionary of the TINN schemes
//!
//! Topology-independent node names carry no routing information, so the
//! paper's schemes pair every routing structure with a *distributed
//! dictionary*: the address space `{0, …, n−1}` is cut into **blocks**, blocks
//! are assigned to nodes in a balanced way, and every neighborhood is
//! guaranteed to contain a holder of every block type (Lemma 1 for the √n
//! scheme, Lemma 4 for the general prefix-matching schemes).
//!
//! This crate implements:
//!
//! * [`AddressSpace`] — base-`n^{1/k}` digit strings `⟨u⟩`, the prefix
//!   operators `σ^i`, and the block decomposition `B_α` of §3.1;
//! * [`BlockDistribution`] — the randomized block assignment of Lemma 1 /
//!   Lemma 4 (probabilistic method plus a deterministic repair pass, so the
//!   coverage property always holds while the per-node block count stays
//!   `O(log n)` with high probability);
//! * [`naming`] — the §1.1.2 reduction from arbitrary (adversarially chosen
//!   but unique) node names to the `{0, …, n−1}` model via universal hashing,
//!   with collision buckets and the measured constant blow-up of experiment
//!   E11;
//! * [`NodeName`] — the topology-independent name type, kept deliberately
//!   distinct from `rtr_graph::NodeId` (the topological index) so that code
//!   cannot accidentally "cheat" by treating a name as topology information.
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is a mid-pipeline substrate: its blocks give the
//! schemes name-independence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blocks;
mod digits;
pub mod naming;

pub use blocks::{BlockDistribution, DistributionParams};
pub use digits::{AddressSpace, BlockId, NodeName};
