//! The hierarchical double-tree-cover substrate (`R2(u, v)` handshake labels).
//!
//! Wraps [`rtr_cover::DoubleTreeCover`] (Theorem 13) into a
//! [`NameDependentSubstrate`]: every node stores, for every double tree it
//! belongs to, its `O(1)`-word out-tree record, its in-tree port toward the
//! tree's center, and whether it *is* the center. The pair label `R2(u, v)`
//! names the cheapest double tree containing both endpoints together with
//! `v`'s compact tree-routing address inside it; routing climbs the in-tree
//! until the destination enters the current subtree, then descends the
//! out-tree.
//!
//! The pairwise roundtrip guarantee is `4(2k_c − 1)` where `k_c` is the
//! cover's sparseness parameter — the role the `(2k + ε)`-spanner of
//! Roditty–Thorup–Zwick plays in the paper (Lemma 5); DESIGN.md records the
//! substitution and experiment E9 reports the measured constants side by side.

use crate::substrate::{LabelBits, NameDependentSubstrate};
use rtr_cover::{DoubleTreeCover, TreeId};
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{DiGraph, Distance, NodeId, Port};
use rtr_metric::DistanceOracle;
use rtr_sim::{id_bits, ForwardAction, RoutingError, TableStats};
use rtr_trees::{TreeLabel, TreeNodeTable, TreeRouter, TreeStep};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-node record for one double tree the node belongs to.
#[derive(Debug, Clone)]
struct TreeRecord {
    /// The node's `O(1)`-word record in the tree's out-component.
    out_table: TreeNodeTable,
    /// Out-port of the first edge toward the tree's center (`None` at the center).
    up_port: Option<Port>,
    /// Roundtrip distance through the tree's center, `d_T(v, c) + d_T(c, v)`.
    /// The handshake cost of a pair inside one tree is the sum of the two
    /// endpoints' values, which is what lets `pair_label` pick the cheapest
    /// common tree from per-node state alone.
    rt_cost: Distance,
}

/// The `R2`-style label: which double tree to use and the destination's
/// address inside it.
///
/// The tree address is shared behind an [`Arc`]: cloning a label (into a
/// scheme dictionary entry or a packet header) bumps a refcount instead of
/// copying the light-hop vector, so a popular destination's address is stored
/// once no matter how many tables reference it.
#[derive(Debug, Clone)]
pub struct TreeCoverLabel {
    /// The destination node.
    pub target: NodeId,
    /// The double tree the route stays inside.
    pub tree: TreeId,
    /// The destination's compact address in that tree's out-component.
    pub tree_label: Arc<TreeLabel>,
    bits: usize,
}

impl LabelBits for TreeCoverLabel {
    fn bits(&self) -> usize {
        self.bits
    }
}

/// The tree-cover substrate.
#[derive(Debug)]
pub struct TreeCoverScheme {
    n: usize,
    k: u32,
    level_count: usize,
    max_trees_per_level: usize,
    /// `records[v]`: tree id → this node's record for that tree.
    records: Vec<HashMap<TreeId, TreeRecord>>,
    /// `memberships[v]`: every tree containing `v`, sorted by `(level,
    /// index)` — the scan list of the on-demand handshake.
    memberships: Vec<Vec<TreeId>>,
    /// Per-tree routers, used only at build/label time to mint labels.
    routers: HashMap<TreeId, TreeRouter>,
    /// Home tree per (node, level) — the tree guaranteed to span the node's
    /// scale-2^level roundtrip ball.
    home: Vec<Vec<TreeId>>,
    max_label_bits: usize,
}

impl TreeCoverScheme {
    /// Builds the substrate from a freshly constructed Theorem 13 hierarchy
    /// with sparseness parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the graph is not strongly connected.
    pub fn build<O: DistanceOracle + ?Sized>(g: &DiGraph, m: &O, k: u32) -> Self {
        let cover = DoubleTreeCover::build(g, m, k);
        Self::from_cover(g, m, &cover)
    }

    /// Builds the substrate from an existing hierarchy (lets callers share one
    /// [`DoubleTreeCover`] between the substrate and a §4 scheme).
    pub fn from_cover<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        cover: &DoubleTreeCover,
    ) -> Self {
        let n = g.node_count();
        let mut records: Vec<HashMap<TreeId, TreeRecord>> = vec![HashMap::new(); n];
        let mut memberships: Vec<Vec<TreeId>> = vec![Vec::new(); n];
        let mut routers: HashMap<TreeId, TreeRouter> = HashMap::new();
        let mut max_trees_per_level = 0usize;

        for (li, level) in cover.levels().iter().enumerate() {
            max_trees_per_level = max_trees_per_level.max(level.trees.len());
            for (ti, tree) in level.trees.iter().enumerate() {
                let id = TreeId { level: li as u16, index: ti as u32 };
                let router = &level.routers[ti];
                for &v in tree.members() {
                    let out_table = *router
                        .table(v)
                        .expect("double-tree members are spanned by the out component");
                    let up_port = tree.in_tree().next_port(v);
                    let rt_cost = tree.roundtrip_through_root(v);
                    records[v.index()].insert(id, TreeRecord { out_table, up_port, rt_cost });
                    // Levels and tree indices are visited in ascending order,
                    // so the membership list comes out sorted.
                    memberships[v.index()].push(id);
                }
                routers.insert(id, level.routers[ti].clone());
            }
        }

        let home: Vec<Vec<TreeId>> = (0..n)
            .map(|vi| {
                (0..cover.level_count())
                    .map(|li| cover.home_tree_id(NodeId::from_index(vi), li))
                    .collect()
            })
            .collect();

        let word = id_bits(n);
        let max_tree_label_bits = routers.values().map(|r| r.max_label_bits(n)).max().unwrap_or(0);
        let max_label_bits =
            word + TreeId::bits(cover.level_count(), max_trees_per_level) + max_tree_label_bits;

        let _ = m;
        TreeCoverScheme {
            n,
            k: cover.k(),
            level_count: cover.level_count(),
            max_trees_per_level,
            records,
            memberships,
            routers,
            home,
            max_label_bits,
        }
    }

    /// The cheapest common tree of an ordered pair — the handshake of
    /// §3.2/Lemma 5, computed **on demand** from the two endpoints' compact
    /// per-node state instead of a precomputed Θ(n²) side table.
    ///
    /// Scans the smaller of the two membership lists (Õ(k·n^{1/k}·log RTDiam)
    /// entries) in `(level, index)` order, probing the other endpoint's record
    /// map per candidate; the selection rule — strict cost minimum, scan
    /// continued through one level past the current best — reproduces
    /// [`DoubleTreeCover::best_common_tree`] decision for decision, so the
    /// answers are bit-identical to the retired precomputed table (the
    /// substrate's property tests assert this against the cover).
    fn cheapest_common_tree(&self, u: NodeId, v: NodeId) -> TreeId {
        let (scan, other) =
            if self.memberships[u.index()].len() <= self.memberships[v.index()].len() {
                (u, v)
            } else {
                (v, u)
            };
        let scan_records = &self.records[scan.index()];
        let other_records = &self.records[other.index()];
        let mut best: Option<(TreeId, Distance)> = None;
        for &id in &self.memberships[scan.index()] {
            if let Some((bid, _)) = best {
                // The level-ordered scan never needs to look more than one
                // level past the cheapest tree found so far (height bounds
                // grow with the scale; one extra level smooths out
                // seed-choice noise — same rule as the cover's own search).
                if (id.level as u32) >= (bid.level as u32) + 2 {
                    break;
                }
            }
            let Some(other_rec) = other_records.get(&id) else { continue };
            let cost = saturating_dist_add(scan_records[&id].rt_cost, other_rec.rt_cost);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((id, cost));
            }
        }
        best.expect("top-level home tree always contains both endpoints").0
    }

    /// The cover's sparseness parameter `k_c`.
    pub fn cover_k(&self) -> u32 {
        self.k
    }

    /// Number of levels in the hierarchy.
    pub fn level_count(&self) -> usize {
        self.level_count
    }

    /// Builds a label that routes to `v` inside the specific tree `id`
    /// (used by the §4 scheme, which picks trees itself).
    ///
    /// Returns `None` if `v` is not a member of that tree.
    pub fn label_in_tree(&self, id: TreeId, v: NodeId) -> Option<TreeCoverLabel> {
        let router = self.routers.get(&id)?;
        let tree_label = router.label(v)?.clone();
        Some(TreeCoverLabel { target: v, tree: id, tree_label, bits: self.max_label_bits })
    }

    /// The home tree of `v` at `level`.
    pub fn home_tree(&self, v: NodeId, level: usize) -> TreeId {
        self.home[v.index()][level]
    }

    /// Number of tree memberships of `v` (drives the Õ(n^{1/k}) table bound).
    pub fn membership_count(&self, v: NodeId) -> usize {
        self.records[v.index()].len()
    }
}

impl NameDependentSubstrate for TreeCoverScheme {
    type Label = TreeCoverLabel;

    fn substrate_name(&self) -> &'static str {
        "tree-cover"
    }

    fn label_for(&self, v: NodeId) -> TreeCoverLabel {
        // The top-level home tree of v spans every node, so its label is
        // globally valid (the analogue of RTZ's 4k+ε global labels).
        let top = self.level_count - 1;
        self.label_in_tree(self.home_tree(v, top), v).expect("v is a member of its own home tree")
    }

    fn pair_label(&self, from: NodeId, to: NodeId) -> TreeCoverLabel {
        if from == to {
            return self.label_for(to);
        }
        let id = self.cheapest_common_tree(from, to);
        self.label_in_tree(id, to).expect("handshake tree contains the destination")
    }

    fn step(&self, at: NodeId, label: &mut TreeCoverLabel) -> Result<ForwardAction, RoutingError> {
        if at == label.target {
            return Ok(ForwardAction::Deliver);
        }
        let record = self.records[at.index()].get(&label.tree).ok_or_else(|| {
            RoutingError::new(at, "node is not a member of the label's double tree")
        })?;
        match TreeRouter::step(&record.out_table, &label.tree_label) {
            TreeStep::Deliver => Ok(ForwardAction::Deliver),
            TreeStep::Forward(port) => Ok(ForwardAction::Forward(port)),
            TreeStep::NotInSubtree => {
                // The destination is not below us: climb toward the center.
                let port = record.up_port.ok_or_else(|| {
                    RoutingError::new(at, "center of the tree does not contain the destination")
                })?;
                Ok(ForwardAction::Forward(port))
            }
        }
    }

    fn table_stats(&self, v: NodeId) -> TableStats {
        let word = id_bits(self.n);
        let tree_id_bits = TreeId::bits(self.level_count, self.max_trees_per_level);
        let memberships = self.records[v.index()].len();
        // Per membership: tree id + 3-word out record + up port + handshake
        // cost word; plus one home tree id per level.
        let bits =
            memberships * (tree_id_bits + 3 * word + 2 * word) + self.level_count * tree_id_bits;
        TableStats { entries: memberships + self.level_count, bits }
    }

    fn max_label_bits(&self) -> usize {
        self.max_label_bits
    }

    fn guaranteed_roundtrip_stretch(&self) -> Option<f64> {
        Some(4.0 * (2.0 * self.k as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::harness::drive;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};
    use rtr_metric::DistanceMatrix;

    fn build(n: usize, seed: u64, k: u32) -> (DiGraph, DistanceMatrix, TreeCoverScheme) {
        let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let s = TreeCoverScheme::build(&g, &m, k);
        (g, m, s)
    }

    #[test]
    fn pair_labels_always_deliver() {
        let (g, _m, s) = build(40, 1, 2);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (path, _) = drive(&g, &s, u, s.pair_label(u, v));
                assert_eq!(*path.last().unwrap(), v);
            }
        }
    }

    #[test]
    fn global_labels_deliver_from_anywhere() {
        let (g, _m, s) = build(32, 2, 2);
        for u in g.nodes() {
            for v in g.nodes() {
                let (path, _) = drive(&g, &s, u, s.label_for(v));
                assert_eq!(*path.last().unwrap(), v);
            }
        }
    }

    #[test]
    fn roundtrip_respects_the_guaranteed_bound() {
        let (g, m, s) = build(40, 3, 2);
        let bound = s.guaranteed_roundtrip_stretch().unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (_, out) = drive(&g, &s, u, s.pair_label(u, v));
                let (_, back) = drive(&g, &s, v, s.pair_label(v, u));
                let measured = (out + back) as f64 / m.roundtrip(u, v) as f64;
                assert!(
                    measured <= bound + 1e-9,
                    "pair ({u},{v}): measured {measured} exceeds guaranteed {bound}"
                );
            }
        }
    }

    #[test]
    fn route_stays_inside_the_named_tree() {
        let (g, _m, s) = build(30, 4, 2);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let label = s.pair_label(u, v);
                let tree = label.tree;
                let (path, _) = drive(&g, &s, u, label);
                for x in &path {
                    assert!(
                        s.records[x.index()].contains_key(&tree),
                        "route left tree {tree:?} at {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_are_sublinear_for_k2() {
        let (g, _m, s) = build(100, 5, 2);
        let n = g.node_count() as f64;
        let levels = s.level_count() as f64;
        let bound = (2.0 * 2.0 * n.sqrt() * levels).ceil() as usize + s.level_count();
        for v in g.nodes() {
            let stats = s.table_stats(v);
            assert!(stats.entries <= bound, "{v}: {} entries > {bound}", stats.entries);
        }
    }

    #[test]
    fn labels_are_polylogarithmic() {
        let (g, _m, s) = build(64, 6, 2);
        let word = id_bits(g.node_count());
        assert!(s.max_label_bits() <= 6 * word * word + 8 * word);
    }

    #[test]
    fn works_on_grids_with_k3() {
        let g = bidirected_grid(5, 5, 7).unwrap();
        let m = DistanceMatrix::build(&g);
        let s = TreeCoverScheme::build(&g, &m, 3);
        let bound = s.guaranteed_roundtrip_stretch().unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (_, out) = drive(&g, &s, u, s.pair_label(u, v));
                let (_, back) = drive(&g, &s, v, s.pair_label(v, u));
                assert!(((out + back) as f64 / m.roundtrip(u, v) as f64) <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn on_demand_pair_labels_match_the_precomputed_handshake() {
        // PR 2 precomputed the cheapest common tree for every ordered pair
        // into a Θ(n²) side table filled from `cover.best_common_tree`; the
        // on-demand scan must reproduce that table entry for entry, and the
        // routed packets must traverse the same hop sequences.
        for (n, seed, k) in [(40usize, 21u64, 2u32), (36, 22, 3), (48, 23, 2)] {
            let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let cover = rtr_cover::DoubleTreeCover::build(&g, &m, k);
            let s = TreeCoverScheme::from_cover(&g, &m, &cover);
            for u in g.nodes() {
                for v in g.nodes() {
                    if u == v {
                        continue;
                    }
                    let (id, _) = cover.best_common_tree(u, v).expect("common tree exists");
                    let label = s.pair_label(u, v);
                    assert_eq!(label.tree, id, "pair ({u},{v}) picked a different tree");
                    assert_eq!(
                        &label.tree_label,
                        cover.router(id).label(v).expect("destination is a member"),
                        "pair ({u},{v}) minted a different tree address"
                    );
                    let reference = s.label_in_tree(id, v).expect("handshake tree contains v");
                    let (want_path, want_w) = drive(&g, &s, u, reference);
                    let (path, w) = drive(&g, &s, u, label);
                    assert_eq!(path, want_path, "pair ({u},{v}) routed differently");
                    assert_eq!(w, want_w);
                    assert_eq!(*path.last().unwrap(), v);
                }
            }
        }
    }

    #[test]
    fn label_in_tree_rejects_non_members() {
        let (g, _m, s) = build(30, 8, 2);
        // Find a level-0 tree that does not span everything, and a node
        // outside it.
        let mut found = false;
        'outer: for li in 0..1 {
            for v in g.nodes() {
                let id = s.home_tree(v, li);
                for w in g.nodes() {
                    if !s.records[w.index()].contains_key(&id) {
                        assert!(s.label_in_tree(id, w).is_none());
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        // On tiny diameters every level-0 tree may already span everything;
        // the assertion above only runs when a non-member exists.
        let _ = found;
    }
}
