//! # rtr-namedep — name-dependent roundtrip routing substrates
//!
//! The TINN schemes of the paper are built *on top of* a name-dependent
//! (topology-dependent) compact roundtrip routing scheme: the stretch-6 scheme
//! uses the `R3(v)` labels and tables of a stretch-3 scheme (Lemma 2,
//! Roditty–Thorup–Zwick), and the tradeoff schemes use the `R2(u, v)`
//! handshake labels of the `(2k+ε)`-roundtrip tree cover (Lemma 5).
//!
//! This crate provides three interchangeable substrates behind one trait,
//! [`NameDependentSubstrate`]:
//!
//! * [`ExactOracleScheme`] — per-node next-hop tables toward *every*
//!   destination (Θ(n) entries per node). Routes are exact shortest paths, so
//!   the substrate satisfies Lemma 2's inequality `p(u,v) ≤ r(u,v) + d(u,v)`
//!   with room to spare. It is **not compact**; its role is to isolate the
//!   TINN layer so the paper's stretch bounds can be asserted as hard
//!   inequalities in tests (see DESIGN.md, substitution 1).
//! * [`LandmarkBallScheme`] — the compact Õ(√n) substrate in the spirit of
//!   Cowen–Wagner / RTZ: a random landmark set with full in/out trees per
//!   landmark, plus per-node roundtrip balls with direct next hops. Delivery
//!   is always guaranteed; the measured roundtrip stretch is ≈3 (experiment
//!   E9).
//! * [`TreeCoverScheme`] — the hierarchical double-tree-cover substrate built
//!   on [`rtr_cover::DoubleTreeCover`] (Theorem 13), providing the pairwise
//!   handshake labels used by `ExStretch` and `PolynomialStretch`, with a
//!   provable roundtrip bound of `4(2k_c−1)` per pair.
//!
//! All substrates obey the fixed-port, local-tables-only discipline: their
//! [`step`](NameDependentSubstrate::step) functions read only the current
//! node's table and the (writable) label.
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is the substrate layer directly under the
//! `rtr-core` schemes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod landmark;
mod oracle;
mod substrate;
mod treecover;

pub use landmark::{LandmarkBallScheme, LandmarkParams, LandmarkSweep};
pub use oracle::ExactOracleScheme;
pub use substrate::{LabelBits, NameDependentSubstrate};
pub use treecover::TreeCoverScheme;
