//! The common interface of name-dependent routing substrates.

use rtr_graph::NodeId;
use rtr_sim::{ForwardAction, RoutingError, TableStats};
use std::fmt;

/// Labels must report their size in bits (same accounting convention as
/// packet headers).
pub trait LabelBits {
    /// Size of the label in bits.
    fn bits(&self) -> usize;
}

/// A name-dependent (topology-dependent) roundtrip routing substrate.
///
/// A substrate assigns every node a **label** (topology-dependent address) and
/// every node a **local table**; given a label, any node can make a purely
/// local forwarding decision that eventually delivers the packet to the
/// label's owner. The TINN schemes store these labels in their distributed
/// dictionary and copy them into packet headers — they never interpret them.
///
/// Two flavours of label exist, mirroring the paper:
///
/// * [`label_for`](Self::label_for) — a *globally valid* label (`R3(v)`
///   style): routes to `v` from any source.
/// * [`pair_label`](Self::pair_label) — a label optimized for one ordered
///   pair (`R2(u, v)` handshake style): valid when routing starts at `u`,
///   usually shorter/cheaper than the global label. The default forwards to
///   the global label.
pub trait NameDependentSubstrate: fmt::Debug {
    /// The label type (also carries any per-leg working state the forwarding
    /// writes while the packet travels; labels live in packet headers, which
    /// are writable in the TINN model).
    type Label: Clone + fmt::Debug + LabelBits;

    /// Short stable name used in reports.
    fn substrate_name(&self) -> &'static str;

    /// A label sufficient to route to `v` from any node.
    fn label_for(&self, v: NodeId) -> Self::Label;

    /// A label sufficient to route from `from` to `to` (and typically cheaper
    /// than the global label). The default is the global label of `to`.
    fn pair_label(&self, from: NodeId, to: NodeId) -> Self::Label {
        let _ = from;
        self.label_for(to)
    }

    /// The local forwarding decision at node `at` for a packet carrying
    /// `label`. May rewrite the label's working state.
    ///
    /// # Errors
    ///
    /// Only on violated invariants (corrupted label or table); correct builds
    /// never fail.
    fn step(&self, at: NodeId, label: &mut Self::Label) -> Result<ForwardAction, RoutingError>;

    /// Table-size accounting for node `v`.
    fn table_stats(&self, v: NodeId) -> TableStats;

    /// Size in bits of the largest label the substrate ever hands out.
    fn max_label_bits(&self) -> usize;

    /// A proven upper bound on the roundtrip stretch of the substrate (route
    /// `u → v` with `pair_label(u, v)` plus `v → u` with `pair_label(v, u)`,
    /// divided by `r(u, v)`), or `None` when the substrate only offers a
    /// measured (not proven) guarantee.
    fn guaranteed_roundtrip_stretch(&self) -> Option<f64>;
}

#[cfg(test)]
pub(crate) mod harness {
    //! A tiny local-only driver used by the substrate tests: repeatedly calls
    //! `step` and resolves ports against the graph, mirroring what
    //! `rtr-sim` does for full schemes.

    use super::*;
    use rtr_graph::{DiGraph, Distance};

    /// Routes from `src` toward `label`, returning the traversed node sequence
    /// and its total weight.
    pub(crate) fn drive<S: NameDependentSubstrate>(
        g: &DiGraph,
        s: &S,
        src: NodeId,
        mut label: S::Label,
    ) -> (Vec<NodeId>, Distance) {
        let mut at = src;
        let mut nodes = vec![at];
        let mut weight = 0;
        for _ in 0..8 * g.node_count() + 16 {
            match s.step(at, &mut label).expect("substrate step failed") {
                ForwardAction::Deliver => return (nodes, weight),
                ForwardAction::Forward(port) => {
                    let e = g.edge_by_port(at, port).expect("port must resolve");
                    weight += e.weight;
                    at = e.to;
                    nodes.push(at);
                }
            }
        }
        panic!("substrate routing did not terminate from {src}");
    }
}
