//! The compact landmark + ball substrate (Lemma 2 stand-in, Õ(√n) tables).
//!
//! Construction (Cowen–Wagner / Roditty–Thorup–Zwick flavoured):
//!
//! * sample a landmark set `L` of ≈ `c·√(n ln n)` nodes and keep the ones
//!   that are the nearest landmark of at least one node — only those are ever
//!   named by a label, so the rest would be dead weight in every table;
//! * for every kept landmark `l`, build the full `InTree(l)` and `OutTree(l)`
//!   over the graph; every node stores its next port toward `l` (`|L|` = Õ(√n)
//!   words per node — the climb toward `l` can start anywhere) and, **only if
//!   it lies on the out-tree path from `l` to one of `l`'s assigned
//!   destinations**, the `O(1)`-word tree-routing record of `OutTree(l)`.
//!   Descents visit exactly those paths, so delivery is unaffected while the
//!   per-node record count drops from `|L|` to the handful of landmarks that
//!   actually route through the node;
//! * every node `u` additionally stores its **roundtrip ball**: the nodes `w`
//!   with `r(u, w) < r(u, L)` (strictly closer than the nearest landmark),
//!   capped at `4√n` entries, with the next port on an exact shortest path
//!   `u → w`;
//! * every node keeps its own address in `OutTree(ℓ(u))`, interned behind an
//!   `Arc` — the trees and routers themselves are dropped after construction
//!   instead of retaining `|L|·n` label/table entries for label minting.
//!
//! The label `R3(v)` is `(v, ℓ(v), tree-label of v in OutTree(ℓ(v)))` where
//! `ℓ(v)` is `v`'s nearest landmark by roundtrip distance — `O(log² n)` bits.
//!
//! Routing toward `R3(v)` from `u`: follow ball next-hops while every visited
//! node still has `v` in its ball (these hops lie on exact shortest paths, so
//! the distance to `v` strictly decreases and no loop can form); if a node
//! lacks the entry, fall back *permanently* to landmark mode — climb
//! `InTree(ℓ(v))` to the landmark, then descend `OutTree(ℓ(v))` to `v` using
//! the compact tree router. Delivery is therefore always guaranteed; the
//! stretch is a measured quantity (experiment E9) rather than a proven bound,
//! which is exactly the substitution DESIGN.md documents.

use crate::substrate::{LabelBits, NameDependentSubstrate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtr_graph::algo::dijkstra::dijkstra_to_targets;
use rtr_graph::{DiGraph, Distance, NodeId, Port};
use rtr_metric::{
    broadcast_rows, DistanceOracle, RowInvalidation, RowSweepConsumer, SweepRows, SweepSlots,
};
use rtr_sim::{id_bits, ForwardAction, RoutingError, TableStats};
use rtr_trees::{InTree, OutTree, TreeLabel, TreeNodeTable, TreeRouter, TreeStep};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// Tunables of the landmark + ball construction.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkParams {
    /// Multiplier on `√(n ln n)` for the landmark count.
    pub landmark_factor: f64,
    /// Multiplier on `√n` for the per-node ball cap.
    pub ball_factor: f64,
    /// RNG seed for the landmark sample.
    pub seed: u64,
}

impl Default for LandmarkParams {
    fn default() -> Self {
        LandmarkParams { landmark_factor: 1.0, ball_factor: 4.0, seed: 0x1a2d_3a4c }
    }
}

/// Routing phase recorded in the label while a packet is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Following per-node ball entries along exact shortest paths.
    Direct,
    /// Climbing the in-tree of the destination's landmark.
    ToLandmark,
    /// Descending the landmark's out-tree toward the destination.
    DownTree,
}

/// The `R3(v)` label of the landmark + ball substrate.
///
/// The tree address is shared behind an [`Arc`]: every table entry and packet
/// header referencing `v` points at the one interned `TreeLabel` minted at
/// build time instead of cloning its light-hop vector.
#[derive(Debug, Clone)]
pub struct LandmarkLabel {
    /// The destination node.
    pub target: NodeId,
    /// The destination's nearest landmark `ℓ(v)` (as an index into the
    /// landmark list, which every node's table shares).
    pub landmark_index: u32,
    /// The destination's compact tree-routing label in `OutTree(ℓ(v))`.
    pub tree_label: Arc<TreeLabel>,
    /// Per-leg working state (mode bits written into the header).
    phase: Phase,
    bits: usize,
}

impl LabelBits for LandmarkLabel {
    fn bits(&self) -> usize {
        self.bits
    }
}

/// The compact landmark + ball name-dependent substrate.
///
/// `Clone` is cheap relative to a rebuild (plain table copies, no Dijkstras;
/// the interned tree addresses are shared, not duplicated), so one substrate
/// build can serve several scheme constructions. Equality is structural over
/// every table — the repair path uses it to property-test bit-identity with
/// a from-scratch rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LandmarkBallScheme {
    n: usize,
    /// The landmarks some node actually routes through (nearest landmark of
    /// at least one node), sorted; unused samples are discarded at build time.
    landmarks: Vec<NodeId>,
    /// `up_ports[v][l]`: out-port of `v`'s first edge toward landmark `l`
    /// (`None` at the landmark itself).  A climb toward `l` can start at any
    /// node — the ball fallback happens wherever an entry is missing — so
    /// this is the one per-(node, landmark) word that cannot be sparsified.
    up_ports: Vec<Vec<Option<Port>>>,
    /// `descent[v][l]`: `v`'s `O(1)`-word record in `OutTree(l)`, stored only
    /// when `v` lies on the out-tree path from `l` to one of `l`'s assigned
    /// destinations — the only nodes a descent can visit.
    descent: Vec<HashMap<u32, TreeNodeTable>>,
    /// `balls[v]`: destination → next port on an exact shortest path.
    balls: Vec<HashMap<NodeId, Port>>,
    /// `nearest_landmark[v]`: index into `landmarks` of `ℓ(v)`.
    nearest_landmark: Vec<u32>,
    /// `own_label[v]`: `v`'s interned address in `OutTree(ℓ(v))` — the only
    /// label this substrate ever mints, so the per-landmark routers need not
    /// be retained.
    own_label: Vec<Arc<TreeLabel>>,
    max_label_bits: usize,
    max_ball_size: usize,
}

/// Pass 1 of the landmark + ball construction as a
/// [`RowSweepConsumer`]: per node, the nearest sampled landmark and the
/// roundtrip ball (with exact first-hop ports), extracted from the node's
/// roundtrip row.
///
/// Create it with [`LandmarkBallScheme::sweep`], register it on a
/// [`broadcast_rows`] pass — alone, or shared with the suite's other row
/// consumers — and assemble the substrate with
/// [`finish`](LandmarkSweep::finish).  Per-node outputs are independent, so
/// the result is bit-identical whether the sweep delivers rows sequentially
/// (lazy oracles) or block-parallel (dense oracles).
#[derive(Debug)]
pub struct LandmarkSweep<'g> {
    g: &'g DiGraph,
    sampled: Vec<NodeId>,
    ball_cap: usize,
    /// Per node: (index of nearest sampled landmark, ball member → port).
    slots: SweepSlots<(u32, HashMap<NodeId, Port>)>,
}

impl RowSweepConsumer for LandmarkSweep<'_> {
    fn consume(&self, u: NodeId, rows: &SweepRows<'_>) {
        self.slots
            .put(u.index(), node_ball(self.g, &self.sampled, self.ball_cap, u, rows.roundtrip));
    }
}

/// The pass-1 result for one node, computed from its roundtrip row: the index
/// of `u`'s nearest *sampled* landmark and `u`'s roundtrip ball with exact
/// first-hop ports. One code path shared by the build sweep and the repair
/// entry point so that a repaired node is bit-identical to a fresh one.
fn node_ball(
    g: &DiGraph,
    sampled: &[NodeId],
    ball_cap: usize,
    u: NodeId,
    rt_row: &[Distance],
) -> (u32, HashMap<NodeId, Port>) {
    let (li, _) = sampled
        .iter()
        .enumerate()
        .map(|(i, &l)| (i, rt_row[l.index()]))
        .min_by_key(|&(i, d)| (d, i))
        .expect("at least one landmark");

    let r_to_landmarks = rt_row[sampled[li].index()];
    // Candidate ball members, nearest first, capped.
    let mut members: Vec<NodeId> =
        g.nodes().filter(|&w| w != u && rt_row[w.index()] < r_to_landmarks).collect();
    members.sort_by_key(|&w| (rt_row[w.index()], w.0));
    members.truncate(ball_cap);
    let mut ball: HashMap<NodeId, Port> = HashMap::new();
    if !members.is_empty() {
        // Bounded Dijkstra: stop as soon as every ball member is
        // settled instead of running to completion — the members
        // are the only nodes read, and their first hops are
        // bit-identical to a full run (see `dijkstra_to_targets`).
        let sp = dijkstra_to_targets(g, u, &members);
        for w in members {
            // First hop of the shortest path u → w.
            let path = sp.path(w).expect("strongly connected");
            let first_hop = path[1];
            let port = g.port_of_edge(u, first_hop).expect("edge on path exists");
            ball.insert(w, port);
        }
    }
    (li as u32, ball)
}

impl<'g> LandmarkSweep<'g> {
    /// Assembles the substrate from the collected pass-1 results (passes 2
    /// and 3 of the construction: landmark pruning and per-landmark trees).
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not visited every node yet.
    pub fn finish(self) -> LandmarkBallScheme {
        let _span = rtr_telemetry::span!(
            "landmark.finish",
            format_args!("landmarks={}", self.sampled.len())
        );
        let (g, sampled) = (self.g, self.sampled);
        let per_node = self.slots.into_vec();
        let mut nearest_sampled = Vec::with_capacity(per_node.len());
        let mut balls = Vec::with_capacity(per_node.len());
        for (li, ball) in per_node {
            nearest_sampled.push(li);
            balls.push(ball);
        }
        let max_ball_size = balls.iter().map(HashMap::len).max().unwrap_or(0);
        LandmarkBallScheme::assemble(g, sampled, nearest_sampled, balls, max_ball_size)
    }
}

impl LandmarkBallScheme {
    /// Builds the substrate.
    ///
    /// Generic over the distance oracle; the construction touches the metric
    /// only through per-source roundtrip rows (landmark selection and ball
    /// extraction for node `u` both read the rows of `u`), so a lazy oracle
    /// serves it with two Dijkstras per node and a bounded cache.  Runs a
    /// solo [`broadcast_rows`] pass over the [`LandmarkSweep`] consumer;
    /// callers building more row structures should use
    /// [`sweep`](Self::sweep) and share the pass.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected.
    pub fn build<O: DistanceOracle + ?Sized>(g: &DiGraph, m: &O, params: LandmarkParams) -> Self {
        assert!(
            m.is_strongly_connected(),
            "landmark substrate requires a strongly connected graph"
        );
        let sweep = Self::sweep(g, params);
        broadcast_rows(m, &[&sweep]);
        sweep.finish()
    }

    /// Samples the landmark set and prepares the pass-1 row consumer.  The
    /// caller is responsible for running it over every node's rows (via
    /// [`broadcast_rows`]) before calling [`LandmarkSweep::finish`].
    pub fn sweep(g: &DiGraph, params: LandmarkParams) -> LandmarkSweep<'_> {
        let n = g.node_count();
        let target_landmarks = ((n as f64 * (n.max(2) as f64).ln()).sqrt() * params.landmark_factor)
            .ceil()
            .max(1.0) as usize;
        let landmark_count = target_landmarks.min(n);

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut all: Vec<NodeId> = g.nodes().collect();
        all.shuffle(&mut rng);
        let mut sampled: Vec<NodeId> = all.into_iter().take(landmark_count).collect();
        sampled.sort_unstable();

        let ball_cap = ((n as f64).sqrt() * params.ball_factor).ceil() as usize;
        LandmarkSweep { g, sampled, ball_cap, slots: SweepSlots::new(n) }
    }

    /// Passes 2 and 3 of the construction, from pass-1 results.
    fn assemble(
        g: &DiGraph,
        sampled: Vec<NodeId>,
        nearest_sampled: Vec<u32>,
        balls: Vec<HashMap<NodeId, Port>>,
        max_ball_size: usize,
    ) -> Self {
        let n = g.node_count();
        // Pass 2 — keep only the landmarks some node actually routes through.
        // Labels only ever name `ℓ(v)`, so samples that are nobody's nearest
        // landmark would occupy a column of every node's table for nothing.
        let mut used: Vec<u32> = nearest_sampled.clone();
        used.sort_unstable();
        used.dedup();
        let mut remap = vec![u32::MAX; sampled.len()];
        for (new, &old) in used.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let landmarks: Vec<NodeId> = used.iter().map(|&i| sampled[i as usize]).collect();
        let nearest_landmark: Vec<u32> =
            nearest_sampled.iter().map(|&i| remap[i as usize]).collect();
        let mut assigned: Vec<Vec<NodeId>> = vec![Vec::new(); landmarks.len()];
        for u in g.nodes() {
            assigned[nearest_landmark[u.index()] as usize].push(u);
        }

        // Pass 3 — per-landmark trees, consumed immediately: every node keeps
        // its up-port toward the landmark; only the nodes on out-tree descent
        // paths to the landmark's assigned destinations keep a tree record;
        // each assigned destination interns its own address.  The trees and
        // router are dropped at the end of each iteration — nothing of size
        // `|L|·n` survives construction.
        let mut up_ports: Vec<Vec<Option<Port>>> =
            (0..n).map(|_| Vec::with_capacity(landmarks.len())).collect();
        let mut descent: Vec<HashMap<u32, TreeNodeTable>> = vec![HashMap::new(); n];
        let mut own_label: Vec<Option<Arc<TreeLabel>>> = vec![None; n];
        for (li, &l) in landmarks.iter().enumerate() {
            let out_tree = OutTree::shortest_paths(g, l);
            let in_tree = InTree::shortest_paths(g, l);
            let router = TreeRouter::build(&out_tree);
            for v in g.nodes() {
                up_ports[v.index()].push(in_tree.next_port(v));
            }
            for &v in &assigned[li] {
                own_label[v.index()] =
                    Some(Arc::clone(router.label(v).expect("out-tree spans all nodes")));
                // Mark the descent path l → v: every out-tree ancestor stores
                // its O(1)-word record; stop at the first already-marked node
                // (its ancestors were marked by an earlier destination).
                let mut cur = v;
                loop {
                    match descent[cur.index()].entry(li as u32) {
                        Entry::Occupied(_) => break,
                        Entry::Vacant(slot) => {
                            slot.insert(*router.table(cur).expect("out-tree spans all nodes"));
                        }
                    }
                    match out_tree.parent(cur) {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
            }
        }
        let own_label: Vec<Arc<TreeLabel>> =
            own_label.into_iter().map(|l| l.expect("every node has a nearest landmark")).collect();

        let word = id_bits(n);
        // target + landmark index + tree label (O(log^2 n)) + phase.
        let max_label_bits = word
            + id_bits(landmarks.len())
            + own_label.iter().map(|l| l.bits(n)).max().unwrap_or(0)
            + 2;

        LandmarkBallScheme {
            n,
            landmarks,
            up_ports,
            descent,
            balls,
            nearest_landmark,
            own_label,
            max_label_bits,
            max_ball_size,
        }
    }

    /// The landmark set (the sampled landmarks that are the nearest landmark
    /// of at least one node — the only ones any label can name).
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// The largest ball stored at any node.
    pub fn max_ball_size(&self) -> usize {
        self.max_ball_size
    }

    /// `ℓ(v)`: the nearest landmark of `v`.
    pub fn nearest_landmark(&self, v: NodeId) -> NodeId {
        self.landmarks[self.nearest_landmark[v.index()] as usize]
    }

    /// Incrementally re-anchors the substrate on a mutated graph.
    ///
    /// `g` must be the mutated graph (same node set), `m` its **post-fault**
    /// metric — typically a rebased oracle carrying the clean pre-fault rows
    /// — and `params` the parameters this substrate was built with. The
    /// per-node pass-1 results (nearest sampled landmark + roundtrip ball)
    /// are recomputed only for the nodes `invalidation` marks dirty; clean
    /// nodes carry their stored results over verbatim. That carry is exact,
    /// not approximate: a clean node's roundtrip row is unchanged by
    /// definition, and its ball's first-hop ports are unchanged too, because
    /// any removed or inflated edge on a shortest path out of `u` is *tight*
    /// from `u` and would have dirtied `u`'s forward row (the Dijkstra
    /// tie-break — smallest parent id among final-distance predecessors — is
    /// a pure function of distances and tight edges). The graph-side passes
    /// (landmark pruning, per-landmark trees, descent records) always re-run
    /// on `g`, touching no oracle rows.
    ///
    /// Returns the repaired substrate — bit-identical to
    /// [`build`](Self::build) from scratch on `(g, m, params)` — and the
    /// number of nodes whose pass-1 results were recomputed.
    ///
    /// # Panics
    ///
    /// Panics if the node set changed, if `invalidation` sizes a different
    /// metric, or if `g` is no longer strongly connected.
    pub fn repair_balls<O: DistanceOracle + ?Sized>(
        &self,
        g: &DiGraph,
        m: &O,
        params: LandmarkParams,
        invalidation: &RowInvalidation,
    ) -> (LandmarkBallScheme, usize) {
        assert_eq!(self.n, g.node_count(), "repair requires an unchanged node set");
        assert_eq!(self.n, invalidation.node_count(), "invalidation sizes a different metric");
        assert!(
            m.is_strongly_connected(),
            "landmark substrate requires a strongly connected graph"
        );
        let _span = rtr_telemetry::span!(
            "landmark.repair",
            format_args!("dirty={}", invalidation.dirty_node_count())
        );
        // The sample is metric-free (node count + seed), so regenerate it
        // instead of having stored it.
        let probe = Self::sweep(g, params);
        let (sampled, ball_cap) = (probe.sampled, probe.ball_cap);
        let mut nearest_sampled = Vec::with_capacity(self.n);
        let mut balls = Vec::with_capacity(self.n);
        let mut repaired = 0usize;
        for u in g.nodes() {
            if invalidation.is_node_dirty(u) {
                let rt_row = m.roundtrip_row(u);
                let (li, ball) = node_ball(g, &sampled, ball_cap, u, &rt_row);
                nearest_sampled.push(li);
                balls.push(ball);
                repaired += 1;
            } else {
                // Recover the *sampled* index of u's nearest landmark — the
                // substrate only stores indices into the pruned list.
                let l = self.landmarks[self.nearest_landmark[u.index()] as usize];
                let li = sampled.binary_search(&l).expect("kept landmark was sampled") as u32;
                nearest_sampled.push(li);
                balls.push(self.balls[u.index()].clone());
            }
        }
        let max_ball_size = balls.iter().map(HashMap::len).max().unwrap_or(0);
        (Self::assemble(g, sampled, nearest_sampled, balls, max_ball_size), repaired)
    }
}

impl NameDependentSubstrate for LandmarkBallScheme {
    type Label = LandmarkLabel;

    fn substrate_name(&self) -> &'static str {
        "landmark-ball"
    }

    fn label_for(&self, v: NodeId) -> LandmarkLabel {
        LandmarkLabel {
            target: v,
            landmark_index: self.nearest_landmark[v.index()],
            tree_label: Arc::clone(&self.own_label[v.index()]),
            phase: Phase::Direct,
            bits: self.max_label_bits,
        }
    }

    fn step(&self, at: NodeId, label: &mut LandmarkLabel) -> Result<ForwardAction, RoutingError> {
        if at == label.target {
            return Ok(ForwardAction::Deliver);
        }
        let li = label.landmark_index as usize;
        if li >= self.landmarks.len() {
            return Err(RoutingError::new(at, "label names an unknown landmark"));
        }

        // Direct (ball) mode: keep following exact shortest-path hops while
        // the current node knows the destination.
        if label.phase == Phase::Direct {
            if let Some(&port) = self.balls[at.index()].get(&label.target) {
                return Ok(ForwardAction::Forward(port));
            }
            // Fall back to the landmark detour, permanently.
            label.phase = Phase::ToLandmark;
        }

        if label.phase == Phase::ToLandmark {
            if at == self.landmarks[li] {
                label.phase = Phase::DownTree;
            } else {
                let port = self.up_ports[at.index()][li]
                    .ok_or_else(|| RoutingError::new(at, "missing in-tree port toward landmark"))?;
                return Ok(ForwardAction::Forward(port));
            }
        }

        // DownTree: descend the landmark's out-tree with the compact router.
        // Descents only visit out-tree ancestors of the landmark's assigned
        // destinations, which are exactly the nodes holding a record.
        let table = self.descent[at.index()].get(&(li as u32)).ok_or_else(|| {
            RoutingError::new(at, "node is not on any descent path of the label's landmark")
        })?;
        match TreeRouter::step(table, &label.tree_label) {
            TreeStep::Deliver => Ok(ForwardAction::Deliver),
            TreeStep::Forward(port) => Ok(ForwardAction::Forward(port)),
            TreeStep::NotInSubtree => {
                Err(RoutingError::new(at, "destination left the landmark subtree during descent"))
            }
        }
    }

    fn table_stats(&self, v: NodeId) -> TableStats {
        let word = id_bits(self.n);
        let landmark_entries = self.up_ports[v.index()].len();
        let descent_entries = self.descent[v.index()].len();
        let ball_entries = self.balls[v.index()].len();
        // Per landmark: one up-port word; per descent record: landmark index
        // + O(1)-word tree record (3 words); per ball entry: destination +
        // port; plus the node's own nearest-landmark id.
        let bits =
            landmark_entries * word + descent_entries * 4 * word + ball_entries * 2 * word + word;
        TableStats { entries: landmark_entries + descent_entries + ball_entries, bits }
    }

    fn max_label_bits(&self) -> usize {
        self.max_label_bits
    }

    fn guaranteed_roundtrip_stretch(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::harness::drive;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp, Family};
    use rtr_metric::DistanceMatrix;

    fn build(n: usize, seed: u64) -> (DiGraph, DistanceMatrix, LandmarkBallScheme) {
        let g = strongly_connected_gnp(n, 0.08, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let s = LandmarkBallScheme::build(&g, &m, LandmarkParams { seed, ..Default::default() });
        (g, m, s)
    }

    #[test]
    fn always_delivers_to_the_right_node() {
        let (g, _m, s) = build(60, 1);
        for u in g.nodes() {
            for v in g.nodes() {
                let (path, _) = drive(&g, &s, u, s.label_for(v));
                assert_eq!(*path.last().unwrap(), v, "({u},{v}) misdelivered");
            }
        }
    }

    #[test]
    fn near_pairs_route_along_shortest_paths() {
        // If v is in u's ball and stays in every intermediate ball, the route
        // is exactly shortest. At minimum, a ball member reached in one hop is
        // optimal; check the aggregate property: ball-mode-only routes are
        // optimal.
        let (g, m, s) = build(50, 2);
        let mut checked = 0;
        for u in g.nodes() {
            for &v in s.balls[u.index()].keys() {
                let (path, w) = drive(&g, &s, u, s.label_for(v));
                assert_eq!(*path.last().unwrap(), v);
                if path.iter().take(path.len() - 1).all(|x| s.balls[x.index()].contains_key(&v)) {
                    assert_eq!(w, m.distance(u, v), "ball route ({u},{v}) not optimal");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no pure ball routes exercised");
    }

    #[test]
    fn roundtrip_stretch_is_small_on_random_graphs() {
        let (g, m, s) = build(64, 3);
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut count = 0u32;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (_, out) = drive(&g, &s, u, s.pair_label(u, v));
                let (_, back) = drive(&g, &s, v, s.pair_label(v, u));
                let stretch = (out + back) as f64 / m.roundtrip(u, v) as f64;
                worst = worst.max(stretch);
                sum += stretch;
                count += 1;
            }
        }
        let avg = sum / count as f64;
        // Measured guarantee (experiment E9): the average sits near 1–2 and
        // the worst case stays well below the composed schemes' budgets.
        assert!(avg <= 3.0, "average substrate stretch {avg} too large");
        assert!(worst <= 12.0, "worst substrate stretch {worst} too large");
    }

    #[test]
    fn tables_are_compact_relative_to_the_oracle() {
        let (g, _m, s) = build(100, 4);
        let n = g.node_count() as f64;
        // Õ(√n): entries per node ≤ landmarks + ball cap = O(√(n ln n)).
        let bound = (3.0 * (n * n.ln()).sqrt() + 4.0 * n.sqrt() + 8.0) as usize;
        for v in g.nodes() {
            let stats = s.table_stats(v);
            assert!(stats.entries <= bound, "table at {v} has {} entries", stats.entries);
            assert!(stats.entries < g.node_count(), "table not sublinear");
        }
    }

    #[test]
    fn labels_are_polylogarithmic() {
        let (g, _m, s) = build(80, 5);
        let n = g.node_count();
        let word = id_bits(n);
        // O(log^2 n) with a modest constant.
        assert!(
            s.max_label_bits() <= 4 * word * word + 4 * word,
            "label bits {} too large",
            s.max_label_bits()
        );
        for v in g.nodes() {
            assert!(s.label_for(v).bits() <= s.max_label_bits());
        }
    }

    #[test]
    fn landmark_count_scales_as_sqrt_n_log_n() {
        let (_, _, s) = build(100, 6);
        let expect = (100.0f64 * 100.0f64.ln()).sqrt();
        assert!(s.landmarks().len() as f64 <= expect.ceil() + 1.0);
        assert!(!s.landmarks().is_empty());
    }

    #[test]
    fn works_on_grids_and_other_families() {
        let g = bidirected_grid(6, 6, 7).unwrap();
        let m = DistanceMatrix::build(&g);
        let s = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
        for u in g.nodes() {
            for v in g.nodes() {
                let (path, _) = drive(&g, &s, u, s.label_for(v));
                assert_eq!(*path.last().unwrap(), v);
            }
        }
        for family in Family::ALL {
            let g = family.generate(30, 11).unwrap();
            let m = DistanceMatrix::build(&g);
            let s = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
            let u = NodeId(1);
            for v in g.nodes() {
                let (path, _) = drive(&g, &s, u, s.label_for(v));
                assert_eq!(*path.last().unwrap(), v, "{}", family.name());
            }
        }
    }

    #[test]
    fn nearest_landmark_is_really_nearest() {
        let (g, m, s) = build(40, 8);
        for v in g.nodes() {
            let l = s.nearest_landmark(v);
            for &other in s.landmarks() {
                assert!(m.roundtrip(v, l) <= m.roundtrip(v, other));
            }
        }
    }

    #[test]
    fn ball_ports_match_full_dijkstra_first_hops() {
        // The bounded-Dijkstra extraction must store exactly the first hop a
        // full single-source run would have stored, for every ball member.
        for seed in [12u64, 13, 14] {
            let (g, _m, s) = build(70, seed);
            let mut checked = 0usize;
            for u in g.nodes() {
                if s.balls[u.index()].is_empty() {
                    continue;
                }
                let sp = rtr_graph::algo::dijkstra::dijkstra(&g, u);
                for (&w, &port) in &s.balls[u.index()] {
                    let path = sp.path(w).expect("ball member reachable");
                    let expected = g.port_of_edge(u, path[1]).expect("edge on path");
                    assert_eq!(port, expected, "ball port ({u},{w}) differs from full run");
                    checked += 1;
                }
            }
            assert!(checked > 0, "seed {seed}: no ball entries exercised");
        }
    }

    #[test]
    fn descent_records_are_sparse_and_every_landmark_is_used() {
        let (g, _m, s) = build(100, 15);
        let n = g.node_count();
        // Every kept landmark is the nearest landmark of at least one node.
        let mut used = vec![false; s.landmarks().len()];
        for v in g.nodes() {
            used[s.nearest_landmark[v.index()] as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "a retained landmark is nobody's nearest");
        // Every node is the endpoint of its own descent path.
        for v in g.nodes() {
            assert!(s.descent[v.index()].contains_key(&s.nearest_landmark[v.index()]));
        }
        // The retired layout stored n·|L| tree records; the descent sets
        // cover only the out-tree paths to assigned destinations.
        let total_descent: usize = g.nodes().map(|v| s.descent[v.index()].len()).sum();
        assert!(
            total_descent < n * s.landmarks().len() / 2,
            "descent sets not sparse: {total_descent} records for {} landmarks",
            s.landmarks().len()
        );
    }

    #[test]
    fn repair_is_bit_identical_to_fresh_build_on_mutated_graph() {
        use rtr_graph::FaultPlan;
        use rtr_metric::{CachedSubsetOracle, RowInvalidation};
        let mut exercised = 0usize;
        for seed in 0..8u64 {
            let g0 = strongly_connected_gnp(40, 0.12, seed).unwrap();
            let m0 = CachedSubsetOracle::new(&g0);
            let params = LandmarkParams { seed, ..Default::default() };
            let s0 = LandmarkBallScheme::build(&g0, &m0, params);
            let candidates: Vec<(NodeId, NodeId)> =
                g0.nodes().flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to))).collect();
            let plan = FaultPlan::mixed_from_candidates(&candidates, 5, 2, 3, seed ^ 0x9e37);
            let mut g1 = g0.clone();
            let applied = plan.apply(&mut g1);
            if !g1.is_strongly_connected() {
                continue;
            }
            let inv = RowInvalidation::for_application(&m0, &applied);
            let rebased = CachedSubsetOracle::rebased(&m0, &g1, &inv);
            let (repaired, touched) = s0.repair_balls(&g1, &rebased, params, &inv);
            let fresh = LandmarkBallScheme::build(&g1, &DistanceMatrix::build(&g1), params);
            assert_eq!(repaired, fresh, "seed {seed}: repair diverged from fresh build");
            assert_eq!(touched, inv.dirty_node_count());
            // Repair touched only the dirty nodes' rows.
            assert!(rebased.materialised_rows() <= 2 * inv.dirty_node_count());
            exercised += 1;
        }
        assert!(exercised > 0, "every seeded plan disconnected the graph");
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, m, _) = build(30, 9);
        let a = LandmarkBallScheme::build(&g, &m, LandmarkParams { seed: 5, ..Default::default() });
        let b = LandmarkBallScheme::build(&g, &m, LandmarkParams { seed: 5, ..Default::default() });
        assert_eq!(a.landmarks(), b.landmarks());
        for v in g.nodes() {
            assert_eq!(a.table_stats(v), b.table_stats(v));
        }
    }
}
