//! The exact-oracle substrate: per-node next hops toward every destination.

use crate::substrate::{LabelBits, NameDependentSubstrate};
use rtr_graph::algo::dijkstra::dijkstra_reverse;
use rtr_graph::{DiGraph, NodeId, Port};
use rtr_sim::{id_bits, ForwardAction, RoutingError, TableStats};

/// The label of the exact-oracle substrate: just the destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleLabel {
    /// The destination node.
    pub target: NodeId,
    bits: usize,
}

impl LabelBits for OracleLabel {
    fn bits(&self) -> usize {
        self.bits
    }
}

/// A name-dependent substrate whose routes are exact shortest paths.
///
/// Every node stores, for every destination, the out-port of its first edge on
/// a shortest path to that destination — Θ(n) entries per node, so this is the
/// **non-compact reference substrate**. Its purpose (see DESIGN.md,
/// substitution 1) is to satisfy the inequality Lemma 2 requires,
/// `p(u,v) ≤ r(u,v) + d(u,v)`, with exact equality `p(u,v) = d(u,v)`, so the
/// TINN layer's stretch bounds can be verified as hard inequalities
/// independently of any substrate slack.
#[derive(Debug)]
pub struct ExactOracleScheme {
    n: usize,
    /// `next_port[target][node]`: port at `node` toward `target`
    /// (`None` when `node == target`).
    next_port: Vec<Vec<Option<Port>>>,
}

impl ExactOracleScheme {
    /// Builds the oracle with one reverse Dijkstra per destination.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected.
    pub fn build(g: &DiGraph) -> Self {
        g.require_strongly_connected().expect("oracle substrate requires strong connectivity");
        let n = g.node_count();
        let mut next_port = Vec::with_capacity(n);
        for t in g.nodes() {
            let tree = dijkstra_reverse(g, t);
            let ports: Vec<Option<Port>> = g.nodes().map(|v| tree.parent_port[v.index()]).collect();
            next_port.push(ports);
        }
        ExactOracleScheme { n, next_port }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

impl NameDependentSubstrate for ExactOracleScheme {
    type Label = OracleLabel;

    fn substrate_name(&self) -> &'static str {
        "exact-oracle"
    }

    fn label_for(&self, v: NodeId) -> OracleLabel {
        OracleLabel { target: v, bits: id_bits(self.n) }
    }

    fn step(&self, at: NodeId, label: &mut OracleLabel) -> Result<ForwardAction, RoutingError> {
        if at == label.target {
            return Ok(ForwardAction::Deliver);
        }
        match self.next_port[label.target.index()][at.index()] {
            Some(port) => Ok(ForwardAction::Forward(port)),
            None => Err(RoutingError::new(at, format!("no next hop toward {}", label.target))),
        }
    }

    fn table_stats(&self, _v: NodeId) -> TableStats {
        // One port per destination.
        TableStats { entries: self.n - 1, bits: (self.n - 1) * 2 * id_bits(self.n) }
    }

    fn max_label_bits(&self) -> usize {
        id_bits(self.n)
    }

    fn guaranteed_roundtrip_stretch(&self) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::harness::drive;
    use rtr_graph::generators::{strongly_connected_gnp, Family};
    use rtr_metric::DistanceMatrix;

    #[test]
    fn routes_are_exact_shortest_paths() {
        let g = strongly_connected_gnp(40, 0.1, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let oracle = ExactOracleScheme::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let (path, weight) = drive(&g, &oracle, u, oracle.label_for(v));
                assert_eq!(*path.last().unwrap(), v);
                assert_eq!(weight, m.distance(u, v), "oracle path ({u},{v}) not shortest");
            }
        }
    }

    #[test]
    fn roundtrip_equals_roundtrip_distance() {
        let g = strongly_connected_gnp(25, 0.15, 9).unwrap();
        let m = DistanceMatrix::build(&g);
        let oracle = ExactOracleScheme::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (_, out) = drive(&g, &oracle, u, oracle.pair_label(u, v));
                let (_, back) = drive(&g, &oracle, v, oracle.pair_label(v, u));
                assert_eq!(out + back, m.roundtrip(u, v));
            }
        }
    }

    #[test]
    fn works_across_families() {
        for family in Family::ALL {
            let g = family.generate(30, 5).unwrap();
            let m = DistanceMatrix::build(&g);
            let oracle = ExactOracleScheme::build(&g);
            let u = NodeId(0);
            for v in g.nodes() {
                let (_, w) = drive(&g, &oracle, u, oracle.label_for(v));
                assert_eq!(w, m.distance(u, v), "{}", family.name());
            }
        }
    }

    #[test]
    fn table_stats_reflect_theta_n_entries() {
        let g = strongly_connected_gnp(50, 0.1, 1).unwrap();
        let oracle = ExactOracleScheme::build(&g);
        let stats = oracle.table_stats(NodeId(0));
        assert_eq!(stats.entries, 49);
        assert!(oracle.guaranteed_roundtrip_stretch() == Some(1.0));
        assert!(oracle.max_label_bits() <= 16);
    }

    #[test]
    #[should_panic(expected = "strong connectivity")]
    fn rejects_disconnected_graphs() {
        let mut b = rtr_graph::DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        let g = b.build().unwrap();
        ExactOracleScheme::build(&g);
    }
}
