//! # rtr-trees — shortest-path trees, double trees, and compact tree routing
//!
//! The building blocks shared by every routing scheme in the reproduction:
//!
//! * [`OutTree`] — a shortest-paths tree rooted at a center `v`, spanning a
//!   cluster (paper §3.2: `OutTree(C)`), storing for each member its parent
//!   and the fixed port its parent uses to reach it.
//! * [`InTree`] — shortest paths *from every member to* the root
//!   (`InTree(C)`), storing for each member the out-port of its first edge
//!   toward the root.
//! * [`DoubleTree`] — the union of the two (`DoubleTree(C)`), with
//!   `RTHeight(T)` = max roundtrip distance from the root to any member.
//! * [`routing::TreeRouter`] — the compact **fixed-port tree-routing scheme**
//!   of Lemma 14 (Thorup–Zwick / Fraigniaud–Gavoille): route from the root of
//!   an out-tree to any member along the optimal tree path with `O(1)` words
//!   stored per node and `O(log² n)`-bit addresses, via heavy-path
//!   decomposition and DFS intervals.
//!
//! Together, an `InTree` (next hops toward the root) plus a `TreeRouter` on
//! the `OutTree` (root to destination) give the "route within a double-tree
//! through its center" primitive that §4's `PolynomialStretch` and the
//! name-dependent substrates rely on.
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is a mid-pipeline substrate: its trees carry the
//! covers, dictionaries and schemes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod routing;
mod sptree;

pub use routing::{TreeLabel, TreeNodeTable, TreeRouter, TreeStep};
pub use sptree::{DoubleTree, InTree, OutTree};
