//! Shortest-path out-trees, in-trees and double trees over clusters.

use rtr_graph::algo::dijkstra::{dijkstra_filtered, dijkstra_reverse_filtered};
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{DiGraph, Distance, NodeId, Port, INFINITY};
use std::collections::{HashMap, HashSet};

/// A shortest-paths tree rooted at a center node, oriented *away* from the
/// root (paper §3.2, `OutTree(C)`).
///
/// Only the members reachable from the root (within the optional cluster
/// restriction) appear in the tree. For each member `v ≠ root` the tree stores
/// its parent and the port *at the parent* labelling the tree edge
/// `parent → v`; this is exactly the information needed to forward packets
/// down the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutTree {
    root: NodeId,
    /// Sorted members (includes the root).
    members: Vec<NodeId>,
    parent: HashMap<NodeId, NodeId>,
    /// Port at `parent[v]` for the edge `parent[v] → v`.
    parent_port: HashMap<NodeId, Port>,
    dist: HashMap<NodeId, Distance>,
    children: HashMap<NodeId, Vec<NodeId>>,
}

impl OutTree {
    /// Builds the shortest-paths out-tree from `root` over the whole graph.
    pub fn shortest_paths(g: &DiGraph, root: NodeId) -> Self {
        Self::shortest_paths_within(g, root, None)
    }

    /// Builds the shortest-paths out-tree from `root`, restricted to the
    /// induced subgraph on `members` when `Some` (paths may not leave the
    /// cluster). Unreachable members are omitted from the tree.
    pub fn shortest_paths_within(g: &DiGraph, root: NodeId, members: Option<&[NodeId]>) -> Self {
        let allowed: Option<HashSet<NodeId>> = members.map(|m| m.iter().copied().collect());
        let filter = allowed.as_ref().map(|set| {
            let set = set.clone();
            move |v: NodeId| set.contains(&v)
        });
        let tree = match &filter {
            Some(f) => dijkstra_filtered(g, root, Some(f)),
            None => dijkstra_filtered(g, root, None),
        };

        let candidate_members: Vec<NodeId> = match &allowed {
            Some(set) => {
                let mut v: Vec<NodeId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            }
            None => g.nodes().collect(),
        };

        let mut out_members = Vec::new();
        let mut parent = HashMap::new();
        let mut parent_port = HashMap::new();
        let mut dist = HashMap::new();
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();

        for v in candidate_members {
            if !tree.is_reachable(v) {
                continue;
            }
            out_members.push(v);
            dist.insert(v, tree.distance(v));
            if v != root {
                let p = tree.parent[v.index()].expect("reachable non-root has a parent");
                let port =
                    tree.parent_port[v.index()].expect("reachable non-root has a parent port");
                parent.insert(v, p);
                parent_port.insert(v, port);
                children.entry(p).or_default().push(v);
            }
        }
        out_members.sort_unstable();
        for kids in children.values_mut() {
            kids.sort_unstable();
        }
        OutTree { root, members: out_members, parent, parent_port, dist, children }
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Sorted list of members (root included).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when only the root belongs to the tree.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// Whether `v` is spanned by the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.dist.contains_key(&v)
    }

    /// Tree distance `d(root, v)`, or [`INFINITY`] if `v` is not in the tree.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist.get(&v).copied().unwrap_or(INFINITY)
    }

    /// The parent of `v` in the tree (`None` for the root or non-members).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent.get(&v).copied()
    }

    /// The port at `parent(v)` labelling the edge `parent(v) → v`.
    pub fn parent_port(&self, v: NodeId) -> Option<Port> {
        self.parent_port.get(&v).copied()
    }

    /// Children of `v` in the tree.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.children.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The tree path `root → … → v`, or `None` if `v` is not a member.
    pub fn path_from_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Shortest paths from every member *to* the root (`InTree(C)` of §3.2).
///
/// Each member stores its next hop toward the root and the out-port of the
/// first edge of that path — the only state a node needs in order to forward
/// packets "up" toward the center.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InTree {
    root: NodeId,
    members: Vec<NodeId>,
    next_hop: HashMap<NodeId, NodeId>,
    /// Port at the member itself for its first edge toward the root.
    next_port: HashMap<NodeId, Port>,
    dist: HashMap<NodeId, Distance>,
}

impl InTree {
    /// Builds the in-tree toward `root` over the whole graph.
    pub fn shortest_paths(g: &DiGraph, root: NodeId) -> Self {
        Self::shortest_paths_within(g, root, None)
    }

    /// Builds the in-tree toward `root`, restricted to the induced subgraph on
    /// `members` when `Some`. Members that cannot reach the root inside the
    /// cluster are omitted.
    pub fn shortest_paths_within(g: &DiGraph, root: NodeId, members: Option<&[NodeId]>) -> Self {
        let allowed: Option<HashSet<NodeId>> = members.map(|m| m.iter().copied().collect());
        let filter = allowed.as_ref().map(|set| {
            let set = set.clone();
            move |v: NodeId| set.contains(&v)
        });
        let tree = match &filter {
            Some(f) => dijkstra_reverse_filtered(g, root, Some(f)),
            None => dijkstra_reverse_filtered(g, root, None),
        };

        let candidate_members: Vec<NodeId> = match &allowed {
            Some(set) => {
                let mut v: Vec<NodeId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            }
            None => g.nodes().collect(),
        };

        let mut out_members = Vec::new();
        let mut next_hop = HashMap::new();
        let mut next_port = HashMap::new();
        let mut dist = HashMap::new();
        for v in candidate_members {
            if !tree.is_reachable(v) {
                continue;
            }
            out_members.push(v);
            dist.insert(v, tree.distance(v));
            if v != root {
                let nh = tree.parent[v.index()].expect("reachable non-root has a next hop");
                let port = tree.parent_port[v.index()].expect("reachable non-root has a next port");
                next_hop.insert(v, nh);
                next_port.insert(v, port);
            }
        }
        out_members.sort_unstable();
        InTree { root, members: out_members, next_hop, next_port, dist }
    }

    /// The root (sink) of the in-tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Sorted members (root included).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `v` can reach the root within the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.dist.contains_key(&v)
    }

    /// Tree distance `d(v, root)`, or [`INFINITY`] for non-members.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist.get(&v).copied().unwrap_or(INFINITY)
    }

    /// Next node after `v` on its path to the root.
    pub fn next_hop(&self, v: NodeId) -> Option<NodeId> {
        self.next_hop.get(&v).copied()
    }

    /// Out-port at `v` of its first edge toward the root.
    pub fn next_port(&self, v: NodeId) -> Option<Port> {
        self.next_port.get(&v).copied()
    }

    /// The path `v → … → root`, or `None` if `v` is not a member.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(nh) = self.next_hop(cur) {
            path.push(nh);
            cur = nh;
        }
        Some(path)
    }
}

/// `DoubleTree(C)` — the union of [`InTree`] and [`OutTree`] rooted at the
/// same center (paper §3.2), supporting the "route through the center"
/// primitive and the `RTHeight` measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleTree {
    out: OutTree,
    in_: InTree,
    /// Members present in *both* trees (the nodes the double tree serves).
    members: Vec<NodeId>,
}

impl DoubleTree {
    /// Builds `DoubleTree(C)` centered at `root`, optionally restricted to a
    /// cluster. Members kept are those that both reach and are reachable from
    /// the root inside the restriction.
    pub fn build(g: &DiGraph, root: NodeId, members: Option<&[NodeId]>) -> Self {
        let out = OutTree::shortest_paths_within(g, root, members);
        let in_ = InTree::shortest_paths_within(g, root, members);
        let members: Vec<NodeId> =
            out.members().iter().copied().filter(|&v| in_.contains(v)).collect();
        DoubleTree { out, in_, members }
    }

    /// The center node.
    pub fn root(&self) -> NodeId {
        self.out.root()
    }

    /// Members served by the double tree (sorted).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members served.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether only the root is served.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// Whether `v` is served (in both component trees).
    pub fn contains(&self, v: NodeId) -> bool {
        self.out.contains(v) && self.in_.contains(v)
    }

    /// The out-tree component.
    pub fn out_tree(&self) -> &OutTree {
        &self.out
    }

    /// The in-tree component.
    pub fn in_tree(&self) -> &InTree {
        &self.in_
    }

    /// Roundtrip distance through the root: `d_T(v, root) + d_T(root, v)`.
    pub fn roundtrip_through_root(&self, v: NodeId) -> Distance {
        saturating_dist_add(self.in_.distance(v), self.out.distance(v))
    }

    /// `RTHeight(T)`: the maximum roundtrip distance from the root to any
    /// member (paper §3.2).
    pub fn rt_height(&self) -> Distance {
        self.members.iter().map(|&v| self.roundtrip_through_root(v)).max().unwrap_or(0)
    }

    /// Cost of routing `u → root → v` inside the double tree, or
    /// [`INFINITY`] if either endpoint is not served.
    pub fn route_cost_through_root(&self, u: NodeId, v: NodeId) -> Distance {
        saturating_dist_add(self.in_.distance(u), self.out.distance(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};
    use rtr_metric::DistanceMatrix;

    #[test]
    fn out_tree_distances_match_dijkstra() {
        let g = strongly_connected_gnp(40, 0.1, 21).unwrap();
        let m = DistanceMatrix::build(&g);
        let root = NodeId(0);
        let t = OutTree::shortest_paths(&g, root);
        assert_eq!(t.len(), g.node_count());
        for v in g.nodes() {
            assert_eq!(t.distance(v), m.distance(root, v));
        }
    }

    #[test]
    fn out_tree_parent_ports_label_tree_edges() {
        let g = strongly_connected_gnp(30, 0.15, 5).unwrap();
        let t = OutTree::shortest_paths(&g, NodeId(3));
        for v in g.nodes() {
            if v == NodeId(3) {
                assert!(t.parent(v).is_none());
                continue;
            }
            let p = t.parent(v).unwrap();
            let port = t.parent_port(v).unwrap();
            let edge = g.edge_by_port(p, port).unwrap();
            assert_eq!(edge.to, v, "port at parent must lead to the child");
        }
    }

    #[test]
    fn out_tree_paths_have_tree_distance() {
        let g = strongly_connected_gnp(25, 0.2, 6).unwrap();
        let t = OutTree::shortest_paths(&g, NodeId(1));
        for v in g.nodes() {
            let path = t.path_from_root(v).unwrap();
            assert_eq!(path[0], NodeId(1));
            assert_eq!(*path.last().unwrap(), v);
            let w = rtr_graph::algo::dijkstra::path_weight(&g, &path).unwrap();
            assert_eq!(w, t.distance(v));
        }
    }

    #[test]
    fn out_tree_children_are_consistent_with_parents() {
        let g = bidirected_grid(5, 5, 2).unwrap();
        let t = OutTree::shortest_paths(&g, NodeId(12));
        let mut counted = 1; // root
        for v in g.nodes() {
            for &c in t.children(v) {
                assert_eq!(t.parent(c), Some(v));
                counted += 1;
            }
        }
        assert_eq!(counted, t.len());
    }

    #[test]
    fn in_tree_distances_match_reverse_dijkstra() {
        let g = strongly_connected_gnp(40, 0.1, 22).unwrap();
        let m = DistanceMatrix::build(&g);
        let root = NodeId(7);
        let t = InTree::shortest_paths(&g, root);
        for v in g.nodes() {
            assert_eq!(t.distance(v), m.distance(v, root));
        }
    }

    #[test]
    fn in_tree_next_ports_point_along_shortest_paths() {
        let g = strongly_connected_gnp(30, 0.15, 8).unwrap();
        let root = NodeId(2);
        let t = InTree::shortest_paths(&g, root);
        for v in g.nodes() {
            if v == root {
                continue;
            }
            let port = t.next_port(v).unwrap();
            let edge = g.edge_by_port(v, port).unwrap();
            assert_eq!(edge.to, t.next_hop(v).unwrap());
            // Following the edge must decrease distance-to-root by its weight.
            assert_eq!(t.distance(v), edge.weight + t.distance(edge.to));
        }
    }

    #[test]
    fn in_tree_path_reaches_root() {
        let g = strongly_connected_gnp(20, 0.2, 9).unwrap();
        let root = NodeId(5);
        let t = InTree::shortest_paths(&g, root);
        for v in g.nodes() {
            let path = t.path_to_root(v).unwrap();
            assert_eq!(*path.last().unwrap(), root);
            let w = rtr_graph::algo::dijkstra::path_weight(&g, &path).unwrap();
            assert_eq!(w, t.distance(v));
        }
    }

    #[test]
    fn restricted_trees_stay_in_cluster() {
        let g = bidirected_grid(6, 6, 4).unwrap();
        let cluster: Vec<NodeId> = (0..18).map(NodeId::from_index).collect();
        let t = OutTree::shortest_paths_within(&g, NodeId(0), Some(&cluster));
        for &v in t.members() {
            assert!(cluster.contains(&v));
            if let Some(path) = t.path_from_root(v) {
                for x in path {
                    assert!(cluster.contains(&x), "tree path leaves the cluster");
                }
            }
        }
    }

    #[test]
    fn double_tree_heights_and_membership() {
        let g = strongly_connected_gnp(35, 0.12, 13).unwrap();
        let m = DistanceMatrix::build(&g);
        let root = NodeId(4);
        let dt = DoubleTree::build(&g, root, None);
        assert_eq!(dt.len(), g.node_count());
        for v in g.nodes() {
            assert_eq!(dt.roundtrip_through_root(v), m.roundtrip(root, v));
        }
        let expected_height = g.nodes().map(|v| m.roundtrip(root, v)).max().unwrap();
        assert_eq!(dt.rt_height(), expected_height);
    }

    #[test]
    fn double_tree_route_cost_bound() {
        let g = strongly_connected_gnp(30, 0.15, 17).unwrap();
        let dt = DoubleTree::build(&g, NodeId(0), None);
        let h = dt.rt_height();
        for u in g.nodes() {
            for v in g.nodes() {
                assert!(dt.route_cost_through_root(u, v) <= 2 * h.max(1));
            }
        }
    }

    #[test]
    fn double_tree_on_cluster_serves_strongly_connected_part() {
        let g = bidirected_grid(4, 4, 1).unwrap();
        let cluster: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(4), NodeId(5), NodeId(15)];
        let dt = DoubleTree::build(&g, NodeId(0), Some(&cluster));
        // Node 15 is isolated within the cluster (no adjacent cluster nodes),
        // so it is not served.
        assert!(dt.contains(NodeId(5)));
        assert!(!dt.contains(NodeId(15)));
    }
}
