//! Compact fixed-port tree routing (Lemma 14).
//!
//! Routes a packet from the **root** of an [`OutTree`] to any member along the
//! optimal tree path, in the fixed-port model, with
//!
//! * `O(1)` machine words stored at every tree node ([`TreeNodeTable`]), and
//! * an `O(log² n)`-bit address per destination ([`TreeLabel`]).
//!
//! The construction is the classic heavy-path + DFS-interval scheme of
//! Thorup–Zwick / Fraigniaud–Gavoille ("routing in trees"): every node stores
//! its own DFS interval, the port and interval of its *heavy* child (the child
//! with the largest subtree), and nothing else. The label of a destination `v`
//! records, for every **light** edge `(x → c)` on the root-to-`v` path, the
//! pair (DFS index of `x`, port of the edge at `x`). Any root-to-leaf path has
//! at most `⌊log₂ n⌋` light edges, so the label has `O(log n)` entries of
//! `O(log n)` bits.
//!
//! At an intermediate node `x`, forwarding needs only `x`'s table and the
//! label: if the destination's DFS index equals `x`'s, deliver; else if it
//! falls inside the heavy child's interval, take the heavy port; otherwise the
//! label must contain a light-edge entry keyed by `x`'s DFS index — take that
//! port.

use crate::sptree::OutTree;
use rtr_graph::{NodeId, Port};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-node routing state for one tree: a constant number of words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeNodeTable {
    /// DFS entry index of this node.
    pub dfs_start: u32,
    /// DFS interval `[dfs_start, dfs_end]` covering the node's subtree.
    pub dfs_end: u32,
    /// Port (at this node) toward the heavy child, if any.
    pub heavy_port: Option<Port>,
    /// DFS interval of the heavy child's subtree, if any.
    pub heavy_interval: Option<(u32, u32)>,
}

impl TreeNodeTable {
    /// Number of machine words this table occupies (for table-size accounting).
    pub fn words(&self) -> usize {
        // dfs interval (1 word packed) + heavy port + heavy interval.
        3
    }
}

/// The compact address of a destination in one tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLabel {
    /// DFS index of the destination.
    pub target_dfs: u32,
    /// For every light edge `(x → c)` on the root-to-destination path, the
    /// pair `(dfs_start of x, port at x)`, ordered from the root downward.
    pub light_hops: Vec<(u32, Port)>,
}

impl TreeLabel {
    /// Size of the label in bits, assuming `⌈log₂ n⌉`-bit DFS indices and
    /// port numbers (the paper's accounting convention).
    pub fn bits(&self, n: usize) -> usize {
        let word = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
        word + self.light_hops.len() * 2 * word
    }
}

/// One forwarding decision of the tree-routing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeStep {
    /// The current node is the destination.
    Deliver,
    /// Forward on this port.
    Forward(Port),
    /// The destination is not in the current node's subtree (routing started
    /// at a node other than the root, or the label belongs to another tree).
    NotInSubtree,
}

/// The tree-routing scheme for a single [`OutTree`]: per-node tables plus
/// per-destination labels (Lemma 14).
///
/// Labels are interned behind [`Arc`]: a member's address is minted once here
/// and every consumer (substrate records, scheme dictionary entries, packet
/// headers) shares the same allocation instead of cloning the light-hop
/// vector, so a label referenced from thousands of dictionary entries costs
/// one `TreeLabel` plus refcounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRouter {
    root: NodeId,
    tables: HashMap<NodeId, TreeNodeTable>,
    labels: HashMap<NodeId, Arc<TreeLabel>>,
    max_light_depth: usize,
}

impl TreeRouter {
    /// Builds tables and labels for every member of `tree`.
    pub fn build(tree: &OutTree) -> Self {
        let root = tree.root();
        // Iterative DFS computing subtree sizes first (post-order), then
        // intervals and heavy children, then labels via a top-down pass.
        let mut subtree_size: HashMap<NodeId, u32> = HashMap::new();
        // Post-order via two-phase stack.
        let mut stack = vec![(root, false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                let size: u32 = 1 + tree.children(v).iter().map(|c| subtree_size[c]).sum::<u32>();
                subtree_size.insert(v, size);
            } else {
                stack.push((v, true));
                for &c in tree.children(v) {
                    stack.push((c, false));
                }
            }
        }

        // Heavy child of each node = child with max subtree size (ties: smaller id).
        let mut heavy_child: HashMap<NodeId, NodeId> = HashMap::new();
        for &v in tree.members() {
            let best = tree
                .children(v)
                .iter()
                .copied()
                .max_by_key(|c| (subtree_size[c], std::cmp::Reverse(c.0)));
            if let Some(h) = best {
                heavy_child.insert(v, h);
            }
        }

        // DFS numbering visiting the heavy child first so heavy paths get
        // contiguous intervals.
        let mut dfs_start: HashMap<NodeId, u32> = HashMap::new();
        let mut dfs_end: HashMap<NodeId, u32> = HashMap::new();
        let mut counter: u32 = 0;
        // (node, phase) where phase=false -> entering.
        let mut stack = vec![(root, false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                // All descendants numbered: close the interval.
                let end = counter - 1;
                dfs_end.insert(v, end);
            } else {
                dfs_start.insert(v, counter);
                counter += 1;
                stack.push((v, true));
                // Push non-heavy children (reverse order), then heavy child last
                // so the heavy child is visited first.
                let heavy = heavy_child.get(&v).copied();
                let mut light: Vec<NodeId> =
                    tree.children(v).iter().copied().filter(|c| Some(*c) != heavy).collect();
                light.sort_unstable();
                for &c in light.iter().rev() {
                    stack.push((c, false));
                }
                if let Some(h) = heavy {
                    stack.push((h, false));
                }
            }
        }

        // Node tables.
        let mut tables = HashMap::new();
        for &v in tree.members() {
            let heavy = heavy_child.get(&v).copied();
            let (heavy_port, heavy_interval) = match heavy {
                Some(h) => (tree.parent_port(h), Some((dfs_start[&h], dfs_end[&h]))),
                None => (None, None),
            };
            tables.insert(
                v,
                TreeNodeTable {
                    dfs_start: dfs_start[&v],
                    dfs_end: dfs_end[&v],
                    heavy_port,
                    heavy_interval,
                },
            );
        }

        // Labels: walk from each member up to the root collecting light edges.
        let mut labels = HashMap::new();
        let mut max_light_depth = 0usize;
        for &v in tree.members() {
            let mut light_hops: Vec<(u32, Port)> = Vec::new();
            let mut cur = v;
            while let Some(p) = tree.parent(cur) {
                let is_heavy = heavy_child.get(&p) == Some(&cur);
                if !is_heavy {
                    let port = tree.parent_port(cur).expect("non-root member has parent port");
                    light_hops.push((dfs_start[&p], port));
                }
                cur = p;
            }
            light_hops.reverse();
            max_light_depth = max_light_depth.max(light_hops.len());
            labels.insert(v, Arc::new(TreeLabel { target_dfs: dfs_start[&v], light_hops }));
        }

        TreeRouter { root, tables, labels, max_light_depth }
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The per-node table of `v`, if `v` is a member.
    pub fn table(&self, v: NodeId) -> Option<&TreeNodeTable> {
        self.tables.get(&v)
    }

    /// The routing label (address) of member `v`, shared behind an [`Arc`]
    /// (clone it to store the address without copying the light-hop vector).
    pub fn label(&self, v: NodeId) -> Option<&Arc<TreeLabel>> {
        self.labels.get(&v)
    }

    /// The largest label (in bits, under the `⌈log₂ n⌉`-word convention) this
    /// router hands out — one pass over the minted labels, no per-node probing.
    pub fn max_label_bits(&self, n: usize) -> usize {
        self.labels.values().map(|l| l.bits(n)).max().unwrap_or(0)
    }

    /// Maximum number of light-edge entries in any label (≤ ⌊log₂ n⌋).
    pub fn max_light_depth(&self) -> usize {
        self.max_light_depth
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the tree has at most its root.
    pub fn is_empty(&self) -> bool {
        self.tables.len() <= 1
    }

    /// The purely local forwarding decision at a node described by `table`,
    /// for a packet addressed by `label`.
    ///
    /// This is a free function of the *local* state only (no access to the
    /// global structure) so that it can be embedded verbatim into the
    /// distributed schemes' forwarding functions.
    pub fn step(table: &TreeNodeTable, label: &TreeLabel) -> TreeStep {
        let t = label.target_dfs;
        if t == table.dfs_start {
            return TreeStep::Deliver;
        }
        if t < table.dfs_start || t > table.dfs_end {
            return TreeStep::NotInSubtree;
        }
        if let (Some(port), Some((lo, hi))) = (table.heavy_port, table.heavy_interval) {
            if t >= lo && t <= hi {
                return TreeStep::Forward(port);
            }
        }
        // Must be reachable through a light edge out of this node; the label
        // carries its port keyed by our DFS index.
        for &(parent_dfs, port) in &label.light_hops {
            if parent_dfs == table.dfs_start {
                return TreeStep::Forward(port);
            }
        }
        TreeStep::NotInSubtree
    }

    /// Convenience: forwarding decision at node `v` (must be a member).
    pub fn step_at(&self, v: NodeId, label: &TreeLabel) -> TreeStep {
        match self.table(v) {
            Some(t) => Self::step(t, label),
            None => TreeStep::NotInSubtree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptree::OutTree;
    use rtr_graph::generators::{bidirected_grid, directed_ring, strongly_connected_gnp};
    use rtr_graph::DiGraph;

    /// Simulates routing from the tree root to `dest` using only local tables
    /// and the label, returning the traversed node sequence.
    fn route(g: &DiGraph, tree: &OutTree, router: &TreeRouter, dest: NodeId) -> Vec<NodeId> {
        let label = router.label(dest).expect("destination must be a member").clone();
        let mut cur = tree.root();
        let mut path = vec![cur];
        for _ in 0..g.node_count() + 1 {
            match router.step_at(cur, &label) {
                TreeStep::Deliver => return path,
                TreeStep::Forward(port) => {
                    let e = g.edge_by_port(cur, port).expect("port must resolve");
                    cur = e.to;
                    path.push(cur);
                }
                TreeStep::NotInSubtree => panic!("lost the subtree at {cur}"),
            }
        }
        panic!("routing did not terminate");
    }

    #[test]
    fn routes_along_optimal_tree_paths_random_graph() {
        let g = strongly_connected_gnp(60, 0.08, 31).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        for v in g.nodes() {
            let path = route(&g, &tree, &router, v);
            assert_eq!(path, tree.path_from_root(v).unwrap(), "suboptimal tree route to {v}");
        }
    }

    #[test]
    fn routes_on_grid_tree() {
        let g = bidirected_grid(7, 7, 5).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(24));
        let router = TreeRouter::build(&tree);
        for v in g.nodes() {
            let path = route(&g, &tree, &router, v);
            let w = rtr_graph::algo::dijkstra::path_weight(&g, &path).unwrap();
            assert_eq!(w, tree.distance(v));
        }
    }

    #[test]
    fn routes_on_degenerate_path_tree() {
        // A directed ring's out-tree from any root is a path: heavy-path
        // decomposition must produce labels with zero light hops.
        let g = directed_ring(40, 2).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        assert_eq!(router.max_light_depth(), 0);
        for v in g.nodes() {
            let path = route(&g, &tree, &router, v);
            assert_eq!(path.len(), v.index() + 1);
        }
    }

    #[test]
    fn label_light_depth_is_logarithmic() {
        let g = strongly_connected_gnp(500, 0.01, 77).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        let bound = (500f64).log2().floor() as usize;
        assert!(
            router.max_light_depth() <= bound,
            "light depth {} exceeds log2(n) = {}",
            router.max_light_depth(),
            bound
        );
    }

    #[test]
    fn label_bits_are_polylogarithmic() {
        let n = 1000;
        let g = strongly_connected_gnp(n, 0.008, 13).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        let word = (n as f64).log2().ceil() as usize;
        let bound = word + word * 2 * (n as f64).log2().floor() as usize; // O(log^2 n)
        for v in g.nodes() {
            let bits = router.label(v).unwrap().bits(n);
            assert!(bits <= bound, "label of {v} has {bits} bits > bound {bound}");
        }
    }

    #[test]
    fn node_tables_are_constant_size() {
        let g = strongly_connected_gnp(200, 0.03, 9).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(5));
        let router = TreeRouter::build(&tree);
        for v in g.nodes() {
            assert_eq!(router.table(v).unwrap().words(), 3);
        }
    }

    #[test]
    fn dfs_intervals_nest_properly() {
        let g = strongly_connected_gnp(80, 0.05, 3).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        for &v in tree.members() {
            let tv = router.table(v).unwrap();
            assert!(tv.dfs_start <= tv.dfs_end);
            for &c in tree.children(v) {
                let tc = router.table(c).unwrap();
                assert!(tc.dfs_start > tv.dfs_start);
                assert!(tc.dfs_end <= tv.dfs_end);
            }
            if let Some((lo, hi)) = tv.heavy_interval {
                assert!(lo > tv.dfs_start && hi <= tv.dfs_end);
            }
        }
    }

    #[test]
    fn step_detects_foreign_labels() {
        let g = strongly_connected_gnp(30, 0.1, 41).unwrap();
        let tree_a = OutTree::shortest_paths(&g, NodeId(0));
        let router_a = TreeRouter::build(&tree_a);
        // A label whose DFS index is outside the root's interval must be
        // rejected rather than looping.
        let bogus = TreeLabel { target_dfs: u32::MAX, light_hops: vec![] };
        assert_eq!(router_a.step_at(NodeId(0), &bogus), TreeStep::NotInSubtree);
    }

    #[test]
    fn routing_from_non_root_member_works_within_its_subtree() {
        let g = bidirected_grid(6, 6, 11).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        // Pick an internal node and one of its descendants.
        let internal = tree
            .members()
            .iter()
            .copied()
            .find(|&v| !tree.children(v).is_empty() && v != tree.root())
            .unwrap();
        let descendant = tree.children(internal)[0];
        let label = router.label(descendant).unwrap().clone();
        match router.step_at(internal, &label) {
            TreeStep::Forward(port) => {
                let e = g.edge_by_port(internal, port).unwrap();
                assert_eq!(e.to, descendant);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn rebuilding_from_the_same_tree_is_identical() {
        // Routers must be pure functions of the tree so that tables and labels
        // can be rebuilt on any replica and stay interchangeable.
        let g = strongly_connected_gnp(20, 0.2, 2).unwrap();
        let tree = OutTree::shortest_paths(&g, NodeId(0));
        let router = TreeRouter::build(&tree);
        let router2 = TreeRouter::build(&tree);
        assert_eq!(router.len(), router2.len());
        for v in g.nodes() {
            assert_eq!(router.label(v), router2.label(v));
            assert_eq!(router.table(v), router2.table(v));
        }
    }
}
