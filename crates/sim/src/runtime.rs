//! The hop-by-hop packet simulator.

use crate::report::{BriefRoundtrip, BriefTrace, RoundtripReport, Trace};
use crate::traits::{ForwardAction, HeaderBits, RoundtripRouting, RoutingError};
use rtr_dictionary::NodeName;
use rtr_graph::{DiGraph, Distance, NodeId, Port};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Simulator knobs.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Maximum hops a single (one-way) trip may take before the run is
    /// declared non-terminating. Defaults to `8·n + 64`, far beyond what any
    /// correct scheme needs.
    pub max_hops: usize,
    /// Directed edges considered failed: forwarding onto one raises
    /// [`SimError::LinkDown`]. Used by the failure-injection tests.
    pub failed_links: HashSet<(NodeId, NodeId)>,
}

impl SimulatorConfig {
    /// The default configuration for a graph of `n` nodes.
    pub fn for_nodes(n: usize) -> Self {
        SimulatorConfig { max_hops: 8 * n + 64, failed_links: HashSet::new() }
    }

    /// Marks the directed edge `(u, v)` as failed.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.failed_links.insert((u, v));
        self
    }
}

/// Errors the runtime can report for a single packet.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The forwarding function named a port that does not exist at the node.
    PortNotFound {
        /// Node whose table produced the bad port.
        at: NodeId,
        /// The port that failed to resolve.
        port: Port,
    },
    /// The hop budget was exhausted (the scheme looped or wandered).
    TtlExceeded {
        /// Hops taken before giving up.
        hops: usize,
    },
    /// The packet was delivered at a node other than the expected one.
    WrongDelivery {
        /// Where it was delivered.
        delivered_at: NodeId,
        /// Where it should have been delivered.
        expected: NodeId,
    },
    /// The packet was forwarded onto a failed link.
    LinkDown {
        /// Tail of the failed edge.
        from: NodeId,
        /// Head of the failed edge.
        to: NodeId,
    },
    /// The scheme's forwarding function reported an internal error.
    Scheme(RoutingError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PortNotFound { at, port } => {
                write!(f, "port {port} does not exist at node {at}")
            }
            SimError::TtlExceeded { hops } => {
                write!(f, "packet exceeded hop budget after {hops} hops")
            }
            SimError::WrongDelivery { delivered_at, expected } => {
                write!(f, "packet delivered at {delivered_at}, expected {expected}")
            }
            SimError::LinkDown { from, to } => write!(f, "link ({from}, {to}) is down"),
            SimError::Scheme(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimError {}

impl From<RoutingError> for SimError {
    fn from(value: RoutingError) -> Self {
        SimError::Scheme(value)
    }
}

/// Drives packets through a graph under a [`RoundtripRouting`] scheme.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g DiGraph,
    config: SimulatorConfig,
}

impl<'g> Simulator<'g> {
    /// A simulator with default configuration for `graph`.
    pub fn new(graph: &'g DiGraph) -> Self {
        Simulator { graph, config: SimulatorConfig::for_nodes(graph.node_count()) }
    }

    /// A simulator with an explicit configuration.
    pub fn with_config(graph: &'g DiGraph, config: SimulatorConfig) -> Self {
        Simulator { graph, config }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        self.graph
    }

    /// The shared hop loop behind [`run_trip`](Self::run_trip) and
    /// [`run_trip_brief`](Self::run_trip_brief): forward hop by hop, resolve
    /// ports, enforce the TTL and failed links, and report each visited node
    /// to `on_hop`. Keeping both entry points on one loop guarantees the
    /// brief path is behaviorally identical to the tracing path.
    fn drive_trip<S: RoundtripRouting>(
        &self,
        scheme: &S,
        start: NodeId,
        header: &mut S::Header,
        mut on_hop: impl FnMut(NodeId),
    ) -> Result<BriefTrace, SimError> {
        let mut hops = 0usize;
        let mut weight = 0u64;
        let mut max_header_bits = header.bits();
        let mut at = start;
        for _ in 0..=self.config.max_hops {
            match scheme.forward(at, header)? {
                ForwardAction::Deliver => {
                    max_header_bits = max_header_bits.max(header.bits());
                    return Ok(BriefTrace { hops, weight, max_header_bits, delivered_at: at });
                }
                ForwardAction::Forward(port) => {
                    max_header_bits = max_header_bits.max(header.bits());
                    let edge = self
                        .graph
                        .edge_by_port(at, port)
                        .ok_or(SimError::PortNotFound { at, port })?;
                    if self.config.failed_links.contains(&(at, edge.to)) {
                        return Err(SimError::LinkDown { from: at, to: edge.to });
                    }
                    weight += edge.weight;
                    at = edge.to;
                    hops += 1;
                    on_hop(at);
                }
            }
        }
        Err(SimError::TtlExceeded { hops: self.config.max_hops })
    }

    /// Runs a single one-way trip: inject `header` at `start` and forward hop
    /// by hop until the scheme delivers.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the run (bad port, TTL, failed link, scheme
    /// error).
    pub fn run_trip<S: RoundtripRouting>(
        &self,
        scheme: &S,
        start: NodeId,
        mut header: S::Header,
    ) -> Result<(Trace, S::Header), SimError> {
        let mut nodes = vec![start];
        let brief = self.drive_trip(scheme, start, &mut header, |v| nodes.push(v))?;
        Ok((Trace { nodes, weight: brief.weight, max_header_bits: brief.max_header_bits }, header))
    }

    /// The allocation-free variant of [`run_trip`](Self::run_trip): same hop
    /// loop, same accounting, but no node sequence is recorded, so nothing is
    /// allocated per trip. The header is rewritten in place.
    ///
    /// This is the `&`-only forwarding entry point the concurrent serving
    /// plane (`rtr-engine`) drives from many worker threads at once: it takes
    /// `&self` and `&S`, touches no interior state, and is safe to call
    /// concurrently for any `S: Sync` scheme.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the run.
    pub fn run_trip_brief<S: RoundtripRouting>(
        &self,
        scheme: &S,
        start: NodeId,
        header: &mut S::Header,
    ) -> Result<BriefTrace, SimError> {
        self.drive_trip(scheme, start, header, |_| {})
    }

    /// The allocation-free variant of [`roundtrip`](Self::roundtrip): runs
    /// both legs through [`run_trip_brief`](Self::run_trip_brief) with the
    /// same delivery verification, returning compact per-leg accounting
    /// instead of full traces.
    ///
    /// # Errors
    ///
    /// Any [`SimError`], including [`SimError::WrongDelivery`] when either leg
    /// ends at an unexpected node.
    pub fn roundtrip_brief<S: RoundtripRouting>(
        &self,
        scheme: &S,
        src: NodeId,
        dst: NodeId,
        dst_name: NodeName,
    ) -> Result<BriefRoundtrip, SimError> {
        let mut header = scheme.new_packet(src, dst_name)?;
        let outbound = self.run_trip_brief(scheme, src, &mut header)?;
        if outbound.delivered_at != dst {
            return Err(SimError::WrongDelivery {
                delivered_at: outbound.delivered_at,
                expected: dst,
            });
        }
        let mut return_header = scheme.make_return(dst, &header)?;
        let inbound = self.run_trip_brief(scheme, dst, &mut return_header)?;
        if inbound.delivered_at != src {
            return Err(SimError::WrongDelivery {
                delivered_at: inbound.delivered_at,
                expected: src,
            });
        }
        Ok(BriefRoundtrip { source: src, destination: dst, outbound, inbound })
    }

    /// The cost-only roundtrip entry point: runs both legs through the
    /// allocation-free brief path (same delivery verification) and returns
    /// just the total traversed weight.
    ///
    /// This is the trip-cost path the verification plane (`rtr-engine`'s
    /// full-stream verifier and its sequential replay reference) compares
    /// against exact roundtrip distances — kept here so the verifier measures
    /// through exactly the loop that serves.
    ///
    /// # Errors
    ///
    /// Any [`SimError`], including [`SimError::WrongDelivery`] when either leg
    /// ends at an unexpected node.
    pub fn roundtrip_cost<S: RoundtripRouting>(
        &self,
        scheme: &S,
        src: NodeId,
        dst: NodeId,
        dst_name: NodeName,
    ) -> Result<Distance, SimError> {
        Ok(self.roundtrip_brief(scheme, src, dst, dst_name)?.total_weight())
    }

    /// Runs a complete roundtrip request: a new packet from `src` addressed to
    /// the TINN name `dst_name`, followed by the acknowledgment back to `src`.
    ///
    /// `dst` is the topological node that `dst_name` refers to; the simulator
    /// uses it only to *verify* correct delivery — it is never given to the
    /// scheme.
    ///
    /// # Errors
    ///
    /// Any [`SimError`], including [`SimError::WrongDelivery`] when either leg
    /// ends at an unexpected node.
    pub fn roundtrip<S: RoundtripRouting>(
        &self,
        scheme: &S,
        src: NodeId,
        dst: NodeId,
        dst_name: NodeName,
    ) -> Result<RoundtripReport, SimError> {
        let header = scheme.new_packet(src, dst_name)?;
        let (outbound, delivered_header) = self.run_trip(scheme, src, header)?;
        if outbound.delivered_at() != dst {
            return Err(SimError::WrongDelivery {
                delivered_at: outbound.delivered_at(),
                expected: dst,
            });
        }
        let return_header = scheme.make_return(dst, &delivered_header)?;
        let (inbound, _) = self.run_trip(scheme, dst, return_header)?;
        if inbound.delivered_at() != src {
            return Err(SimError::WrongDelivery {
                delivered_at: inbound.delivered_at(),
                expected: src,
            });
        }
        Ok(RoundtripReport { source: src, destination: dst, outbound, inbound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::TableStats;
    use rtr_graph::generators::directed_ring;

    /// A deliberately tiny scheme used to test the runtime itself: it routes
    /// around a directed ring by always taking the single outgoing edge, and
    /// counts down a hop budget written in the header.
    #[derive(Debug)]
    struct RingScheme {
        ports: Vec<Port>,
        n: usize,
    }

    #[derive(Debug, Clone)]
    struct RingHeader {
        remaining: usize,
        returning: bool,
        origin: NodeId,
        target_index: usize,
    }

    impl HeaderBits for RingHeader {
        fn bits(&self) -> usize {
            // Count the mode flag so headers grow on the return leg, giving
            // the max-header accounting something to observe.
            64 + usize::from(self.returning)
        }
    }

    impl RingScheme {
        fn new(g: &DiGraph) -> Self {
            let ports = g.nodes().map(|v| g.out_edges(v)[0].port).collect();
            RingScheme { ports, n: g.node_count() }
        }
    }

    impl RoundtripRouting for RingScheme {
        type Header = RingHeader;

        fn scheme_name(&self) -> &'static str {
            "test-ring"
        }

        fn new_packet(&self, src: NodeId, dst: NodeName) -> Result<RingHeader, RoutingError> {
            // In this toy scheme names equal indices.
            let target_index = dst.index();
            let remaining = (target_index + self.n - src.index()) % self.n;
            Ok(RingHeader { remaining, returning: false, origin: src, target_index })
        }

        fn make_return(
            &self,
            _at: NodeId,
            header: &RingHeader,
        ) -> Result<RingHeader, RoutingError> {
            let remaining = (header.origin.index() + self.n - header.target_index) % self.n;
            Ok(RingHeader { remaining, returning: true, ..header.clone() })
        }

        fn forward(
            &self,
            at: NodeId,
            header: &mut RingHeader,
        ) -> Result<ForwardAction, RoutingError> {
            if header.remaining == 0 {
                Ok(ForwardAction::Deliver)
            } else {
                header.remaining -= 1;
                Ok(ForwardAction::Forward(self.ports[at.index()]))
            }
        }

        fn table_stats(&self, _v: NodeId) -> TableStats {
            TableStats { entries: 1, bits: 32 }
        }
    }

    #[test]
    fn roundtrip_on_ring_delivers_and_accounts_weight() {
        let g = directed_ring(8, 1).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        let report = sim.roundtrip(&scheme, NodeId(2), NodeId(5), NodeName(5)).unwrap();
        assert_eq!(report.outbound.delivered_at(), NodeId(5));
        assert_eq!(report.inbound.delivered_at(), NodeId(2));
        assert_eq!(report.outbound.hops(), 3);
        assert_eq!(report.inbound.hops(), 5);
        let cycle: u64 = g.nodes().map(|u| g.out_edges(u)[0].weight).sum();
        assert_eq!(report.total_weight(), cycle);
    }

    #[test]
    fn brief_roundtrip_agrees_with_full_roundtrip() {
        let g = directed_ring(8, 1).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                let full = sim.roundtrip(&scheme, s, t, NodeName(t.0)).unwrap();
                let brief = sim.roundtrip_brief(&scheme, s, t, NodeName(t.0)).unwrap();
                assert!(brief.agrees_with(&full), "({s},{t}) brief/full disagreement");
            }
        }
    }

    #[test]
    fn roundtrip_cost_matches_the_full_report() {
        let g = directed_ring(8, 1).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                let full = sim.roundtrip(&scheme, s, t, NodeName(t.0)).unwrap();
                let cost = sim.roundtrip_cost(&scheme, s, t, NodeName(t.0)).unwrap();
                assert_eq!(cost, full.total_weight(), "({s},{t})");
            }
        }
        assert!(sim.roundtrip_cost(&scheme, NodeId(0), NodeId(4), NodeName(3)).is_err());
    }

    #[test]
    fn brief_roundtrip_detects_wrong_delivery() {
        let g = directed_ring(6, 2).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        let err = sim.roundtrip_brief(&scheme, NodeId(0), NodeId(4), NodeName(3)).unwrap_err();
        assert!(matches!(err, SimError::WrongDelivery { delivered_at, expected }
            if delivered_at == NodeId(3) && expected == NodeId(4)));
    }

    #[test]
    fn wrong_delivery_is_detected() {
        let g = directed_ring(6, 2).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        // Lie about which node the name refers to.
        let err = sim.roundtrip(&scheme, NodeId(0), NodeId(4), NodeName(3)).unwrap_err();
        assert!(matches!(err, SimError::WrongDelivery { delivered_at, expected }
            if delivered_at == NodeId(3) && expected == NodeId(4)));
    }

    #[test]
    fn ttl_catches_non_terminating_schemes() {
        #[derive(Debug)]
        struct LoopScheme {
            port: Port,
        }
        #[derive(Debug, Clone)]
        struct Nothing;
        impl HeaderBits for Nothing {
            fn bits(&self) -> usize {
                1
            }
        }
        impl RoundtripRouting for LoopScheme {
            type Header = Nothing;
            fn scheme_name(&self) -> &'static str {
                "loop"
            }
            fn new_packet(&self, _src: NodeId, _dst: NodeName) -> Result<Nothing, RoutingError> {
                Ok(Nothing)
            }
            fn make_return(&self, _at: NodeId, _h: &Nothing) -> Result<Nothing, RoutingError> {
                Ok(Nothing)
            }
            fn forward(
                &self,
                _at: NodeId,
                _h: &mut Nothing,
            ) -> Result<ForwardAction, RoutingError> {
                Ok(ForwardAction::Forward(self.port))
            }
            fn table_stats(&self, _v: NodeId) -> TableStats {
                TableStats::default()
            }
        }
        let g = directed_ring(4, 3).unwrap();
        let scheme = LoopScheme { port: g.out_edges(NodeId(0))[0].port };
        // All nodes in a ring generated with the same seed scramble have
        // different ports in general, so restrict the loop to consistent ports
        // by using a complete self-consistent config: just run on node 0's
        // port and expect either PortNotFound (at some node) or TtlExceeded.
        let sim = Simulator::new(&g);
        let err = sim.roundtrip(&scheme, NodeId(0), NodeId(2), NodeName(2)).unwrap_err();
        assert!(matches!(err, SimError::TtlExceeded { .. } | SimError::PortNotFound { .. }));
    }

    #[test]
    fn failed_links_are_reported() {
        let g = directed_ring(5, 4).unwrap();
        let scheme = RingScheme::new(&g);
        let mut config = SimulatorConfig::for_nodes(5);
        config.fail_link(NodeId(1), NodeId(2));
        let sim = Simulator::with_config(&g, config);
        let err = sim.roundtrip(&scheme, NodeId(0), NodeId(3), NodeName(3)).unwrap_err();
        assert_eq!(err, SimError::LinkDown { from: NodeId(1), to: NodeId(2) });
        // A trip that avoids the failed link still works.
        let ok = sim.roundtrip(&scheme, NodeId(2), NodeId(4), NodeName(4));
        assert!(ok.is_err() || ok.is_ok()); // the return leg wraps around through (1,2)
    }

    #[test]
    fn zero_hop_roundtrip_when_src_is_adjacent_name() {
        let g = directed_ring(4, 5).unwrap();
        let scheme = RingScheme::new(&g);
        let sim = Simulator::new(&g);
        // Destination equal to source: both legs deliver immediately.
        let report = sim.roundtrip(&scheme, NodeId(1), NodeId(1), NodeName(1)).unwrap();
        assert_eq!(report.total_hops(), 0);
        assert_eq!(report.total_weight(), 0);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimError::PortNotFound { at: NodeId(3), port: Port(9) };
        assert!(e.to_string().contains("p9"));
        let e = SimError::TtlExceeded { hops: 77 };
        assert!(e.to_string().contains("77"));
    }
}
