//! # rtr-sim — the distributed packet-forwarding simulator
//!
//! The routing schemes of the paper are *distributed algorithms*: a node may
//! consult only (a) its own local routing table and (b) the writable header of
//! the packet in hand, and must answer with an outgoing **port** (fixed-port
//! model, §1.1.1/§1.1.3). This crate provides the runtime that enforces that
//! discipline and does the accounting the experiments report:
//!
//! * [`RoundtripRouting`] — the trait every scheme implements: build-time
//!   tables, a purely local forwarding function, and size accounting;
//! * [`Simulator`] — drives packets hop by hop, resolving ports against the
//!   graph, enforcing a TTL, optionally injecting link failures, and recording
//!   a [`Trace`] (nodes visited, weight, hops, maximum header bits seen);
//! * [`RoundtripReport`] — the outbound + return trip of one `(s, t)` request,
//!   with exact integer stretch accounting against `r(s, t)`.
//!
//! The simulator never looks inside a scheme's header and never gives a
//! scheme global information at forwarding time — schemes receive only the
//! current node id (which stands for "the node whose table is being
//! consulted") and the header.
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is the runtime the serving engine (`rtr-engine`)
//! drives on every query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod report;
mod runtime;
mod traits;

pub use report::{BriefRoundtrip, BriefTrace, RoundtripReport, Trace};
pub use runtime::{SimError, Simulator, SimulatorConfig};
pub use traits::{id_bits, ForwardAction, HeaderBits, RoundtripRouting, RoutingError, TableStats};
