//! Traces and roundtrip reports with exact stretch accounting.

use rtr_graph::{Distance, NodeId};
use rtr_metric::DistanceOracle;

/// The record of one packet's trip through the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The sequence of nodes visited, starting at the injection point and
    /// ending at the node that delivered the packet.
    pub nodes: Vec<NodeId>,
    /// Total weight of the traversed edges.
    pub weight: Distance,
    /// The largest header size (in bits) observed at any point of the trip.
    pub max_header_bits: usize,
}

impl Trace {
    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The node that injected the packet.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The node that delivered the packet to its host.
    pub fn delivered_at(&self) -> NodeId {
        *self.nodes.last().expect("trace is never empty")
    }
}

/// The compact accounting of one trip, produced by the allocation-free
/// serving path ([`crate::Simulator::run_trip_brief`]).
///
/// Identical to a [`Trace`] with the node sequence dropped: the concurrent
/// route-serving plane (`rtr-engine`) runs millions of roundtrips per second
/// and must not allocate a `Vec<NodeId>` per trip just to read its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BriefTrace {
    /// Number of edges traversed.
    pub hops: usize,
    /// Total weight of the traversed edges.
    pub weight: Distance,
    /// The largest header size (in bits) observed at any point of the trip.
    pub max_header_bits: usize,
    /// The node that delivered the packet to its host.
    pub delivered_at: NodeId,
}

impl BriefTrace {
    /// True when this brief trace agrees with the full trace `t` on every
    /// shared field (the equivalence the engine's tests assert).
    pub fn agrees_with(&self, t: &Trace) -> bool {
        self.hops == t.hops()
            && self.weight == t.weight
            && self.max_header_bits == t.max_header_bits
            && self.delivered_at == t.delivered_at()
    }
}

/// The two brief traces of one roundtrip request, mirroring
/// [`RoundtripReport`] without the node sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BriefRoundtrip {
    /// Source node `s`.
    pub source: NodeId,
    /// Destination node `t`.
    pub destination: NodeId,
    /// The outbound trip `s → t`.
    pub outbound: BriefTrace,
    /// The return trip `t → s`.
    pub inbound: BriefTrace,
}

impl BriefRoundtrip {
    /// Total weight of the roundtrip route actually taken.
    pub fn total_weight(&self) -> Distance {
        self.outbound.weight + self.inbound.weight
    }

    /// Total number of hops of the roundtrip.
    pub fn total_hops(&self) -> usize {
        self.outbound.hops + self.inbound.hops
    }

    /// The largest header written at any point of either trip.
    pub fn max_header_bits(&self) -> usize {
        self.outbound.max_header_bits.max(self.inbound.max_header_bits)
    }

    /// The roundtrip stretch of this request (see [`RoundtripReport::stretch`]).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or the pair is unreachable in `m`.
    pub fn stretch<O: DistanceOracle + ?Sized>(&self, m: &O) -> f64 {
        m.roundtrip_stretch(self.source, self.destination, self.total_weight())
    }

    /// Exact integer check that the roundtrip is within `num/den · r(s, t)`.
    pub fn within_stretch<O: DistanceOracle + ?Sized>(&self, m: &O, num: u64, den: u64) -> bool {
        m.within_stretch(self.source, self.destination, self.total_weight(), num, den)
    }

    /// True when this brief report agrees with the full report `r` on every
    /// shared field.
    pub fn agrees_with(&self, r: &RoundtripReport) -> bool {
        self.source == r.source
            && self.destination == r.destination
            && self.outbound.agrees_with(&r.outbound)
            && self.inbound.agrees_with(&r.inbound)
    }
}

/// The two traces of one roundtrip request `(s → t, t → s)` plus derived
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundtripReport {
    /// Source node `s`.
    pub source: NodeId,
    /// Destination node `t`.
    pub destination: NodeId,
    /// The outbound trip `s → t`.
    pub outbound: Trace,
    /// The return trip `t → s`.
    pub inbound: Trace,
}

impl RoundtripReport {
    /// Total weight of the roundtrip route actually taken.
    pub fn total_weight(&self) -> Distance {
        self.outbound.weight + self.inbound.weight
    }

    /// Total number of hops of the roundtrip.
    pub fn total_hops(&self) -> usize {
        self.outbound.hops() + self.inbound.hops()
    }

    /// The largest header written at any point of either trip.
    pub fn max_header_bits(&self) -> usize {
        self.outbound.max_header_bits.max(self.inbound.max_header_bits)
    }

    /// The roundtrip stretch of this request: total weight divided by
    /// `r(s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or the pair is unreachable in `m`.
    pub fn stretch<O: DistanceOracle + ?Sized>(&self, m: &O) -> f64 {
        m.roundtrip_stretch(self.source, self.destination, self.total_weight())
    }

    /// Exact integer check that the roundtrip is within `num/den · r(s, t)`.
    pub fn within_stretch<O: DistanceOracle + ?Sized>(&self, m: &O, num: u64, den: u64) -> bool {
        m.within_stretch(self.source, self.destination, self.total_weight(), num, den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(nodes: &[u32], weight: Distance, bits: usize) -> Trace {
        Trace { nodes: nodes.iter().map(|&i| NodeId(i)).collect(), weight, max_header_bits: bits }
    }

    #[test]
    fn trace_accessors() {
        let t = trace(&[0, 3, 5], 9, 64);
        assert_eq!(t.hops(), 2);
        assert_eq!(t.source(), NodeId(0));
        assert_eq!(t.delivered_at(), NodeId(5));
    }

    #[test]
    fn zero_hop_trace() {
        let t = trace(&[4], 0, 16);
        assert_eq!(t.hops(), 0);
        assert_eq!(t.source(), NodeId(4));
        assert_eq!(t.delivered_at(), NodeId(4));
    }

    #[test]
    fn report_totals() {
        let r = RoundtripReport {
            source: NodeId(0),
            destination: NodeId(5),
            outbound: trace(&[0, 3, 5], 9, 64),
            inbound: trace(&[5, 0], 4, 96),
        };
        assert_eq!(r.total_weight(), 13);
        assert_eq!(r.total_hops(), 3);
        assert_eq!(r.max_header_bits(), 96);
    }

    #[test]
    fn stretch_against_matrix() {
        use rtr_graph::generators::directed_ring;
        use rtr_metric::DistanceMatrix;
        let g = directed_ring(4, 0).unwrap();
        let m = DistanceMatrix::build(&g);
        let r = m.roundtrip(NodeId(0), NodeId(1));
        let report = RoundtripReport {
            source: NodeId(0),
            destination: NodeId(1),
            outbound: trace(&[0, 1], r / 2, 8),
            inbound: trace(&[1, 2, 3, 0], r - r / 2, 8),
        };
        assert!((report.stretch(&m) - 1.0).abs() < 1e-12);
        assert!(report.within_stretch(&m, 1, 1));
        assert!(report.within_stretch(&m, 6, 1));
    }
}
