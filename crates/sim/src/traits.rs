//! The scheme-facing traits: local forwarding, header accounting, table stats.

use rtr_dictionary::NodeName;
use rtr_graph::{NodeId, Port};
use std::error::Error;
use std::fmt;

/// What a node's forwarding function decides to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardAction {
    /// Deliver the packet to the local host: the packet has reached the node
    /// it was addressed to (outbound) or its original source (return trip).
    Deliver,
    /// Forward the packet on the given local out-port.
    Forward(Port),
}

/// Headers must report their size in bits so the simulator can track the
/// maximum header size a scheme ever writes (the paper's `O(log² n)` /
/// `o(k log² n)` accounting).
pub trait HeaderBits {
    /// Current size of the header in bits.
    fn bits(&self) -> usize;
}

/// An error raised by a scheme's local forwarding function (e.g. a lookup that
/// the scheme's invariants say cannot fail did fail — always a bug, never an
/// expected runtime condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingError {
    /// Human-readable description.
    pub message: String,
    /// The node whose table was being consulted.
    pub at: NodeId,
}

impl RoutingError {
    /// Creates a routing error at node `at`.
    pub fn new(at: NodeId, message: impl Into<String>) -> Self {
        RoutingError { message: message.into(), at }
    }
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "routing error at {}: {}", self.at, self.message)
    }
}

impl Error for RoutingError {}

/// Size accounting for one node's local routing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Number of table entries (dictionary pairs, tree records, …).
    pub entries: usize,
    /// Estimated size in bits under the paper's accounting conventions
    /// (`O(log n)`-bit node names and ports, `O(log² n)`-bit tree labels, …).
    pub bits: usize,
}

impl TableStats {
    /// Sum of two accounts (useful when a table is assembled from parts).
    pub fn merged(self, other: TableStats) -> TableStats {
        TableStats { entries: self.entries + other.entries, bits: self.bits + other.bits }
    }
}

/// A compact roundtrip routing scheme as the simulator sees it (paper
/// §1.1.1): per-node tables fixed at build time, plus a purely local
/// forwarding function `F(table(x), header(P))`.
///
/// The three methods [`new_packet`](Self::new_packet),
/// [`make_return`](Self::make_return) and [`forward`](Self::forward) must only
/// use information that is locally available at the named node — the
/// implementations in `rtr-core` and `rtr-namedep` uphold this by reading only
/// `self.tables[at]` and the header.
pub trait RoundtripRouting {
    /// The scheme's writable packet header.
    type Header: HeaderBits + Clone + fmt::Debug;

    /// A short, stable scheme name used in experiment output.
    fn scheme_name(&self) -> &'static str;

    /// The header of a fresh packet entering the network at `src`, addressed
    /// only with the topology-independent destination name `dst` (TINN model:
    /// nothing else is known).
    ///
    /// # Errors
    ///
    /// Returns an error if `src` has no table in this scheme (build bug).
    fn new_packet(&self, src: NodeId, dst: NodeName) -> Result<Self::Header, RoutingError>;

    /// Converts the header of a packet that was just delivered at `at` into
    /// the header of the acknowledgment/reply packet (Mode ← ReturnPacket in
    /// the paper's pseudocode). The return header may reuse topology
    /// information learned on the forward trip — that is exactly what the
    /// model permits.
    ///
    /// # Errors
    ///
    /// Returns an error if the header is not one that was just delivered.
    fn make_return(&self, at: NodeId, header: &Self::Header) -> Result<Self::Header, RoutingError>;

    /// The local forwarding function: consult `at`'s table and the header,
    /// possibly rewrite the header, and decide what to do with the packet.
    ///
    /// # Errors
    ///
    /// Returns an error only on violated invariants (a malformed header or a
    /// corrupted table); correct builds never fail.
    fn forward(&self, at: NodeId, header: &mut Self::Header)
        -> Result<ForwardAction, RoutingError>;

    /// Size accounting for the local table of `v`.
    fn table_stats(&self, v: NodeId) -> TableStats;

    /// The largest table over all nodes.
    fn max_table_stats(&self, n: usize) -> TableStats {
        let mut worst = TableStats::default();
        for i in 0..n {
            let s = self.table_stats(NodeId::from_index(i));
            if s.bits > worst.bits {
                worst = s;
            }
        }
        worst
    }

    /// The average number of table entries per node.
    fn avg_table_entries(&self, n: usize) -> f64 {
        let total: usize = (0..n).map(|i| self.table_stats(NodeId::from_index(i)).entries).sum();
        total as f64 / n.max(1) as f64
    }
}

/// The number of bits needed to write a value in `{0, …, n−1}`; the accounting
/// convention used throughout (`⌈log₂ n⌉`, minimum 1).
pub fn id_bits(n: usize) -> usize {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_log2() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }

    #[test]
    fn table_stats_merge_adds_fields() {
        let a = TableStats { entries: 3, bits: 90 };
        let b = TableStats { entries: 2, bits: 10 };
        let c = a.merged(b);
        assert_eq!(c.entries, 5);
        assert_eq!(c.bits, 100);
    }

    #[test]
    fn routing_error_displays_node() {
        let e = RoutingError::new(NodeId(3), "missing dictionary entry");
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains("missing dictionary entry"));
    }
}
