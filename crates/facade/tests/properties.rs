//! Workspace-level property-based tests: random strongly connected digraphs,
//! random namings, random pairs — delivery and the paper's stretch bounds
//! must hold for every generated instance.

use compact_roundtrip_routing::prelude::*;
use proptest::prelude::*;
use rtr_graph::DiGraphBuilder;

/// Builds a random strongly connected digraph from a proptest-generated edge
/// soup plus a guaranteed Hamiltonian cycle.
fn graph_strategy() -> impl Strategy<Value = rtr_graph::DiGraph> {
    (8usize..28, 0u64..1000).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DiGraphBuilder::new(n);
        for i in 0..n {
            let u = NodeId(i as u32);
            let v = NodeId(((i + 1) % n) as u32);
            b.add_edge(u, v, rng.gen_range(1..20)).unwrap();
        }
        for _ in 0..3 * n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
                b.add_edge(NodeId(u), NodeId(v), rng.gen_range(1..20)).unwrap();
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracles_agree_with_the_dense_matrix(g in graph_strategy()) {
        // LazyDijkstraOracle (tightly bounded cache, to force evictions) and
        // CachedSubsetOracle must agree with DistanceMatrix on every pair.
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 3);
        let subset = CachedSubsetOracle::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(lazy.distance(u, v), dense.distance(u, v));
                prop_assert_eq!(subset.distance(u, v), dense.distance(u, v));
                prop_assert_eq!(lazy.roundtrip(u, v), dense.roundtrip(u, v));
                prop_assert_eq!(subset.roundtrip(u, v), dense.roundtrip(u, v));
            }
        }
    }

    #[test]
    fn matrix_build_is_thread_count_invariant(g in graph_strategy(), threads in 2usize..9) {
        // The lock-free chunks_mut build must be bit-identical for any worker
        // count (each worker owns a disjoint block of rows).
        let single = DistanceMatrix::build_with_threads(&g, 1);
        let multi = DistanceMatrix::build_with_threads(&g, threads);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(single.distance(u, v), multi.distance(u, v));
            }
        }
    }

    #[test]
    fn roundtrip_metric_axioms(g in graph_strategy()) {
        let m = DistanceMatrix::build(&g);
        prop_assert!(m.all_finite());
        for u in g.nodes() {
            prop_assert_eq!(m.roundtrip(u, u), 0);
            for v in g.nodes() {
                prop_assert_eq!(m.roundtrip(u, v), m.roundtrip(v, u));
                if u != v {
                    prop_assert!(m.roundtrip(u, v) >= 2);
                }
                for w in g.nodes() {
                    prop_assert!(m.roundtrip(u, w) <= m.roundtrip(u, v) + m.roundtrip(v, w));
                }
            }
        }
    }

    #[test]
    fn stretch6_bound_holds_on_random_instances(g in graph_strategy(), name_seed in 0u64..100) {
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), name_seed);
        let scheme = StretchSix::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            Stretch6Params::default(),
        );
        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                prop_assert!(report.within_stretch(&m, 6, 1));
            }
        }
    }

    #[test]
    fn exstretch_bound_holds_on_random_instances(g in graph_strategy(), k in 2u32..5) {
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 3);
        let scheme = ExStretch::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            ExStretchParams::with_k(k),
        );
        let sim = Simulator::new(&g);
        let bound = (1u64 << k) - 1;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                prop_assert!(report.within_stretch(&m, bound, 1));
            }
        }
    }

    #[test]
    fn polystretch_bound_holds_on_random_instances(g in graph_strategy()) {
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 5);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
        let sim = Simulator::new(&g);
        let bound = scheme.paper_stretch_bound();
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                prop_assert!(report.within_stretch(&m, bound, 1));
            }
        }
    }

    #[test]
    fn compact_substrate_always_delivers(g in graph_strategy(), name_seed in 0u64..50) {
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), name_seed);
        let substrate = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
        let scheme = StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                prop_assert!(report.total_weight() >= m.roundtrip(s, t));
            }
        }
    }
}
