//! Cross-crate integration tests: the full pipeline (graph → metric → covers
//! → dictionary → substrate → scheme → simulator) on every graph family, with
//! the paper's stretch bounds asserted as hard inequalities wherever a proven
//! substrate is used.

use compact_roundtrip_routing::prelude::*;
use rtr_graph::generators::Family;

fn all_pairs_check<S: RoundtripRouting>(
    g: &rtr_graph::DiGraph,
    m: &DistanceMatrix,
    names: &NamingAssignment,
    scheme: &S,
    bound: Option<(u64, u64)>,
) {
    let sim = Simulator::new(g);
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t {
                continue;
            }
            let report = sim
                .roundtrip(scheme, s, t, names.name_of(t))
                .unwrap_or_else(|e| panic!("{}: ({s},{t}): {e}", scheme.scheme_name()));
            if let Some((num, den)) = bound {
                assert!(
                    report.within_stretch(m, num, den),
                    "{}: pair ({s},{t}) exceeds {num}/{den}",
                    scheme.scheme_name()
                );
            }
        }
    }
}

#[test]
fn stretch6_all_families_all_pairs() {
    for family in Family::ALL {
        let g = family.generate(32, 2).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 5);
        let scheme = StretchSix::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            Stretch6Params::default(),
        );
        all_pairs_check(&g, &m, &names, &scheme, Some((6, 1)));
    }
}

#[test]
fn exstretch_all_families_all_pairs() {
    for family in Family::ALL {
        let g = family.generate(30, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 7);
        let k = 3u32;
        let scheme = ExStretch::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            ExStretchParams::with_k(k),
        );
        all_pairs_check(&g, &m, &names, &scheme, Some(((1 << k) - 1, 1)));
    }
}

#[test]
fn polystretch_all_families_all_pairs() {
    for family in Family::ALL {
        let g = family.generate(28, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 9);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
        all_pairs_check(&g, &m, &names, &scheme, Some((scheme.paper_stretch_bound(), 1)));
    }
}

#[test]
fn compact_pipeline_is_correct_and_grows_sublinearly() {
    // The headline configuration of the paper's abstract: compact tables at
    // every node (no oracle anywhere) and guaranteed delivery. At laptop-test
    // sizes the Õ(√n) constants still dominate n, so sublinearity is checked
    // as a growth rate: quadrupling-ish n must grow the largest table by a
    // strictly smaller factor.
    let mut max_entries = Vec::new();
    for n in [64usize, 196] {
        let g = Family::Gnp.generate(n, 11).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 13);
        let substrate = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
        let scheme = StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
        if n == 64 {
            all_pairs_check(&g, &m, &names, &scheme, None);
        }
        max_entries.push((
            g.node_count() as f64,
            g.nodes().map(|v| scheme.table_stats(v).entries).max().unwrap() as f64,
        ));
    }
    let (n0, e0) = max_entries[0];
    let (n1, e1) = max_entries[1];
    assert!(
        e1 / e0 < n1 / n0,
        "tables grew linearly or worse: {e0} -> {e1} while n went {n0} -> {n1}"
    );
}

#[test]
fn naming_reduction_composes_with_routing() {
    // Arbitrary 64-bit self-chosen identifiers, hashed to {0..n-1}, then used
    // as the TINN names of a live scheme.
    use compact_roundtrip_routing::dictionary::naming::NameRegistry;
    let g = Family::Grid.generate(49, 3).unwrap();
    let n = g.node_count();
    let m = DistanceMatrix::build(&g);
    let ids: Vec<u64> =
        (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(17)).collect();
    let registry = NameRegistry::new(&ids, 4).unwrap();
    // The registry may hash two ids to the same slot; a real deployment keeps
    // the bucket indirection, which for naming purposes is equivalent to
    // assigning collided nodes the next free slot. Resolve collisions the same
    // way here to obtain the TINN permutation.
    let mut taken = vec![false; n];
    let mut slots = Vec::with_capacity(n);
    for &id in ids.iter().take(n) {
        let mut s = registry.slot(id).unwrap().index();
        while taken[s] {
            s = (s + 1) % n;
        }
        taken[s] = true;
        slots.push(compact_roundtrip_routing::dictionary::NodeName(s as u32));
    }
    let names = NamingAssignment::from_names(slots);
    let scheme =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    all_pairs_check(&g, &m, &names, &scheme, Some((6, 1)));
}

#[test]
fn evaluation_harness_reports_consistent_numbers() {
    let g = Family::Gnp.generate(40, 6).unwrap();
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), 2);
    let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
    let eval = SchemeEvaluation::measure(&g, &m, &names, &scheme, PairSelection::AllPairs).unwrap();
    assert_eq!(eval.pairs, 40 * 39);
    assert!(eval.avg_stretch >= 1.0);
    assert!(eval.avg_stretch <= eval.max_stretch);
    assert!(eval.max_stretch <= scheme.paper_stretch_bound() as f64);
    assert!(eval.optimal_fraction >= 0.0 && eval.optimal_fraction <= 1.0);
    assert!(eval.max_table_bits >= eval.max_table_entries);
}

#[test]
fn schemes_reject_malformed_return_packets() {
    use compact_roundtrip_routing::sim::RoutingError;
    let g = Family::Gnp.generate(24, 8).unwrap();
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), 1);
    let scheme =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    // Creating a return packet anywhere other than the destination is a
    // protocol violation and must be reported, not silently accepted.
    let header = scheme.new_packet(NodeId(0), names.name_of(NodeId(5))).unwrap();
    let err: RoutingError = scheme.make_return(NodeId(7), &header).unwrap_err();
    assert!(err.to_string().contains("away from the destination"));
}
