//! # compact-roundtrip-routing
//!
//! A from-scratch Rust reproduction of
//! *"Compact roundtrip routing with topology-independent node names"*
//! (Arias, Cowen, Laing; PODC 2003 / JCSS 2008): the first name-independent
//! compact roundtrip routing schemes for strongly connected directed graphs,
//! together with every substrate they rely on.
//!
//! This facade crate re-exports the workspace members so that downstream users
//! (and the examples under `examples/`) can depend on a single crate:
//!
//! * [`graph`] — weighted digraphs, generators, shortest paths (`rtr-graph`);
//! * [`metric`] — the roundtrip metric behind the pluggable
//!   [`metric::DistanceOracle`] trait (dense `DistanceMatrix`, on-demand
//!   `LazyDijkstraOracle` with a bounded LRU row cache, memoising
//!   `CachedSubsetOracle`), plus `Init_v` orders (`rtr-metric`);
//! * [`trees`] — in/out/double trees and compact tree routing (`rtr-trees`);
//! * [`cover`] — sparse roundtrip covers and the Theorem 13 hierarchy
//!   (`rtr-cover`);
//! * [`dictionary`] — address blocks, the Lemma 1/4 distribution, name hashing
//!   (`rtr-dictionary`);
//! * [`namedep`] — name-dependent substrates (Lemma 2 / Lemma 5 stand-ins)
//!   (`rtr-namedep`);
//! * [`sim`] — the distributed forwarding simulator (`rtr-sim`);
//! * [`core`] — the paper's schemes: `StretchSix`, `ExStretch`,
//!   `PolynomialStretch`, the lower-bound construction and the evaluation
//!   harness (`rtr-core`);
//! * [`engine`] — the concurrent route-serving plane: frozen scheme
//!   snapshots, seeded workload generators, a work-stealing worker pool and
//!   latency/stretch accounting (`rtr-engine`).
//!
//! ```
//! use compact_roundtrip_routing::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::strongly_connected_gnp(64, 0.1, 7)?;
//! let m = DistanceMatrix::build(&g);
//! let names = NamingAssignment::random(g.node_count(), 1);
//! let scheme = StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Default::default());
//! let sim = Simulator::new(&g);
//! let report = sim.roundtrip(&scheme, NodeId(0), NodeId(9), names.name_of(NodeId(9)))?;
//! assert!(report.within_stretch(&m, 6, 1));
//!
//! // The same pipeline on a large sparse graph: swap the dense matrix for a
//! // lazy oracle and nothing else changes — every consumer is generic over
//! // `DistanceOracle`.
//! let lazy = LazyDijkstraOracle::with_default_capacity(&g);
//! let scheme2 = StretchSix::build(&g, &lazy, &names, ExactOracleScheme::build(&g), Default::default());
//! let report2 = sim.roundtrip(&scheme2, NodeId(0), NodeId(9), names.name_of(NodeId(9)))?;
//! assert_eq!(report2.total_weight(), report.total_weight());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtr_core as core;
pub use rtr_cover as cover;
pub use rtr_dictionary as dictionary;
pub use rtr_engine as engine;
pub use rtr_graph as graph;
pub use rtr_metric as metric;
pub use rtr_namedep as namedep;
pub use rtr_sim as sim;
pub use rtr_trees as trees;

/// The most commonly used items, for `use compact_roundtrip_routing::prelude::*`.
pub mod prelude {
    pub use rtr_core::analysis::{PairSelection, SchemeEvaluation};
    pub use rtr_core::naming::NamingAssignment;
    pub use rtr_core::{
        ExStretch, ExStretchParams, PolyParams, PolynomialStretch, SchemeSuite, SparseSchemeSuite,
        SparseSuiteParams, Stretch6Params, StretchSix, SuiteParams,
    };
    pub use rtr_dictionary::NodeName;
    pub use rtr_engine::{
        Engine, EngineConfig, FrozenPlane, Request, ServeSummary, ShardMap, ShardPolicy,
        ShardedPlane, StretchBound, VerifiedReport, VerifiedServe, VerifyConfig, VerifyMode,
        Workload,
    };
    pub use rtr_graph::{generators, DiGraph, DiGraphBuilder, NodeId};
    pub use rtr_metric::{
        CachedSubsetOracle, DistanceMatrix, DistanceOracle, LazyDijkstraOracle, RoundtripOrder,
    };
    pub use rtr_namedep::{
        ExactOracleScheme, LandmarkBallScheme, LandmarkParams, NameDependentSubstrate,
        TreeCoverScheme,
    };
    pub use rtr_sim::{RoundtripRouting, SimError, Simulator};
}
