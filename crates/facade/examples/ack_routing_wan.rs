//! Request/acknowledgment routing over an asymmetric wide-area network —
//! the scenario that motivates the *roundtrip* metric (§1, Cowen–Wagner): in
//! a directed network a packet and its acknowledgment cannot in general
//! retrace the same path, so cost must be accounted per round trip.
//!
//! The WAN is modelled as a layered digraph with one-way "express" links
//! (satellite/backbone links are frequently asymmetric), so `d(u,v)` and
//! `d(v,u)` differ wildly. The example compares the stretch-6 scheme and the
//! polynomial scheme on the same traffic matrix and prints how far each stays
//! from the optimal roundtrip.
//!
//! Run with: `cargo run --release --example ack_routing_wan`

use compact_roundtrip_routing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 layers of 16 routers with asymmetric connectivity.
    let g = generators::layered_cycle(16, 16, 5)?;
    let m = DistanceMatrix::build(&g);
    let n = g.node_count();
    println!("WAN model: {g}");

    // How asymmetric is it? Compare d(u,v) with d(v,u) over a sample.
    let mut ratio_sum = 0.0;
    let mut samples = 0;
    for i in 0..200u32 {
        let u = NodeId(i % n as u32);
        let v = NodeId((i * 31 + 7) % n as u32);
        if u == v {
            continue;
        }
        let a = m.distance(u, v) as f64;
        let b = m.distance(v, u) as f64;
        ratio_sum += a.max(b) / a.min(b);
        samples += 1;
    }
    println!("asymmetry: average max(d(u,v),d(v,u))/min = {:.2}\n", ratio_sum / samples as f64);

    let names = NamingAssignment::random(n, 23);
    let traffic = PairSelection::Sampled { count: 3000, seed: 8 };

    // Scheme 1: stretch-6 on the compact landmark substrate.
    let s6 = StretchSix::build(
        &g,
        &m,
        &names,
        LandmarkBallScheme::build(&g, &m, LandmarkParams::default()),
        Stretch6Params::default(),
    );
    let e6 = SchemeEvaluation::measure(&g, &m, &names, &s6, traffic)?;

    // Scheme 2: the polynomial scheme with k = 3.
    let poly = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(3));
    let ep = SchemeEvaluation::measure(&g, &m, &names, &poly, traffic)?;

    println!("{}", SchemeEvaluation::table_header());
    println!("{}", e6.table_row());
    println!("{}", ep.table_row());

    println!(
        "\nstretch-6: {:.0}% of request/ack pairs were routed at the optimal roundtrip cost",
        100.0 * e6.optimal_fraction
    );
    println!(
        "polynomial (k=3, bound {}): {:.0}% optimal, max header {} bits",
        poly.paper_stretch_bound(),
        100.0 * ep.optimal_fraction,
        ep.max_header_bits
    );
    Ok(())
}
