//! Quickstart: build a strongly connected digraph, construct the stretch-6
//! TINN scheme on it, and route a few packets through the distributed
//! simulator, printing the routes and their stretch.
//!
//! Run with: `cargo run --release --example quickstart`

use compact_roundtrip_routing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 256-node random strongly connected digraph with weights in [1, 16].
    let g = generators::strongly_connected_gnp(256, 0.03, 42)?;
    println!("graph: {g}");

    // 2. All-pairs distances (used for table construction and for measuring
    //    stretch — routing itself never consults them).
    let m = DistanceMatrix::build(&g);

    // 3. The adversary names the nodes with a random permutation of 0..n.
    let names = NamingAssignment::random(g.node_count(), 7);

    // 4. Build the stretch-6 scheme on the compact landmark substrate.
    let substrate = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
    let scheme = StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
    let worst_table = scheme.table_stats(NodeId(0));
    println!(
        "tables built: neighborhood size {}, node 0 stores {} entries ({} bits)",
        scheme.neighborhood_size(),
        worst_table.entries,
        worst_table.bits
    );

    // 5. Route a handful of roundtrip requests.
    let sim = Simulator::new(&g);
    for (s, t) in [(0u32, 200u32), (17, 3), (101, 250), (255, 1)] {
        let (s, t) = (NodeId(s), NodeId(t));
        let report = sim.roundtrip(&scheme, s, t, names.name_of(t))?;
        println!(
            "{s} -> name {:>4} (node {t}): {} hops out, {} hops back, weight {}, r(s,t) = {}, stretch {:.3}",
            names.name_of(t),
            report.outbound.hops(),
            report.inbound.hops(),
            report.total_weight(),
            m.roundtrip(s, t),
            report.stretch(&m)
        );
    }

    // 6. Aggregate over a sample of requests.
    let eval = SchemeEvaluation::measure(
        &g,
        &m,
        &names,
        &scheme,
        PairSelection::Sampled { count: 2000, seed: 1 },
    )?;
    println!("\n{}", SchemeEvaluation::table_header());
    println!("{}", eval.table_row());
    Ok(())
}
