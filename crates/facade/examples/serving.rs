//! Engine quickstart: freeze a built scheme into a sharded serving plane and
//! drive skewed workloads through the multi-threaded engine with strided
//! verification.
//!
//! ```text
//! cargo run --release -p compact-roundtrip-routing --example serving
//! ```

use compact_roundtrip_routing::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a scheme exactly as in the quickstart…
    let g = Arc::new(generators::strongly_connected_gnp(256, 0.04, 7)?);
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), 1);
    let scheme =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Default::default());

    // …then freeze it into a read-only plane (Arc snapshots, no locks),
    // partition the destinations into four hash shards, and serve.  The same
    // requests always produce the same reports, whatever the shard or worker
    // count — the engine is observationally identical to the sequential
    // `Simulator`.
    let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    let sharded = ShardedPlane::new(plane, ShardMap::hashed(g.node_count(), 4, 42));
    let engine = Engine::new(EngineConfig::with_workers(4));
    // Verify a 1-in-16 strided sample of every stream against the exact
    // metric, enforcing the §2 scheme's proven stretch-6 ceiling.
    let verify = VerifyConfig::sampled(16).with_bound(StretchBound::at_most(6));

    println!("workload        queries/s   avg-hops   p50/p95/p99 hops   p99-stretch   handoffs");
    for workload in Workload::ALL {
        let requests = workload.generate(g.node_count(), 50_000, 42);
        let outcome = engine.serve_verified_sharded(&sharded, &requests, &m, &verify)?;
        let (h50, h95, h99) = outcome.summary.hop_latency();
        let handoffs: u64 = outcome.shards.iter().map(|s| s.handoffs).sum();
        println!(
            "{:<14} {:>10.0} {:>10.2} {:>18} {:>13.3} {:>10}",
            workload.name(),
            outcome.summary.queries_per_sec(),
            outcome.summary.avg_hops(),
            format!("{h50}/{h95}/{h99}"),
            outcome.report.histogram.percentile(0.99),
            handoffs,
        );
        // Strict verification already enforced the bound; spell it out.
        assert!(outcome.report.is_clean());
        assert!(outcome.report.max_stretch() <= 6.0 + 1e-9);
    }
    Ok(())
}
