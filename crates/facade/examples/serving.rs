//! Engine quickstart: freeze a built scheme into a serving plane and drive
//! skewed workloads through the multi-threaded engine.
//!
//! ```text
//! cargo run --release -p compact-roundtrip-routing --example serving
//! ```

use compact_roundtrip_routing::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a scheme exactly as in the quickstart…
    let g = Arc::new(generators::strongly_connected_gnp(256, 0.04, 7)?);
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), 1);
    let scheme =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Default::default());

    // …then freeze it into a read-only plane (Arc snapshots, no locks) and
    // serve. The same requests always produce the same reports, whatever the
    // worker count — the engine is observationally identical to the
    // sequential `Simulator`.
    let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    let engine = Engine::new(EngineConfig::with_workers(4));

    println!("workload        queries/s   avg-hops   p50/p95/p99 hops   p99-stretch");
    for workload in Workload::ALL {
        let requests = workload.generate(g.node_count(), 50_000, 42);
        let summary = engine.serve(&plane, &requests)?;
        let (h50, h95, h99) = summary.hop_latency();
        let stretch = summary.stretch_summary(&m).expect("samples collected");
        println!(
            "{:<14} {:>10.0} {:>10.2} {:>18} {:>13.3}",
            workload.name(),
            summary.queries_per_sec(),
            summary.avg_hops(),
            format!("{h50}/{h95}/{h99}"),
            stretch.p99,
        );
        // The §2 scheme's stretch-6 guarantee holds under load, on every
        // sampled request.
        assert!(stretch.max <= 6.0 + 1e-9);
    }
    Ok(())
}
