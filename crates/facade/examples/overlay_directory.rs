//! Overlay directory lookup — the peer-to-peer motivation from the paper's
//! introduction and conclusions (§6): nodes join an overlay with *their own*
//! 64-bit identifiers (no coordinator assigns topology-aware addresses), and
//! lookups must reach a peer and return an acknowledgment knowing only that
//! identifier.
//!
//! The example wires together the §1.1.2 hashing reduction (arbitrary ids →
//! `{0..n−1}`), the ExStretch prefix-matching scheme (the same idea Pastry /
//! Tapestry use for object location, as the paper notes), and the simulator.
//!
//! Run with: `cargo run --release --example overlay_directory`

use compact_roundtrip_routing::dictionary::naming::NameRegistry;
use compact_roundtrip_routing::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An overlay of 512 peers on a scale-free-ish topology (preferential
    // attachment models AS-level / unstructured overlay graphs).
    let n = 512usize;
    let g = generators::preferential_attachment(n, 4, 11)?;
    let m = DistanceMatrix::build(&g);
    println!("overlay: {g}");

    // Every peer chose its own 64-bit identifier.
    let mut rng = StdRng::seed_from_u64(3);
    let mut peer_ids: Vec<u64> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while peer_ids.len() < n {
        let id = rng.gen::<u64>();
        if seen.insert(id) {
            peer_ids.push(id);
        }
    }

    // The §1.1.2 reduction: hash the self-chosen identifiers into {0..n-1}.
    // The resulting slot of peer i becomes its TINN name.
    let registry = NameRegistry::new(&peer_ids, 99)?;
    println!(
        "hashed {} peer ids into {} slots: max bucket {}, {} colliding slots",
        n,
        registry.slot_count(),
        registry.max_bucket_size(),
        registry.collision_slots()
    );
    // Peers whose identifiers collide share a dictionary slot; for naming we
    // resolve the collision by probing to the next free slot (the same
    // indirection the paper's bucket argument provides).
    let mut taken = vec![false; n];
    let slots: Vec<NodeName> = (0..n)
        .map(|i| {
            let mut s = registry.slot(peer_ids[i]).expect("registered").index();
            while taken[s] {
                s = (s + 1) % n;
            }
            taken[s] = true;
            NodeName(s as u32)
        })
        .collect();
    let names = NamingAssignment::from_names(slots);

    // Prefix-matching directory scheme with k = 3 digits over the compact
    // tree-cover substrate.
    let substrate = TreeCoverScheme::build(&g, &m, 2);
    let scheme = ExStretch::build(&g, &m, &names, substrate, ExStretchParams::with_k(3));

    // A burst of lookups: peer `s` resolves the identifier of peer `t` and
    // waits for the acknowledgment.
    let sim = Simulator::new(&g);
    let mut total_stretch = 0.0;
    let mut worst: f64 = 0.0;
    let lookups = 400;
    for i in 0..lookups {
        let s = NodeId((i * 37 % n as u32 as usize) as u32);
        let t = NodeId(((i * 211 + 13) % n) as u32);
        if s == t {
            continue;
        }
        let report = sim.roundtrip(&scheme, s, t, names.name_of(t))?;
        let stretch = report.stretch(&m);
        total_stretch += stretch;
        worst = worst.max(stretch);
        if i < 5 {
            println!(
                "lookup {:>2}: peer {} resolves id {:#018x} -> {} hops, stretch {:.2}",
                i,
                s,
                peer_ids[t.index()],
                report.total_hops(),
                stretch
            );
        }
    }
    println!(
        "\n{} lookups: average stretch {:.3}, worst {:.3}, per-node table at most {} entries",
        lookups,
        total_stretch / lookups as f64,
        worst,
        (0..n).map(|i| scheme.table_stats(NodeId(i as u32)).entries).max().unwrap()
    );
    Ok(())
}
