//! Scheme shootout: every scheme of the paper on the same graph, side by
//! side — the quickest way to see the space/stretch tradeoff of Fig. 1 in
//! action on a live instance.
//!
//! Run with: `cargo run --release --example scheme_shootout [n]`

use compact_roundtrip_routing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(192);
    let g = generators::strongly_connected_gnp(n, (8.0 / n as f64).min(0.5), 2024)?;
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), 77);
    let traffic = PairSelection::Sampled { count: 4000, seed: 5 };
    println!("instance: {g}\n");
    println!("{}", SchemeEvaluation::table_header());

    // All three schemes built concurrently over the one shared oracle
    // (rtr_core::SchemeSuite fans construction out across worker threads).
    let suite = SchemeSuite::build(&g, &m, &names, SuiteParams::default());
    for (label, eval) in [
        ("suite/s6", SchemeEvaluation::measure(&g, &m, &names, &suite.stretch6, traffic)?),
        ("suite/ex", SchemeEvaluation::measure(&g, &m, &names, &suite.exstretch, traffic)?),
        ("suite/poly", SchemeEvaluation::measure(&g, &m, &names, &suite.poly, traffic)?),
    ] {
        let mut eval = eval;
        eval.scheme = label.into();
        println!("{}", eval.table_row());
    }

    // Name-dependent reference substrates wrapped in the stretch-6 dictionary.
    let s6_oracle =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    let mut e = SchemeEvaluation::measure(&g, &m, &names, &s6_oracle, traffic)?;
    e.scheme = "s6 (oracle)".into();
    println!("{}", e.table_row());

    let s6_compact = StretchSix::build(
        &g,
        &m,
        &names,
        LandmarkBallScheme::build(&g, &m, LandmarkParams::default()),
        Stretch6Params::default(),
    );
    let mut e = SchemeEvaluation::measure(&g, &m, &names, &s6_compact, traffic)?;
    e.scheme = "s6 (landmark)".into();
    println!("{}", e.table_row());

    for k in [2u32, 3, 4] {
        let ex = ExStretch::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            ExStretchParams::with_k(k),
        );
        let mut e = SchemeEvaluation::measure(&g, &m, &names, &ex, traffic)?;
        e.scheme = format!("ex k={k} (orc)");
        println!("{}", e.table_row());
    }

    for k in [2u32, 3] {
        let poly = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(k));
        let mut e = SchemeEvaluation::measure(&g, &m, &names, &poly, traffic)?;
        e.scheme = format!("poly k={k}");
        println!("{}", e.table_row());
    }

    println!("\npaper bounds: s6 <= 6; ex <= (2^k - 1)*beta; poly <= 8k^2 + 4k - 4");
    Ok(())
}
