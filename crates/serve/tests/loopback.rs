//! Loopback integration tests: a real `TcpListener`, real client threads,
//! and the acceptance property that matters — the network session's
//! [`VerifiedReport`] is **bit-identical** to one in-process
//! `serve_verified_sharded` call over the same request stream, regardless
//! of network arrival order.

use rtr_core::naming::NamingAssignment;
use rtr_core::{Stretch6Params, StretchSix};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, Request, ShardMap, ShardedPlane, VerifyConfig,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::NodeId;
use rtr_metric::DistanceMatrix;
use rtr_namedep::ExactOracleScheme;
use rtr_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, WireRequest, WireResponse,
    MAX_FRAME_LEN, VERSION,
};
use rtr_serve::{Client, ClientError, ServeConfig, ServeOutcome, Status};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const N: u32 = 32;

struct Fixture {
    matrix: DistanceMatrix,
    sharded: ShardedPlane<StretchSix<ExactOracleScheme>>,
}

fn fixture(seed: u64, shards: usize) -> Fixture {
    let g = Arc::new(strongly_connected_gnp(N as usize, 0.15, seed).expect("generator"));
    let matrix = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(g.node_count(), seed ^ 0x9a7e);
    let scheme = StretchSix::build(
        &g,
        &matrix,
        &names,
        ExactOracleScheme::build(&g),
        Stretch6Params::default(),
    );
    let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    let sharded = ShardedPlane::new(plane, ShardMap::hashed(N as usize, shards, 9));
    Fixture { matrix, sharded }
}

/// Runs `client_work` against a live server and returns its outcome.
fn with_server<T: Send>(
    fx: &Fixture,
    config: ServeConfig,
    client_work: impl FnOnce(SocketAddr) -> T + Send,
) -> (ServeOutcome, T) {
    let engine = Engine::new(EngineConfig::with_workers(3));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            rtr_serve::serve(
                listener,
                &engine,
                &fx.sharded,
                &fx.matrix,
                &VerifyConfig::full(),
                &config,
                &shutdown,
            )
        });
        let result = client_work(addr);
        // client_work is expected to have sent SHUTDOWN; join the server.
        let outcome = server.join().expect("server panicked").expect("serve failed");
        (outcome, result)
    })
}

/// Deterministic (src, dst) pair with src != dst.
fn pair(seed: u64) -> (u32, u32) {
    let mut z = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    z ^= z >> 29;
    let src = (z as u32) % N;
    let dst = (src + 1 + ((z >> 32) as u32) % (N - 1)) % N;
    (src, dst)
}

#[test]
fn network_report_is_bit_identical_to_in_process() {
    let fx = fixture(5, 4);
    let total: usize = 600;
    let clients = 4;
    let per_client = total / clients;

    let served: Arc<Mutex<Vec<(u64, u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let (outcome, wire_report) = with_server(&fx, ServeConfig::default(), |addr| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                let served = Arc::clone(&served);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut sent = 0usize;
                    let mut k = 0u64;
                    while sent < per_client {
                        if c % 2 == 0 {
                            // Batch client: frames of up to 16 queries.
                            let want = 16.min(per_client - sent);
                            let pairs: Vec<(u32, u32)> = (0..want)
                                .map(|i| pair(((c as u64) << 32) | (k + i as u64)))
                                .collect();
                            k += want as u64;
                            let routes = client.batch(&pairs).expect("batch");
                            assert_eq!(routes.len(), pairs.len());
                            let mut log = served.lock().unwrap();
                            for (route, &(src, dst)) in routes.iter().zip(&pairs) {
                                log.push((route.index, src, dst));
                            }
                            sent += want;
                        } else {
                            // Single-route client.
                            let (src, dst) = pair((c as u64) << 32 | k);
                            k += 1;
                            let route = client.route(src, dst).expect("route");
                            served.lock().unwrap().push((route.index, src, dst));
                            sent += 1;
                        }
                    }
                });
            }
        });
        let mut control = Client::connect(addr).expect("connect control");
        let report = control.report().expect("report");
        control.shutdown().expect("shutdown");
        report
    });

    // Reconstruct the exact served stream from the returned indices.
    let log = served.lock().unwrap();
    assert_eq!(log.len(), total);
    let mut stream = vec![None; total];
    for &(index, src, dst) in log.iter() {
        let slot = stream.get_mut(index as usize).expect("index in range");
        assert!(slot.is_none(), "index {index} served twice");
        *slot = Some(Request { src: NodeId(src), dst: NodeId(dst) });
    }
    let stream: Vec<Request> = stream.into_iter().map(|r| r.expect("gap in stream")).collect();

    // The same stream served in one in-process call must match bit for bit.
    let engine = Engine::new(EngineConfig::with_workers(3));
    let in_process = engine
        .serve_verified_sharded(&fx.sharded, &stream, &fx.matrix, &VerifyConfig::full())
        .expect("in-process serve");
    assert_eq!(outcome.verified.report, in_process.report);
    assert_eq!(wire_report, in_process.report);
    assert_eq!(outcome.verified.report.checked, total);
    assert_eq!(outcome.served, total as u64);
    assert_eq!(outcome.rejected, 0);
    // Per-shard query counts are a pure function of destinations, so they
    // match too.
    for (net, local) in outcome.verified.shards.iter().zip(&in_process.shards) {
        assert_eq!(net.queries, local.queries);
    }
}

#[test]
fn admission_control_rejects_deterministically() {
    let fx = fixture(6, 2);
    let config = ServeConfig { inflight_max: 4, ..ServeConfig::default() };
    let (outcome, ()) = with_server(&fx, config, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let too_many: Vec<(u32, u32)> = (0..8u64).map(pair).collect();
        match client.batch(&too_many) {
            Err(ClientError::Rejected { status: Status::Overloaded, message }) => {
                assert!(message.contains("in-flight budget 4"), "{message}");
            }
            other => panic!("expected overload rejection, got {other:?}"),
        }
        // Within budget: served fine (the client blocks per frame, so the
        // budget is fully free again).
        let ok: Vec<(u32, u32)> = (0..4u64).map(pair).collect();
        assert_eq!(client.batch(&ok).expect("batch within budget").len(), 4);
        client.shutdown().expect("shutdown");
    });
    assert_eq!(outcome.rejected, 8);
    assert_eq!(outcome.served, 4);
    assert_eq!(outcome.verified.report.queries, 4);
}

#[test]
fn bad_nodes_are_rejected_before_the_engine() {
    let fx = fixture(7, 2);
    let (outcome, ()) = with_server(&fx, ServeConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for (src, dst) in [(3, 3), (N, 0), (0, u32::MAX)] {
            match client.route(src, dst) {
                Err(ClientError::Rejected { status: Status::BadNode, .. }) => {}
                other => panic!("({src},{dst}): expected BadNode, got {other:?}"),
            }
        }
        // One bad pair poisons a whole batch (it is all-or-nothing).
        match client.batch(&[(0, 1), (5, 5)]) {
            Err(ClientError::Rejected { status: Status::BadNode, .. }) => {}
            other => panic!("expected BadNode for batch, got {other:?}"),
        }
        client.shutdown().expect("shutdown");
    });
    assert_eq!(outcome.served, 0);
    assert_eq!(outcome.verified.report.queries, 0);
}

#[test]
fn malformed_frames_get_precise_statuses() {
    let fx = fixture(8, 2);
    let (outcome, ()) = with_server(&fx, ServeConfig::default(), |addr| {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut ask = |payload: &[u8]| -> WireResponse {
            write_frame(&mut raw, payload).expect("write");
            let frame = read_frame(&mut raw, MAX_FRAME_LEN).expect("read").expect("open");
            decode_response(&frame).expect("decode")
        };
        let status_of = |resp: WireResponse| match resp {
            WireResponse::Error { status, .. } => status,
            other => panic!("expected error response, got {other:?}"),
        };

        assert_eq!(status_of(ask(&[])), Status::Malformed);
        assert_eq!(status_of(ask(&[VERSION + 9, 0x01])), Status::UnsupportedVersion);
        assert_eq!(status_of(ask(&[VERSION, 0x7f])), Status::UnknownOpcode);
        // ROUTE with a truncated body.
        assert_eq!(status_of(ask(&[VERSION, 0x01, 0, 0])), Status::Malformed);
        // Opcode byte is echoed back for error correlation.
        match ask(&[VERSION, 0x7f]) {
            WireResponse::Error { opcode, .. } => assert_eq!(opcode, 0x7f),
            other => panic!("expected error, got {other:?}"),
        }
        // The connection stays usable after rejected frames.
        let ok = ask(&encode_request(&WireRequest::Health));
        assert!(matches!(ok, WireResponse::Health(_)));

        let mut client = Client::connect(addr).expect("connect");
        client.shutdown().expect("shutdown");
    });
    assert_eq!(outcome.served, 0);
    assert!(outcome.frames >= 6);
}

#[test]
fn health_and_metrics_expose_the_serving_plane() {
    let fx = fixture(9, 3);
    let (outcome, ()) = with_server(&fx, ServeConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (src, dst) = pair(77);
        client.route(src, dst).expect("route");

        let health = client.health().expect("health");
        assert_eq!(health.nodes, N);
        assert_eq!(health.shards, 3);
        assert_eq!(health.served, 1);
        assert_eq!(health.in_flight, 0);
        assert_eq!(health.rejected, 0);
        assert!(!health.degraded, "a healthy plane must not report degraded");

        let json = client.metrics().expect("metrics");
        // The wire string is Registry::to_json() verbatim — spot-check the
        // serve vocabulary and the exact formatting shape.
        assert!(json.starts_with("{\n"), "metrics is the registry JSON");
        assert!(json.ends_with("}\n"));
        for name in [
            "serve.net.connections",
            "serve.net.requests",
            "serve.net.route_ns",
            "serve.engine.batches",
        ] {
            assert!(json.contains(name), "metrics JSON misses {name}");
        }
        client.shutdown().expect("shutdown");
    });
    assert_eq!(outcome.served, 1);
}

#[test]
fn health_reports_degraded_during_a_fault_window_and_recovers() {
    let fx = fixture(11, 2);
    let engine = Engine::new(EngineConfig::with_workers(2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    let degraded = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            rtr_serve::serve_with_status(
                listener,
                &engine,
                &fx.sharded,
                &fx.matrix,
                &VerifyConfig::full(),
                &ServeConfig::default(),
                &shutdown,
                &degraded,
            )
        });
        let mut client = Client::connect(addr).expect("connect");
        assert!(!client.health().expect("health").degraded);

        // Fault injection opens the window: the chaos driver flips the
        // status flag…
        degraded.store(true, Ordering::Relaxed);
        assert!(client.health().expect("health in window").degraded);
        // …and serving keeps running through it — DEGRADED is advisory, not
        // an admission gate.
        let (src, dst) = pair(91);
        client.route(src, dst).expect("route during fault window");
        assert!(client.health().expect("health after route").degraded);

        // Repair closes the window.
        degraded.store(false, Ordering::Relaxed);
        let health = client.health().expect("health after repair");
        assert!(!health.degraded, "repair must clear the degraded byte");
        assert_eq!(health.served, 1);
        client.shutdown().expect("shutdown");
        let outcome = server.join().expect("server panicked").expect("serve failed");
        assert_eq!(outcome.served, 1);
    });
}

#[test]
fn oversized_frames_close_the_connection_with_too_large() {
    let fx = fixture(10, 2);
    let config = ServeConfig { max_frame_len: 64, ..ServeConfig::default() };
    let (_outcome, ()) = with_server(&fx, config, |addr| {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        // A length prefix far past the limit; the payload is never sent.
        std::io::Write::write_all(&mut raw, &1_000_000u32.to_be_bytes()).expect("prefix");
        let frame = read_frame(&mut raw, MAX_FRAME_LEN).expect("read").expect("reply");
        match decode_response(&frame).expect("decode") {
            WireResponse::Error { status, .. } => assert_eq!(status, Status::TooLarge),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Server closed its side after the oversize frame.
        assert!(read_frame(&mut raw, MAX_FRAME_LEN).expect("eof read").is_none());

        let mut client = Client::connect(addr).expect("connect");
        client.shutdown().expect("shutdown");
    });
}
