//! Property tests for the wire codec: encode→decode identity, strict-prefix
//! rejection, targeted corruption, and a random-byte fuzz loop — all driven
//! by the in-tree proptest shim.

use proptest::prelude::*;
use rtr_engine::{StretchHistogram, VerifiedReport, VerifiedTrip};
use rtr_graph::NodeId;
use rtr_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, Status, WireRequest,
    WireResponse, VERSION,
};
use rtr_serve::{HealthInfo, ServedRoute};

/// A deterministic request from three seeds (shape, then payload entropy).
fn request_from(shape: u32, a: u64, b: u64) -> WireRequest {
    match shape % 6 {
        0 => WireRequest::Route { src: a as u32, dst: b as u32 },
        1 => {
            let count = (a % 17) as usize;
            let pairs = (0..count)
                .map(|i| {
                    let x = a.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64);
                    let y = b.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(i as u64);
                    (x as u32, y as u32)
                })
                .collect();
            WireRequest::Batch(pairs)
        }
        2 => WireRequest::Health,
        3 => WireRequest::Metrics,
        4 => WireRequest::Report,
        _ => WireRequest::Shutdown,
    }
}

fn trip_from(seed: u64) -> VerifiedTrip {
    let mix = |k: u64| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17).wrapping_add(k);
    VerifiedTrip {
        index: (mix(1) % (1 << 40)) as usize,
        source: NodeId(mix(2) as u32),
        destination: NodeId(mix(3) as u32),
        measured: mix(4) % (1 << 50),
        exact: 1 + mix(5) % (1 << 49),
    }
}

/// A structurally valid synthetic report: ascending nonzero histogram
/// buckets whose total equals `checked`, as the strict decoder demands.
fn report_from(seed: u64, entries: usize, violations: usize) -> VerifiedReport {
    let mix = |k: u64| seed.wrapping_mul(0xbf58_476d_1ce4_e5b9).rotate_left(23).wrapping_add(k);
    let stride = 1 + (mix(0) as usize % 97);
    let pairs: Vec<(usize, u64)> = (0..entries)
        .map(|i| ((i * stride) % StretchHistogram::BUCKET_COUNT, 1 + mix(i as u64 + 1) % 1000))
        .collect();
    let mut pairs: Vec<(usize, u64)> = {
        let mut sorted = pairs;
        sorted.sort_unstable();
        sorted.dedup_by_key(|p| p.0);
        sorted
    };
    pairs.truncate(entries);
    let histogram = StretchHistogram::from_nonzero_buckets(&pairs).expect("valid buckets");
    let checked = histogram.count() as usize;
    VerifiedReport {
        queries: checked + (mix(90) % 1000) as usize,
        checked,
        total_measured: mix(91) as u128 * mix(92) as u128,
        total_exact: mix(93) as u128,
        histogram,
        worst: if mix(94) % 2 == 0 { Some(trip_from(mix(95))) } else { None },
        violations: (0..violations).map(|i| trip_from(mix(100 + i as u64))).collect(),
        epochs: Vec::new(),
    }
}

/// A deterministic response from three seeds.
fn response_from(shape: u32, a: u64, b: u64) -> WireResponse {
    match shape % 7 {
        0 => WireResponse::Route(ServedRoute { index: a, hops: b as u32, weight: a ^ b }),
        1 => WireResponse::Batch(
            (0..(a % 9)).map(|i| ServedRoute { index: i, hops: 1, weight: b ^ i }).collect(),
        ),
        2 => WireResponse::Health(HealthInfo {
            nodes: a as u32,
            shards: 1 + (b as u32 % 64),
            in_flight: a % 1000,
            served: b,
            rejected: a % 7,
            degraded: (a ^ b) % 2 == 1,
        }),
        3 => WireResponse::Metrics(format!("{{\n  \"counters\": {{\n    \"x\": {a}\n  }}\n}}\n")),
        4 => WireResponse::Report(report_from(a ^ b, (a % 20) as usize, (b % 5) as usize)),
        5 => WireResponse::Shutdown,
        _ => WireResponse::Error {
            opcode: a as u8,
            status: Status::from_code((b % 7 + 1) as u8).expect("error status"),
            message: format!("diag {a:x}"),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip(shape in 0u32..6, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let req = request_from(shape, a, b);
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip(shape in 0u32..7, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let resp = response_from(shape, a, b);
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp.clone());
    }

    #[test]
    fn strict_prefixes_of_requests_reject(shape in 0u32..6, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let bytes = encode_request(&request_from(shape, a, b));
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_request(&bytes[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    #[test]
    fn strict_prefixes_of_responses_reject(shape in 0u32..7, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let resp = response_from(shape, a, b);
        let bytes = encode_response(&resp);
        let text_body = matches!(
            &resp,
            WireResponse::Metrics(_) | WireResponse::Error { .. }
        );
        for cut in 0..bytes.len() {
            let decoded = decode_response(&bytes[..cut]);
            if text_body && cut >= 3 {
                // Free-text bodies have no length structure: a prefix is a
                // shorter (still valid) message, never a silent misread of
                // a structured record.
                if let Ok(d) = decoded {
                    prop_assert!(matches!(
                        d,
                        WireResponse::Metrics(_) | WireResponse::Error { .. }
                    ));
                }
            } else {
                prop_assert!(decoded.is_err(), "prefix of {} bytes decoded", cut);
            }
        }
    }

    #[test]
    fn version_and_opcode_corruption_is_precise(shape in 0u32..6, a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let mut bytes = encode_request(&request_from(shape, a, b));
        let original = bytes[0];
        bytes[0] = original.wrapping_add(1);
        prop_assert_eq!(decode_request(&bytes).unwrap_err().status, Status::UnsupportedVersion);
        bytes[0] = original;
        bytes[1] = 0x7f; // unassigned opcode
        prop_assert_eq!(decode_request(&bytes).unwrap_err().status, Status::UnknownOpcode);
    }

    #[test]
    fn random_bytes_never_panic(len in 0usize..256, seed in 0u64..u64::MAX) {
        // Fuzz loop: whatever the bytes, both decoders must return, not panic.
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        // Force VERSION + a valid opcode so fuzzing reaches the body parsers.
        if bytes.len() >= 2 {
            let mut steered = bytes.clone();
            steered[0] = VERSION;
            steered[1] = 1 + (steered[1] % 6);
            let _ = decode_request(&steered);
            if steered.len() >= 3 {
                steered[2] %= 8;
                let _ = decode_response(&steered);
            }
        }
    }
}

#[test]
fn corrupt_report_records_reject() {
    let report = report_from(42, 6, 2);
    let bytes = encode_response(&WireResponse::Report(report));
    assert!(decode_response(&bytes).is_ok());

    // Histogram count vs checked mismatch.
    let mut bad = bytes.clone();
    bad[18] ^= 1; // low byte of the `checked` u64 (header is 3 bytes, queries 8)
    assert!(decode_response(&bad).is_err());

    // Worst-trip flag out of range: find it by re-encoding a report with no
    // violations and flipping the last flag byte.
    let lone = VerifiedReport { worst: None, violations: Vec::new(), ..report_from(7, 3, 0) };
    let mut bytes = encode_response(&WireResponse::Report(lone));
    let flag_at = bytes.len() - 4 - 1; // before the trailing violations count
    assert_eq!(bytes[flag_at], 0);
    bytes[flag_at] = 9;
    assert!(decode_response(&bytes).is_err());
}
