//! # rtr-serve — the TCP front door over the verified serving engine
//!
//! A hand-rolled, zero-dependency, length-prefixed TCP server over
//! `std::net` — the same registry-less idiom as the workspace's hand-rolled
//! JSON — that puts the sharded, verified serving plane behind a socket:
//!
//! * **`ROUTE` / `BATCH`** — route queries, pooled per connection and
//!   coalesced by a single serving-core thread into the engine's per-shard
//!   destination buckets ([`Engine::open_stream`] →
//!   [`VerifiedStream::serve_batch`]), so the verification plane's
//!   ≈2·distinct(destinations) row economy survives network arrival order
//!   and the final [`VerifiedReport`](rtr_engine::VerifiedReport) is
//!   **bit-identical** to one in-process
//!   [`Engine::serve_verified_sharded`] call over the same stream.
//! * **`HEALTH`** — liveness plus vitals (nodes, shards, in-flight, served,
//!   rejected).
//! * **`METRICS`** — the telemetry registry as `Registry::to_json()`,
//!   verbatim, so `check_telemetry` can gate a network capture exactly like
//!   an in-process one.
//! * **`REPORT`** — the session's verified report so far, in a strict
//!   binary encoding.
//!
//! Admission control is a bounded in-flight budget
//! ([`ServeConfig::inflight_max`]): frames that would exceed it get
//! explicit [`Status::Overloaded`] rejections, counted in the registry
//! (`serve.net.rejected.overload`).  Per-endpoint latency lands in
//! `DurationHistogram` buckets (`serve.net.route_ns` …
//! `serve.net.report_ns`).
//!
//! The wire format — framing, version byte, opcodes, status codes, record
//! layouts, worked byte-level examples — is specified normatively in
//! **`docs/PROTOCOL.md`**; the [`protocol`] module is its executable
//! mirror, and the codec is property-tested (round-trip identity, strict
//! prefix rejection, random-byte fuzz) against the in-tree proptest shim.
//!
//! Start a server with [`serve`], speak to it with [`Client`]; the
//! [`Client`] doc example runs the full loopback round trip.
//!
//! [`Engine::open_stream`]: rtr_engine::Engine::open_stream
//! [`Engine::serve_verified_sharded`]: rtr_engine::Engine::serve_verified_sharded
//! [`VerifiedStream::serve_batch`]: rtr_engine::VerifiedStream::serve_batch

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod protocol;
mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    HealthInfo, Opcode, ServedRoute, Status, WireError, WireRequest, WireResponse, MAX_FRAME_LEN,
    VERSION,
};
pub use server::{serve, serve_with_status, ServeConfig, ServeOutcome};
