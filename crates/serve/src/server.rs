//! The server: an accept loop, one thread per connection, and a single
//! **serving-core** thread that owns the [`VerifiedStream`] session.
//!
//! Every route query from every connection funnels through the core, which
//! greedily coalesces whatever is queued (up to [`ServeConfig::batch_max`]
//! requests) into one [`VerifiedStream::serve_batch`] call.  The stream
//! session buckets each batch into the engine's per-shard destination
//! buckets, so the verification plane's ≈2·distinct(destinations) row
//! economy survives network arrival order — and the final report is
//! bit-identical to serving the same stream in one in-process
//! `serve_verified_sharded` call.
//!
//! Admission control is a bounded in-flight budget: a route or batch frame
//! whose queries would push the budget past
//! [`ServeConfig::inflight_max`] is rejected with
//! [`Status::Overloaded`](crate::Status::Overloaded) before it reaches the
//! core, and the rejection is counted (`serve.net.rejected.overload`).

use crate::protocol::{
    decode_request, encode_response, write_frame, HealthInfo, ServedRoute, Status, WireError,
    WireRequest, WireResponse, MAX_FRAME_LEN,
};
use rtr_engine::{
    Engine, Request, ServedTrip, ShardedPlane, VerifiedReport, VerifiedShardedServe, VerifyConfig,
    VerifyServeError,
};
use rtr_graph::NodeId;
use rtr_metric::DistanceOracle;
use rtr_sim::RoundtripRouting;
use rtr_telemetry::{counter, gauge, histogram, DurationHistogram};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`serve`].  `Default` matches the values the loopback
/// bench and CI smoke use, documented in `docs/OPERATIONS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission budget: route queries admitted but not yet answered.  A
    /// frame that would push past this is rejected with `Overloaded`.
    pub inflight_max: usize,
    /// Most queries the serving core folds into one engine batch when
    /// coalescing queued jobs.
    pub batch_max: usize,
    /// Most `(src, dst)` pairs a single `BATCH` frame may carry; larger
    /// frames are rejected with `TooLarge`.
    pub max_batch_frame: usize,
    /// Byte ceiling on incoming frame payloads; a longer length prefix gets
    /// a `TooLarge` response and the connection is closed.
    pub max_frame_len: u32,
    /// Socket read timeout — the granularity at which connection threads
    /// notice the shutdown flag.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            inflight_max: 16_384,
            batch_max: 1024,
            max_batch_frame: 4096,
            max_frame_len: MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// What a [`serve`] call hands back once the listener stops: the finished
/// verified session plus the connection-plane tallies (mirrors of the
/// `serve.net.*` telemetry, but scoped to this call so parallel tests don't
/// see each other's counts).
#[derive(Debug)]
pub struct ServeOutcome {
    /// The completed session: summary, bit-exact verified report, verify
    /// cost and per-shard stats — exactly what
    /// [`Engine::serve_verified_sharded`] returns for the same stream.
    pub verified: VerifiedShardedServe,
    /// Connections accepted.
    pub connections: u64,
    /// Frames that arrived (well-formed or not).
    pub frames: u64,
    /// Route queries served.
    pub served: u64,
    /// Route queries rejected by admission control.
    pub rejected: u64,
}

/// Counters and the shutdown flag shared by every thread of one `serve`
/// call.
struct Shared<'a> {
    shutdown: &'a AtomicBool,
    degraded: &'a AtomicBool,
    in_flight: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    connections: AtomicU64,
    frames: AtomicU64,
    nodes: u32,
    shards: u32,
    config: ServeConfig,
}

/// Work for the serving core.
enum Job {
    /// Serve `requests` and send the index-ordered trips back.
    Serve { requests: Vec<Request>, reply: mpsc::Sender<Result<Vec<ServedTrip>, String>> },
    /// Snapshot the session's report so far.
    Report { reply: mpsc::Sender<VerifiedReport> },
}

/// Runs the front door on `listener` until `shutdown` becomes `true`
/// (either externally or via a `SHUTDOWN` frame), then returns the finished
/// session.
///
/// The passed `verify` config is used with `strict` forced **off** for the
/// session so a stretch-bound violation can never abort a live server;
/// violations stay visible in the report, and callers re-check the bound on
/// the returned [`ServeOutcome::verified`] report if they want hard
/// enforcement.
///
/// See [`crate::Client`] for the matching doctest that drives a full
/// loopback round trip.
///
/// # Errors
///
/// Only listener-level I/O errors (`set_nonblocking`, fatal `accept`
/// failures) surface as `Err`; per-connection errors close that connection
/// and engine errors are reported to the affected clients as
/// [`Status::Internal`] responses.
pub fn serve<S, O>(
    listener: TcpListener,
    engine: &Engine,
    plane: &ShardedPlane<S>,
    oracle: &O,
    verify: &VerifyConfig,
    config: &ServeConfig,
    shutdown: &AtomicBool,
) -> io::Result<ServeOutcome>
where
    S: RoundtripRouting + Send + Sync,
    O: DistanceOracle + ?Sized,
{
    let never_degraded = AtomicBool::new(false);
    serve_with_status(listener, engine, plane, oracle, verify, config, shutdown, &never_degraded)
}

/// [`serve`] with an operator-owned **degraded flag**: while `degraded` is
/// `true`, every `HEALTH` response reports
/// [`HealthInfo::degraded`](crate::HealthInfo) set — the chaos plane's way
/// of telling clients a fault window is open and served routes may exceed
/// the proven ceiling until repair clears the flag.  The flag changes
/// nothing about serving itself; it is a status byte, flipped by whoever
/// drives the fault injection and repair.
///
/// # Errors
///
/// As [`serve`].
#[allow(clippy::too_many_arguments)]
pub fn serve_with_status<S, O>(
    listener: TcpListener,
    engine: &Engine,
    plane: &ShardedPlane<S>,
    oracle: &O,
    verify: &VerifyConfig,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    degraded: &AtomicBool,
) -> io::Result<ServeOutcome>
where
    S: RoundtripRouting + Send + Sync,
    O: DistanceOracle + ?Sized,
{
    listener.set_nonblocking(true)?;
    let shared = Shared {
        shutdown,
        degraded,
        in_flight: AtomicU64::new(0),
        served: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        frames: AtomicU64::new(0),
        nodes: plane.map().node_count() as u32,
        shards: plane.map().shard_count() as u32,
        config: *config,
    };
    let session_config = VerifyConfig { strict: false, ..*verify };

    let verified = std::thread::scope(|scope| -> io::Result<_> {
        let (tx, rx) = mpsc::channel::<Job>();
        let core = scope.spawn(|| {
            let session = engine.open_stream(plane, oracle, &session_config);
            run_core(session, rx, &shared)
        });

        while !shared.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    counter("serve.net.connections").inc();
                    let tx = tx.clone();
                    let shared = &shared;
                    scope.spawn(move || run_connection(stream, tx, shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.shutdown.store(true, Ordering::Relaxed);
                    drop(tx);
                    let _ = core.join();
                    return Err(e);
                }
            }
        }
        drop(tx);
        Ok(core.join().expect("serving core panicked"))
    })?;

    let verified = verified.map_err(|e| io::Error::other(e.to_string()))?;
    Ok(ServeOutcome {
        verified,
        connections: shared.connections.load(Ordering::Relaxed),
        frames: shared.frames.load(Ordering::Relaxed),
        served: shared.served.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
    })
}

/// The serving core: drain jobs, greedily coalescing queued `Serve` jobs up
/// to `batch_max` queries per engine call, then split the index-ordered
/// trips back out to each requester by offset.
fn run_core<S, O>(
    mut session: rtr_engine::VerifiedStream<'_, S, O>,
    rx: mpsc::Receiver<Job>,
    shared: &Shared<'_>,
) -> Result<VerifiedShardedServe, VerifyServeError>
where
    S: RoundtripRouting + Send + Sync,
    O: DistanceOracle + ?Sized,
{
    let batches = counter("serve.engine.batches");
    let batch_ns = histogram("serve.engine.batch_ns");
    let batch_fill = gauge("serve.engine.batch_fill");
    let mut stashed: Option<Job> = None;
    loop {
        let job = match stashed.take() {
            Some(job) => job,
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => break, // every sender gone: the listener stopped
            },
        };
        let (requests, reply) = match job {
            Job::Report { reply } => {
                let _ = reply.send(session.report().clone());
                continue;
            }
            Job::Serve { requests, reply } => (requests, reply),
        };
        let mut batch = requests;
        let mut replies = vec![(reply, batch.len())];
        // Coalesce whatever else is already queued, up to batch_max.
        while batch.len() < shared.config.batch_max {
            match rx.try_recv() {
                Ok(Job::Serve { requests, reply }) => {
                    replies.push((reply, requests.len()));
                    batch.extend_from_slice(&requests);
                }
                Ok(other) => {
                    stashed = Some(other);
                    break;
                }
                Err(_) => break,
            }
        }
        let start = Instant::now();
        let outcome = session.serve_batch(&batch);
        batches.inc();
        batch_ns.observe(start.elapsed());
        batch_fill.set_max(batch.len() as u64);
        shared.in_flight.fetch_sub(batch.len() as u64, Ordering::Relaxed);
        match outcome {
            Ok(trips) => {
                shared.served.fetch_add(batch.len() as u64, Ordering::Relaxed);
                // serve_batch returns trips sorted by global index, and the
                // session assigns indices in admission order — so the first
                // `len` trips belong to the first job, and so on.
                let mut at = 0;
                for (reply, len) in replies {
                    let _ = reply.send(Ok(trips[at..at + len].to_vec()));
                    at += len;
                }
            }
            Err(e) => {
                let message = e.to_string();
                for (reply, _) in replies {
                    let _ = reply.send(Err(message.clone()));
                }
            }
        }
    }
    session.finish()
}

/// Per-endpoint latency histograms, resolved once per connection.
struct Timers {
    route: DurationHistogram,
    batch: DurationHistogram,
    health: DurationHistogram,
    metrics: DurationHistogram,
    report: DurationHistogram,
}

impl Timers {
    fn new() -> Self {
        Timers {
            route: histogram("serve.net.route_ns"),
            batch: histogram("serve.net.batch_ns"),
            health: histogram("serve.net.health_ns"),
            metrics: histogram("serve.net.metrics_ns"),
            report: histogram("serve.net.report_ns"),
        }
    }
}

/// Reads frames off one connection until the peer closes, the shutdown flag
/// flips, or a protocol-level close (oversize frame) happens.
fn run_connection(mut stream: TcpStream, tx: mpsc::Sender<Job>, shared: &Shared<'_>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let timers = Timers::new();
    let frames = counter("serve.net.frames");
    let requests_admitted = counter("serve.net.requests");
    let rejected_overload = counter("serve.net.rejected.overload");
    let rejected_malformed = counter("serve.net.rejected.malformed");
    let in_flight_gauge = gauge("serve.net.in_flight");

    let mut prefix = [0u8; 4];
    loop {
        match read_full(&mut stream, &mut prefix, shared.shutdown) {
            ReadOutcome::Data => {}
            ReadOutcome::Closed | ReadOutcome::Stop => return,
        }
        let len = u32::from_be_bytes(prefix);
        shared.frames.fetch_add(1, Ordering::Relaxed);
        frames.inc();
        if len > shared.config.max_frame_len {
            // The payload was never read, so the stream is out of sync:
            // answer and close.
            let resp = WireResponse::Error {
                opcode: 0,
                status: Status::TooLarge,
                message: format!(
                    "frame length {len} exceeds the {}-byte limit",
                    shared.config.max_frame_len
                ),
            };
            let _ = write_frame(&mut stream, &encode_response(&resp));
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_full(&mut stream, &mut payload, shared.shutdown) {
            ReadOutcome::Data => {}
            ReadOutcome::Closed | ReadOutcome::Stop => return,
        }

        let started = Instant::now();
        let opcode_byte = payload.get(1).copied().unwrap_or(0);
        let (response, stop) = match decode_request(&payload) {
            Err(err) => {
                rejected_malformed.inc();
                (error_response(opcode_byte, err), false)
            }
            Ok(request) => {
                let admitted = admit(&request, shared, &requests_admitted, &in_flight_gauge);
                match admitted {
                    Err(err) => {
                        if err.status == Status::Overloaded {
                            let k = query_count(&request) as u64;
                            shared.rejected.fetch_add(k, Ordering::Relaxed);
                            rejected_overload.add(k);
                        } else {
                            rejected_malformed.inc();
                        }
                        (error_response(opcode_byte, err), false)
                    }
                    Ok(()) => answer(request, &tx, shared),
                }
            }
        };
        let wrote = write_frame(&mut stream, &encode_response(&response));
        match &response {
            WireResponse::Route(_) => timers.route.observe(started.elapsed()),
            WireResponse::Batch(_) => timers.batch.observe(started.elapsed()),
            WireResponse::Health(_) => timers.health.observe(started.elapsed()),
            WireResponse::Metrics(_) => timers.metrics.observe(started.elapsed()),
            WireResponse::Report(_) => timers.report.observe(started.elapsed()),
            WireResponse::Shutdown | WireResponse::Error { .. } => {}
        }
        if stop || wrote.is_err() {
            return;
        }
    }
}

/// How many route queries a request carries (0 for control frames).
fn query_count(request: &WireRequest) -> usize {
    match request {
        WireRequest::Route { .. } => 1,
        WireRequest::Batch(pairs) => pairs.len(),
        _ => 0,
    }
}

/// Validates node ids and charges the in-flight budget.  On `Ok(())` the
/// budget holds `query_count` slots that [`run_core`] releases after the
/// engine call.
fn admit(
    request: &WireRequest,
    shared: &Shared<'_>,
    requests_admitted: &rtr_telemetry::Counter,
    in_flight_gauge: &rtr_telemetry::Gauge,
) -> Result<(), WireError> {
    let pairs: &[(u32, u32)] = match request {
        WireRequest::Route { src, dst } => &[(*src, *dst)][..],
        WireRequest::Batch(pairs) => {
            if pairs.len() > shared.config.max_batch_frame {
                return Err(WireError {
                    status: Status::TooLarge,
                    message: format!(
                        "batch of {} exceeds the {}-query frame limit",
                        pairs.len(),
                        shared.config.max_batch_frame
                    ),
                });
            }
            pairs
        }
        _ => return Ok(()),
    };
    for &(src, dst) in pairs {
        if src >= shared.nodes || dst >= shared.nodes {
            return Err(WireError {
                status: Status::BadNode,
                message: format!("node out of range: ({src}, {dst}) with {} nodes", shared.nodes),
            });
        }
        if src == dst {
            return Err(WireError {
                status: Status::BadNode,
                message: format!("self-route {src} -> {dst}: roundtrips need src != dst"),
            });
        }
    }
    let k = pairs.len() as u64;
    let prev = shared.in_flight.fetch_add(k, Ordering::Relaxed);
    if prev + k > shared.config.inflight_max as u64 {
        shared.in_flight.fetch_sub(k, Ordering::Relaxed);
        return Err(WireError {
            status: Status::Overloaded,
            message: format!(
                "in-flight budget {} exhausted ({} queued)",
                shared.config.inflight_max, prev
            ),
        });
    }
    requests_admitted.add(k);
    in_flight_gauge.set_max(prev + k);
    Ok(())
}

/// Serves one admitted request, returning the response and whether the
/// connection should close afterwards.
fn answer(
    request: WireRequest,
    tx: &mpsc::Sender<Job>,
    shared: &Shared<'_>,
) -> (WireResponse, bool) {
    match request {
        WireRequest::Route { src, dst } => {
            let requests = vec![Request { src: NodeId(src), dst: NodeId(dst) }];
            match serve_on_core(requests, tx) {
                Ok(trips) => (WireResponse::Route(to_route(&trips[0])), false),
                Err(message) => (internal(&message), false),
            }
        }
        WireRequest::Batch(pairs) => {
            if pairs.is_empty() {
                return (WireResponse::Batch(Vec::new()), false);
            }
            let requests = pairs
                .iter()
                .map(|&(src, dst)| Request { src: NodeId(src), dst: NodeId(dst) })
                .collect();
            match serve_on_core(requests, tx) {
                Ok(trips) => (WireResponse::Batch(trips.iter().map(to_route).collect()), false),
                Err(message) => (internal(&message), false),
            }
        }
        WireRequest::Health => {
            let health = HealthInfo {
                nodes: shared.nodes,
                shards: shared.shards,
                in_flight: shared.in_flight.load(Ordering::Relaxed),
                served: shared.served.load(Ordering::Relaxed),
                rejected: shared.rejected.load(Ordering::Relaxed),
                degraded: shared.degraded.load(Ordering::Relaxed),
            };
            (WireResponse::Health(health), false)
        }
        WireRequest::Metrics => (WireResponse::Metrics(rtr_telemetry::registry().to_json()), false),
        WireRequest::Report => {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(Job::Report { reply: reply_tx }).is_err() {
                return (internal("serving core stopped"), false);
            }
            match reply_rx.recv() {
                Ok(report) => (WireResponse::Report(report), false),
                Err(_) => (internal("serving core stopped"), false),
            }
        }
        WireRequest::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            (WireResponse::Shutdown, true)
        }
    }
}

/// Round-trips one admitted request batch through the serving core.  The
/// error is the `INTERNAL` diagnostic message (callers wrap it with
/// [`internal`]), kept as a bare `String` so the `Err` variant stays small.
fn serve_on_core(
    requests: Vec<Request>,
    tx: &mpsc::Sender<Job>,
) -> Result<Vec<ServedTrip>, String> {
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(Job::Serve { requests, reply: reply_tx }).is_err() {
        return Err("serving core stopped".to_string());
    }
    match reply_rx.recv() {
        Ok(Ok(trips)) => Ok(trips),
        Ok(Err(message)) => Err(message),
        Err(_) => Err("serving core stopped".to_string()),
    }
}

fn to_route(trip: &ServedTrip) -> ServedRoute {
    ServedRoute { index: trip.index as u64, hops: trip.hops as u32, weight: trip.weight }
}

fn internal(message: &str) -> WireResponse {
    WireResponse::Error { opcode: 0, status: Status::Internal, message: message.to_string() }
}

fn error_response(opcode: u8, err: WireError) -> WireResponse {
    WireResponse::Error { opcode, status: err.status, message: err.message }
}

enum ReadOutcome {
    /// `buf` is full.
    Data,
    /// The peer closed cleanly before the first byte of `buf`.
    Closed,
    /// The shutdown flag flipped while waiting.
    Stop,
}

/// Fills `buf`, treating read timeouts as moments to re-check `shutdown`.
/// A clean close *between* frames is `Closed`; a close mid-buffer is also
/// treated as `Closed` (the peer is gone either way — there is nobody left
/// to answer).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> ReadOutcome {
    let mut at = 0;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(k) => at += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    return ReadOutcome::Stop;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Data
}
