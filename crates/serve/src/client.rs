//! A blocking client for the front door: one frame out, one frame back.
//!
//! [`Client`] is deliberately minimal — a `TcpStream`, the codec from
//! [`crate::protocol`], and one method per opcode.  It is what the loopback
//! bench (`serve_net_throughput`), the CI smoke and the integration tests
//! speak; anything else that can frame bytes per `docs/PROTOCOL.md`
//! interoperates identically.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, HealthInfo, ServedRoute, Status,
    WireError, WireRequest, WireResponse, MAX_FRAME_LEN,
};
use rtr_engine::VerifiedReport;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed mid-frame.
    Io(io::Error),
    /// The server's bytes did not decode as a valid response.
    Wire(WireError),
    /// The server answered with a non-`Ok` status.
    Rejected {
        /// The failure status the server sent.
        status: Status,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server closed cleanly where a response frame was expected.
    ConnectionClosed,
    /// The server answered `Ok` with a record the request did not ask for.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "bad response: {e}"),
            ClientError::Rejected { status, message } => {
                write!(f, "rejected ({}): {message}", status.name())
            }
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response record: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`serve`](crate::serve) front door.
///
/// The full loopback round trip — freeze a plane, serve it over TCP, query
/// it, shut it down, and get back a verified session:
///
/// ```
/// use rtr_core::naming::NamingAssignment;
/// use rtr_core::{Stretch6Params, StretchSix};
/// use rtr_engine::{Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, VerifyConfig};
/// use rtr_graph::generators::strongly_connected_gnp;
/// use rtr_metric::DistanceMatrix;
/// use rtr_namedep::ExactOracleScheme;
/// use rtr_serve::{Client, ServeConfig};
/// use std::net::TcpListener;
/// use std::sync::atomic::AtomicBool;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Arc::new(strongly_connected_gnp(24, 0.2, 3)?);
/// let m = DistanceMatrix::build(&g);
/// let names = NamingAssignment::random(g.node_count(), 7);
/// let scheme =
///     StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
/// let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
/// let sharded = ShardedPlane::new(plane, ShardMap::hashed(24, 2, 7));
/// let engine = Engine::new(EngineConfig::with_workers(2));
///
/// let listener = TcpListener::bind("127.0.0.1:0")?;
/// let addr = listener.local_addr()?;
/// let shutdown = AtomicBool::new(false);
/// let outcome = std::thread::scope(|scope| {
///     let server = scope.spawn(|| {
///         rtr_serve::serve(
///             listener,
///             &engine,
///             &sharded,
///             &m,
///             &VerifyConfig::full(),
///             &ServeConfig::default(),
///             &shutdown,
///         )
///     });
///     let mut client = Client::connect(addr).expect("connect");
///     let route = client.route(0, 5).expect("route");
///     assert_eq!(route.index, 0); // first query in the served stream
///     assert!(route.hops > 0);
///     client.shutdown().expect("clean shutdown");
///     server.join().expect("server thread panicked")
/// })?;
/// assert_eq!(outcome.verified.report.queries, 1);
/// assert_eq!(outcome.verified.report.checked, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_len: u32,
}

impl Client {
    /// Connects to a front door.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame_len: MAX_FRAME_LEN })
    }

    /// One framed request → one framed response.
    fn call(&mut self, request: &WireRequest) -> Result<WireResponse, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or(ClientError::ConnectionClosed)?;
        match decode_response(&payload)? {
            WireResponse::Error { status, message, .. } => {
                Err(ClientError::Rejected { status, message })
            }
            ok => Ok(ok),
        }
    }

    /// Serves one route query; the reply carries the session-global stream
    /// index plus the measured roundtrip.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with [`Status::BadNode`] for out-of-range
    /// or self-routing ids, [`Status::Overloaded`] when admission control
    /// rejects, plus the transport-level variants.
    pub fn route(&mut self, src: u32, dst: u32) -> Result<ServedRoute, ClientError> {
        match self.call(&WireRequest::Route { src, dst })? {
            WireResponse::Route(route) => Ok(route),
            _ => Err(ClientError::Unexpected("route")),
        }
    }

    /// Serves a batch of route queries in one frame; replies come back in
    /// request order.
    ///
    /// # Errors
    ///
    /// As [`route`](Self::route), plus [`Status::TooLarge`] when the batch
    /// exceeds the server's per-frame query limit.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<ServedRoute>, ClientError> {
        match self.call(&WireRequest::Batch(pairs.to_vec()))? {
            WireResponse::Batch(routes) => Ok(routes),
            _ => Err(ClientError::Unexpected("batch")),
        }
    }

    /// Fetches serving-plane vitals.
    ///
    /// # Errors
    ///
    /// Transport-level variants only.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.call(&WireRequest::Health)? {
            WireResponse::Health(h) => Ok(h),
            _ => Err(ClientError::Unexpected("health")),
        }
    }

    /// Fetches the telemetry registry as `Registry::to_json()`, verbatim —
    /// the same artifact `check_telemetry` cross-checks.
    ///
    /// # Errors
    ///
    /// Transport-level variants only.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&WireRequest::Metrics)? {
            WireResponse::Metrics(json) => Ok(json),
            _ => Err(ClientError::Unexpected("metrics")),
        }
    }

    /// Fetches the session's [`VerifiedReport`] so far (complete with
    /// respect to every already-served batch).
    ///
    /// # Errors
    ///
    /// Transport-level variants only.
    pub fn report(&mut self) -> Result<VerifiedReport, ClientError> {
        match self.call(&WireRequest::Report)? {
            WireResponse::Report(report) => Ok(report),
            _ => Err(ClientError::Unexpected("report")),
        }
    }

    /// Asks the server to stop accepting and finish its session.
    ///
    /// # Errors
    ///
    /// Transport-level variants only.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Shutdown)? {
            WireResponse::Shutdown => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown")),
        }
    }
}
