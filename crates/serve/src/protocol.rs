//! The wire codec: length-prefixed frames, request/response records, and the
//! binary [`VerifiedReport`] encoding.
//!
//! **`docs/PROTOCOL.md` is the normative reference** for every byte laid
//! down here — framing, the version byte, opcodes, status codes, record
//! layouts and worked examples.  This module is its executable mirror; when
//! the two disagree, the document wins and the code is wrong.
//!
//! Decoding is strict: unknown versions, unknown opcodes, truncated bodies
//! and trailing bytes are all rejected with a precise [`Status`], so every
//! valid payload has exactly one encoding (encode→decode is the identity,
//! and every strict prefix of a valid payload is rejected — both are
//! property-tested against the proptest shim).

use rtr_engine::{StretchHistogram, VerifiedReport, VerifiedTrip};
use rtr_graph::NodeId;
use std::fmt;
use std::io::{self, Read, Write};

/// The protocol version this build speaks, carried as the first payload
/// byte of every frame in both directions.
pub const VERSION: u8 = 1;

/// Default ceiling on a frame's payload length; longer frames are rejected
/// before allocation ([`Status::TooLarge`] server-side, an I/O error
/// client-side).  The `/metrics` JSON and verified reports fit comfortably.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Request opcodes (payload byte 1 of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Serve one route query (`src`, `dst`).
    Route = 0x01,
    /// Serve a batch of route queries in one frame.
    Batch = 0x02,
    /// Liveness probe with serving-plane vitals.
    Health = 0x03,
    /// The telemetry registry as `Registry::to_json()`, verbatim.
    Metrics = 0x04,
    /// The session's [`VerifiedReport`] so far.
    Report = 0x05,
    /// Ask the server to stop accepting and close the session.
    Shutdown = 0x06,
}

impl Opcode {
    /// The opcode's wire byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte (`None` for unassigned opcodes).
    pub fn from_code(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Route),
            0x02 => Some(Opcode::Batch),
            0x03 => Some(Opcode::Health),
            0x04 => Some(Opcode::Metrics),
            0x05 => Some(Opcode::Report),
            0x06 => Some(Opcode::Shutdown),
            _ => None,
        }
    }
}

/// Response status codes (payload byte 2 of a response frame).  Non-`Ok`
/// responses carry a UTF-8 diagnostic message as their body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was served; the body is the opcode's result record.
    Ok = 0x00,
    /// The payload could not be decoded (truncated, trailing bytes, bad
    /// counts, invalid UTF-8).
    Malformed = 0x01,
    /// The version byte is not [`VERSION`].
    UnsupportedVersion = 0x02,
    /// The opcode byte is unassigned.
    UnknownOpcode = 0x03,
    /// A node id is out of range, or a query routes a node to itself.
    BadNode = 0x04,
    /// Admission control: the in-flight budget is exhausted; retry later.
    Overloaded = 0x05,
    /// A frame or batch exceeds the configured size ceiling.
    TooLarge = 0x06,
    /// The serving core failed; the connection is still usable.
    Internal = 0x07,
}

impl Status {
    /// The status's wire byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte (`None` for unassigned codes).
    pub fn from_code(b: u8) -> Option<Status> {
        match b {
            0x00 => Some(Status::Ok),
            0x01 => Some(Status::Malformed),
            0x02 => Some(Status::UnsupportedVersion),
            0x03 => Some(Status::UnknownOpcode),
            0x04 => Some(Status::BadNode),
            0x05 => Some(Status::Overloaded),
            0x06 => Some(Status::TooLarge),
            0x07 => Some(Status::Internal),
            _ => None,
        }
    }

    /// Short stable name (`"ok"`, `"overloaded"`, …) for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Malformed => "malformed",
            Status::UnsupportedVersion => "unsupported_version",
            Status::UnknownOpcode => "unknown_opcode",
            Status::BadNode => "bad_node",
            Status::Overloaded => "overloaded",
            Status::TooLarge => "too_large",
            Status::Internal => "internal",
        }
    }
}

/// A decode failure: the [`Status`] the server answers with, plus a
/// diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The status code describing the failure class.
    pub status: Status,
    /// Human-readable diagnostic (becomes the error response body).
    pub message: String,
}

impl WireError {
    fn malformed(message: impl Into<String>) -> Self {
        WireError { status: Status::Malformed, message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.status.name(), self.message)
    }
}

impl std::error::Error for WireError {}

/// A decoded request payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// One route query from `src` to `dst` (raw node ids).
    Route {
        /// Source node id.
        src: u32,
        /// Destination node id.
        dst: u32,
    },
    /// A batch of `(src, dst)` route queries, admitted and served together.
    Batch(Vec<(u32, u32)>),
    /// Liveness probe.
    Health,
    /// Telemetry registry export.
    Metrics,
    /// The verified report so far.
    Report,
    /// Stop the server.
    Shutdown,
}

impl WireRequest {
    /// The request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            WireRequest::Route { .. } => Opcode::Route,
            WireRequest::Batch(_) => Opcode::Batch,
            WireRequest::Health => Opcode::Health,
            WireRequest::Metrics => Opcode::Metrics,
            WireRequest::Report => Opcode::Report,
            WireRequest::Shutdown => Opcode::Shutdown,
        }
    }
}

/// One served route in a response: the server-assigned global stream index
/// plus the measured roundtrip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRoute {
    /// Global index the session assigned this query in admission order —
    /// the key clients use to reconstruct the exact served stream.
    pub index: u64,
    /// Total hops of the served roundtrip.
    pub hops: u32,
    /// Measured roundtrip weight.
    pub weight: u64,
}

/// The `HEALTH` response body: serving-plane vitals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Nodes in the frozen plane.
    pub nodes: u32,
    /// Destination shards of the sharded plane.
    pub shards: u32,
    /// Route queries admitted but not yet answered.
    pub in_flight: u64,
    /// Route queries served since startup.
    pub served: u64,
    /// Route queries rejected by admission control since startup.
    pub rejected: u64,
    /// True while the operator has marked the substrate degraded (a fault
    /// window between injection and repair).  Served routes may exceed the
    /// proven stretch ceiling until this clears; clients that need the
    /// ceiling should treat a degraded server like an `OVERLOADED` response
    /// — back off and retry after repair (see `docs/PROTOCOL.md` §6).
    pub degraded: bool,
}

/// A decoded response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// `ROUTE` succeeded.
    Route(ServedRoute),
    /// `BATCH` succeeded; one record per query, in request order.
    Batch(Vec<ServedRoute>),
    /// `HEALTH` vitals.
    Health(HealthInfo),
    /// `METRICS`: the registry JSON, verbatim.
    Metrics(String),
    /// `REPORT`: the session's verified report so far.
    Report(VerifiedReport),
    /// `SHUTDOWN` acknowledged.
    Shutdown,
    /// Any request that failed: the echoed opcode byte (raw, since unknown
    /// opcodes echo too), the failure status, and a diagnostic message.
    Error {
        /// The request's opcode byte, echoed back (0 when the request was
        /// too short to carry one).
        opcode: u8,
        /// The failure class.
        status: Status,
        /// Human-readable diagnostic.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Primitive readers/writers.

/// A strict big-endian cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            WireError::malformed(format!("truncated payload: wanted {n} more bytes"))
        })?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().expect("16-byte slice")))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    /// Rejects trailing bytes — every record must consume its payload
    /// exactly, so encodings are canonical.
    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::malformed(format!("{} trailing bytes", self.buf.len() - self.at)))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_be_bytes());
}

// ---------------------------------------------------------------------------
// Requests.

/// Encodes a request into a frame payload (version byte, opcode, body).
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let mut out = vec![VERSION, req.opcode().code()];
    match req {
        WireRequest::Route { src, dst } => {
            put_u32(&mut out, *src);
            put_u32(&mut out, *dst);
        }
        WireRequest::Batch(pairs) => {
            put_u32(&mut out, pairs.len() as u32);
            for &(src, dst) in pairs {
                put_u32(&mut out, src);
                put_u32(&mut out, dst);
            }
        }
        WireRequest::Health
        | WireRequest::Metrics
        | WireRequest::Report
        | WireRequest::Shutdown => {}
    }
    out
}

/// Decodes a request frame payload, strictly (see the module docs).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8().map_err(|_| WireError::malformed("empty payload"))?;
    if version != VERSION {
        return Err(WireError {
            status: Status::UnsupportedVersion,
            message: format!("version {version}, this build speaks {VERSION}"),
        });
    }
    let op = r.u8().map_err(|_| WireError::malformed("payload has no opcode byte"))?;
    let opcode = Opcode::from_code(op).ok_or(WireError {
        status: Status::UnknownOpcode,
        message: format!("unassigned opcode 0x{op:02x}"),
    })?;
    let req = match opcode {
        Opcode::Route => {
            let src = r.u32()?;
            let dst = r.u32()?;
            WireRequest::Route { src, dst }
        }
        Opcode::Batch => {
            let count = r.u32()? as usize;
            let need = count
                .checked_mul(8)
                .ok_or_else(|| WireError::malformed("batch count overflows"))?;
            if r.buf.len() - r.at != need {
                return Err(WireError::malformed(format!(
                    "batch of {count} needs {need} body bytes, got {}",
                    r.buf.len() - r.at
                )));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                pairs.push((r.u32()?, r.u32()?));
            }
            WireRequest::Batch(pairs)
        }
        Opcode::Health => WireRequest::Health,
        Opcode::Metrics => WireRequest::Metrics,
        Opcode::Report => WireRequest::Report,
        Opcode::Shutdown => WireRequest::Shutdown,
    };
    r.done()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses.

fn put_route(out: &mut Vec<u8>, route: &ServedRoute) {
    put_u64(out, route.index);
    put_u32(out, route.hops);
    put_u64(out, route.weight);
}

fn read_route(r: &mut Reader<'_>) -> Result<ServedRoute, WireError> {
    Ok(ServedRoute { index: r.u64()?, hops: r.u32()?, weight: r.u64()? })
}

/// Encodes a response into a frame payload (version, echoed opcode, status,
/// body).
pub fn encode_response(resp: &WireResponse) -> Vec<u8> {
    let (opcode, status) = match resp {
        WireResponse::Route(_) => (Opcode::Route.code(), Status::Ok),
        WireResponse::Batch(_) => (Opcode::Batch.code(), Status::Ok),
        WireResponse::Health(_) => (Opcode::Health.code(), Status::Ok),
        WireResponse::Metrics(_) => (Opcode::Metrics.code(), Status::Ok),
        WireResponse::Report(_) => (Opcode::Report.code(), Status::Ok),
        WireResponse::Shutdown => (Opcode::Shutdown.code(), Status::Ok),
        WireResponse::Error { opcode, status, .. } => (*opcode, *status),
    };
    let mut out = vec![VERSION, opcode, status.code()];
    match resp {
        WireResponse::Route(route) => put_route(&mut out, route),
        WireResponse::Batch(routes) => {
            put_u32(&mut out, routes.len() as u32);
            for route in routes {
                put_route(&mut out, route);
            }
        }
        WireResponse::Health(h) => {
            put_u32(&mut out, h.nodes);
            put_u32(&mut out, h.shards);
            put_u64(&mut out, h.in_flight);
            put_u64(&mut out, h.served);
            put_u64(&mut out, h.rejected);
            out.push(h.degraded as u8);
        }
        WireResponse::Metrics(json) => out.extend_from_slice(json.as_bytes()),
        WireResponse::Report(report) => encode_report_body(&mut out, report),
        WireResponse::Shutdown => {}
        WireResponse::Error { message, .. } => out.extend_from_slice(message.as_bytes()),
    }
    out
}

/// Decodes a response frame payload, strictly.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = Reader::new(payload);
    let header = r.take(3).map_err(|_| WireError::malformed("response header is 3 bytes"))?;
    let (version, opcode, status_byte) = (header[0], header[1], header[2]);
    if version != VERSION {
        return Err(WireError {
            status: Status::UnsupportedVersion,
            message: format!("version {version}, this build speaks {VERSION}"),
        });
    }
    let status = Status::from_code(status_byte)
        .ok_or_else(|| WireError::malformed(format!("unassigned status 0x{status_byte:02x}")))?;
    if status != Status::Ok {
        let message = String::from_utf8(r.rest().to_vec())
            .map_err(|_| WireError::malformed("error message is not UTF-8"))?;
        return Ok(WireResponse::Error { opcode, status, message });
    }
    let opcode = Opcode::from_code(opcode).ok_or(WireError {
        status: Status::UnknownOpcode,
        message: format!("ok response with unassigned opcode 0x{opcode:02x}"),
    })?;
    let resp = match opcode {
        Opcode::Route => WireResponse::Route(read_route(&mut r)?),
        Opcode::Batch => {
            let count = r.u32()? as usize;
            let need = count
                .checked_mul(20)
                .ok_or_else(|| WireError::malformed("batch count overflows"))?;
            if r.buf.len() - r.at != need {
                return Err(WireError::malformed(format!(
                    "batch of {count} needs {need} body bytes, got {}",
                    r.buf.len() - r.at
                )));
            }
            let mut routes = Vec::with_capacity(count);
            for _ in 0..count {
                routes.push(read_route(&mut r)?);
            }
            WireResponse::Batch(routes)
        }
        Opcode::Health => WireResponse::Health(HealthInfo {
            nodes: r.u32()?,
            shards: r.u32()?,
            in_flight: r.u64()?,
            served: r.u64()?,
            rejected: r.u64()?,
            degraded: match r.u8()? {
                0 => false,
                1 => true,
                b => {
                    return Err(WireError::malformed(format!("degraded flag must be 0|1, got {b}")))
                }
            },
        }),
        Opcode::Metrics => {
            let json = String::from_utf8(r.rest().to_vec())
                .map_err(|_| WireError::malformed("metrics body is not UTF-8"))?;
            WireResponse::Metrics(json)
        }
        Opcode::Report => WireResponse::Report(decode_report_body(&mut r)?),
        Opcode::Shutdown => WireResponse::Shutdown,
    };
    r.done()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// The VerifiedReport record.

fn put_trip(out: &mut Vec<u8>, trip: &VerifiedTrip) {
    put_u64(out, trip.index as u64);
    put_u32(out, trip.source.0);
    put_u32(out, trip.destination.0);
    put_u64(out, trip.measured);
    put_u64(out, trip.exact);
}

fn read_trip(r: &mut Reader<'_>) -> Result<VerifiedTrip, WireError> {
    Ok(VerifiedTrip {
        index: r.u64()? as usize,
        source: NodeId(r.u32()?),
        destination: NodeId(r.u32()?),
        measured: r.u64()?,
        exact: r.u64()?,
    })
}

/// Appends the binary [`VerifiedReport`] record (see `docs/PROTOCOL.md`,
/// "REPORT result record").
fn encode_report_body(out: &mut Vec<u8>, report: &VerifiedReport) {
    put_u64(out, report.queries as u64);
    put_u64(out, report.checked as u64);
    put_u128(out, report.total_measured);
    put_u128(out, report.total_exact);
    let pairs = report.histogram.nonzero_buckets();
    put_u32(out, pairs.len() as u32);
    for (bucket, count) in pairs {
        put_u32(out, bucket as u32);
        put_u64(out, count);
    }
    match &report.worst {
        None => out.push(0),
        Some(trip) => {
            out.push(1);
            put_trip(out, trip);
        }
    }
    put_u32(out, report.violations.len() as u32);
    for trip in &report.violations {
        put_trip(out, trip);
    }
}

/// Reads the binary [`VerifiedReport`] record.  Strict: histogram buckets
/// must ascend and stay in range, the histogram total must equal `checked`,
/// and the worst-trip flag must be 0 or 1 — so decode(encode(r)) ≡ r and
/// corrupted records are rejected rather than misread.
fn decode_report_body(r: &mut Reader<'_>) -> Result<VerifiedReport, WireError> {
    let queries = r.u64()? as usize;
    let checked = r.u64()? as usize;
    let total_measured = r.u128()?;
    let total_exact = r.u128()?;
    let entries = r.u32()? as usize;
    let mut pairs = Vec::with_capacity(entries.min(1024));
    let mut last: Option<usize> = None;
    for _ in 0..entries {
        let bucket = r.u32()? as usize;
        let count = r.u64()?;
        if count == 0 {
            return Err(WireError::malformed("histogram entry with zero count"));
        }
        if last.is_some_and(|l| bucket <= l) {
            return Err(WireError::malformed("histogram buckets must strictly ascend"));
        }
        last = Some(bucket);
        pairs.push((bucket, count));
    }
    let histogram = StretchHistogram::from_nonzero_buckets(&pairs)
        .ok_or_else(|| WireError::malformed("histogram bucket out of range"))?;
    if histogram.count() != checked as u64 {
        return Err(WireError::malformed(format!(
            "histogram counts {} trips, report checked {checked}",
            histogram.count()
        )));
    }
    let worst = match r.u8()? {
        0 => None,
        1 => Some(read_trip(r)?),
        b => return Err(WireError::malformed(format!("worst-trip flag must be 0|1, got {b}"))),
    };
    let violations_len = r.u32()? as usize;
    let remaining = r.buf.len() - r.at;
    let need = violations_len
        .checked_mul(32)
        .ok_or_else(|| WireError::malformed("violation count overflows"))?;
    if remaining != need {
        return Err(WireError::malformed(format!(
            "{violations_len} violations need {need} body bytes, got {remaining}"
        )));
    }
    let mut violations = Vec::with_capacity(violations_len);
    for _ in 0..violations_len {
        violations.push(read_trip(r)?);
    }
    // The wire record carries the flat report only; chaos epoch breakdowns
    // never cross the protocol (`VerifiedReport::epochs` stays empty).
    Ok(VerifiedReport {
        queries,
        checked,
        total_measured,
        total_exact,
        histogram,
        worst,
        violations,
        epochs: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Framing.

/// Writes one frame: a 4-byte big-endian payload length, then the payload,
/// then a flush.
///
/// # Panics
///
/// If the payload exceeds `u32::MAX` bytes (callers bound payloads far
/// below [`MAX_FRAME_LEN`]).
///
/// # Errors
///
/// Any I/O error from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, blocking.  Returns `Ok(None)` on a clean EOF *before*
/// the length prefix (the peer closed between frames); EOF mid-frame is an
/// [`io::ErrorKind::UnexpectedEof`] error, and a length above `max_len` is
/// an [`io::ErrorKind::InvalidData`] error (the frame is not consumed).
///
/// # Errors
///
/// Any I/O error from the underlying reader, plus the two cases above.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut at = 0;
    while at < prefix.len() {
        match r.read(&mut prefix[at..]) {
            Ok(0) if at == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame prefix"))
            }
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_len}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            WireRequest::Route { src: 3, dst: 999_999 },
            WireRequest::Batch(vec![(0, 1), (7, 2), (u32::MAX, 0)]),
            WireRequest::Batch(Vec::new()),
            WireRequest::Health,
            WireRequest::Metrics,
            WireRequest::Report,
            WireRequest::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            WireResponse::Route(ServedRoute { index: 17, hops: 4, weight: 230 }),
            WireResponse::Batch(vec![
                ServedRoute { index: 0, hops: 1, weight: 9 },
                ServedRoute { index: 1, hops: 2, weight: 11 },
            ]),
            WireResponse::Batch(Vec::new()),
            WireResponse::Health(HealthInfo {
                nodes: 600,
                shards: 4,
                in_flight: 12,
                served: 30_000,
                rejected: 2,
                degraded: true,
            }),
            WireResponse::Metrics("{\n  \"counters\": {}\n}\n".to_string()),
            WireResponse::Shutdown,
            WireResponse::Error {
                opcode: 0x42,
                status: Status::Overloaded,
                message: "in-flight budget 8 exceeded".to_string(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn report_roundtrips() {
        let trip = VerifiedTrip {
            index: 41,
            source: NodeId(3),
            destination: NodeId(9),
            measured: 60,
            exact: 20,
        };
        let report = VerifiedReport {
            queries: 100,
            checked: 7,
            total_measured: 1 << 70,
            total_exact: 900,
            histogram: StretchHistogram::from_nonzero_buckets(&[(32, 4), (96, 3)]).unwrap(),
            worst: Some(trip),
            violations: vec![trip],
            epochs: Vec::new(),
        };
        let bytes = encode_response(&WireResponse::Report(report.clone()));
        assert_eq!(decode_response(&bytes).unwrap(), WireResponse::Report(report));
    }

    #[test]
    fn header_errors_are_precise() {
        assert_eq!(decode_request(&[]).unwrap_err().status, Status::Malformed);
        assert_eq!(decode_request(&[9, 1]).unwrap_err().status, Status::UnsupportedVersion);
        assert_eq!(decode_request(&[VERSION, 0x7f]).unwrap_err().status, Status::UnknownOpcode);
        // Trailing garbage after a complete record.
        let mut bytes = encode_request(&WireRequest::Health);
        bytes.push(0);
        assert_eq!(decode_request(&bytes).unwrap_err().status, Status::Malformed);
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 16).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 16).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor, 16).unwrap().is_none());

        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 16).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 16).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }
}
