//! Fundamental newtypes: node identifiers, ports, weights and distances.

use std::fmt;

/// Identifier of a node inside a [`crate::DiGraph`].
///
/// Internally nodes are always indexed `0..n`. In the topology-independent
/// node-name (TINN) model the *names* seen by the routing layer are an
/// adversarial permutation of these indices; that permutation lives in
/// `rtr-core` / `rtr-dictionary`, not here. A `NodeId` is the *topological*
/// index used by graph algorithms.
///
/// ```
/// use rtr_graph::NodeId;
/// let v = NodeId(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit into a `u32` (graphs are limited to
    /// `u32::MAX` nodes, far beyond anything exercised here).
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        NodeId(u32::try_from(idx).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// An outgoing-edge port number in the fixed-port model (paper §1.1.3).
///
/// Port numbers are local to a node, unique among that node's out-edges, and
/// chosen adversarially from a set of size `O(n)`; the same port number at two
/// different nodes may lead to completely unrelated neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u32);

impl Port {
    /// The raw port number.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Edge weight. Always strictly positive (validated by [`crate::DiGraphBuilder`]).
pub type Weight = u64;

/// A (possibly infinite) path length / distance value.
pub type Distance = u64;

/// Marker for "no path" distances.
///
/// Using `u64::MAX` keeps distance arithmetic branch-light; all code that adds
/// to a distance first checks for `INFINITY` (see [`saturating_dist_add`]).
pub const INFINITY: Distance = u64::MAX;

/// Adds two distances treating [`INFINITY`] as absorbing.
///
/// ```
/// use rtr_graph::{Distance, INFINITY};
/// assert_eq!(rtr_graph::types::saturating_dist_add(2, 3), 5);
/// assert_eq!(rtr_graph::types::saturating_dist_add(INFINITY, 3), INFINITY);
/// ```
#[inline]
pub fn saturating_dist_add(a: Distance, b: Distance) -> Distance {
    if a == INFINITY || b == INFINITY {
        INFINITY
    } else {
        a.saturating_add(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_display_is_prefixed() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(Port(9).to_string(), "p9");
    }

    #[test]
    fn node_id_conversions() {
        let v: NodeId = 5u32.into();
        assert_eq!(v, NodeId(5));
        let raw: u32 = v.into();
        assert_eq!(raw, 5);
    }

    #[test]
    fn saturating_add_handles_infinity() {
        assert_eq!(saturating_dist_add(1, 2), 3);
        assert_eq!(saturating_dist_add(INFINITY, 2), INFINITY);
        assert_eq!(saturating_dist_add(2, INFINITY), INFINITY);
        assert_eq!(saturating_dist_add(INFINITY, INFINITY), INFINITY);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        assert_eq!(saturating_dist_add(INFINITY - 1, 10), INFINITY);
    }

    #[test]
    fn node_id_ordering_matches_raw() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Port(1) < Port(10));
    }
}
