//! Error type for graph construction and queries.

use crate::types::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`crate::DiGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge was added with weight zero (weights must be strictly positive).
    ZeroWeight {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// A duplicate directed edge `(from, to)` was added.
    DuplicateEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// A self-loop was added; the routing model has no use for them.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
    /// The graph is not strongly connected but the operation requires it.
    NotStronglyConnected {
        /// Number of strongly connected components found.
        components: usize,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// Port numbers assigned to a node's out-edges collide.
    DuplicatePort {
        /// The node whose ports collide.
        node: NodeId,
        /// The colliding port number.
        port: u32,
    },
    /// A (de)serialization problem.
    Serde(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::ZeroWeight { from, to } => {
                write!(f, "edge ({from}, {to}) has zero weight; weights must be positive")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate directed edge ({from}, {to})")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at {node} is not allowed"),
            GraphError::NotStronglyConnected { components } => write!(
                f,
                "graph is not strongly connected ({components} strongly connected components)"
            ),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::DuplicatePort { node, port } => {
                write!(f, "duplicate out-port {port} at node {node}")
            }
            GraphError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::ZeroWeight { from: NodeId(0), to: NodeId(1) };
        let msg = e.to_string();
        assert!(msg.contains("zero weight"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = GraphError::NotStronglyConnected { components: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
