//! Graph import/export: Graphviz DOT, JSON, and a simple edge-list format.

use crate::graph::{DiGraph, DiGraphBuilder, PortAssignment};
use crate::types::NodeId;
use crate::{GraphError, Result};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax (directed, weights as labels).
pub fn to_dot(g: &DiGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph G {\n");
    for u in g.nodes() {
        let _ = writeln!(out, "  {};", u.0);
    }
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let _ = writeln!(out, "  {} -> {} [label=\"{}\", port=\"{}\"];", u.0, e.to.0, e.weight, e.port.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Serializes the graph to JSON.
///
/// # Errors
///
/// Returns [`GraphError::Serde`] if serialization fails (it does not for valid graphs).
pub fn to_json(g: &DiGraph) -> Result<String> {
    serde_json::to_string(g).map_err(|e| GraphError::Serde(e.to_string()))
}

/// Deserializes a graph from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns [`GraphError::Serde`] if the JSON is malformed.
pub fn from_json(json: &str) -> Result<DiGraph> {
    serde_json::from_str(json).map_err(|e| GraphError::Serde(e.to_string()))
}

/// Renders the graph as a plain edge list: one `from to weight` triple per
/// line, preceded by a header line `n m`.
pub fn to_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.node_count(), g.edge_count());
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let _ = writeln!(out, "{} {} {}", u.0, e.to.0, e.weight);
        }
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`]. Ports are
/// assigned with [`PortAssignment::Consecutive`].
///
/// # Errors
///
/// Returns [`GraphError::Serde`] on malformed input, or the corresponding
/// builder error on invalid edges.
pub fn from_edge_list(text: &str) -> Result<DiGraph> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| GraphError::Serde("missing header".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Serde("bad node count".into()))?;
    let m: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Serde("bad edge count".into()))?;
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(PortAssignment::Consecutive);
    let mut count = 0;
    for line in lines {
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        let v: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        let w: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        b.add_edge(NodeId(u), NodeId(v), w)?;
        count += 1;
    }
    if count != m {
        return Err(GraphError::Serde(format!("expected {m} edges, found {count}")));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::strongly_connected_gnp;

    #[test]
    fn dot_contains_all_edges() {
        let g = strongly_connected_gnp(10, 0.2, 1).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph G {"));
        assert_eq!(dot.matches("->").count(), g.edge_count());
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = strongly_connected_gnp(20, 0.1, 2).unwrap();
        let json = to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            assert_eq!(g.out_edges(u), g2.out_edges(u));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(from_json("not json"), Err(GraphError::Serde(_))));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = strongly_connected_gnp(15, 0.15, 3).unwrap();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert_eq!(g2.edge_weight(u, e.to), Some(e.weight));
            }
        }
    }

    #[test]
    fn edge_list_rejects_bad_counts() {
        let text = "2 5\n0 1 1\n";
        assert!(matches!(from_edge_list(text), Err(GraphError::Serde(_))));
    }

    #[test]
    fn edge_list_rejects_missing_header() {
        assert!(matches!(from_edge_list("   \n"), Err(GraphError::Serde(_))));
    }
}
