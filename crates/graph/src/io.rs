//! Graph import/export: Graphviz DOT, JSON, and a simple edge-list format.

use crate::graph::{DiGraph, DiGraphBuilder, PortAssignment};
use crate::types::NodeId;
use crate::{GraphError, Result};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax (directed, weights as labels).
pub fn to_dot(g: &DiGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph G {\n");
    for u in g.nodes() {
        let _ = writeln!(out, "  {};", u.0);
    }
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\", port=\"{}\"];",
                u.0, e.to.0, e.weight, e.port.0
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Serializes the graph to JSON.
///
/// The format is a flat object `{"n": <nodes>, "edges": [[from, to, weight,
/// port], …]}` written without any external serialization crate (the build
/// environment vendors no serde). Ports are carried explicitly so that a
/// roundtrip through [`from_json`] reproduces the adversarial port assignment
/// bit for bit.
///
/// # Errors
///
/// Returns [`GraphError::Serde`] if serialization fails (it does not for valid graphs).
pub fn to_json(g: &DiGraph) -> Result<String> {
    let mut out = String::new();
    let _ = write!(out, "{{\"n\":{},\"edges\":[", g.node_count());
    let mut first = true;
    for u in g.nodes() {
        for e in g.out_edges(u) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{},{},{},{}]", u.0, e.to.0, e.weight, e.port.0);
        }
    }
    out.push_str("]}");
    Ok(out)
}

/// Deserializes a graph from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns [`GraphError::Serde`] if the JSON is malformed.
pub fn from_json(json: &str) -> Result<DiGraph> {
    let mut p = JsonParser::new(json);
    p.expect('{')?;
    p.expect_string("n")?;
    p.expect(':')?;
    let n = usize::try_from(p.number()?)
        .map_err(|_| GraphError::Serde("node count out of range".into()))?;
    p.expect(',')?;
    p.expect_string("edges")?;
    p.expect(':')?;
    p.expect('[')?;
    let narrow = |value: u64, what: &str| {
        u32::try_from(value).map_err(|_| GraphError::Serde(format!("{what} {value} out of range")))
    };
    let mut edges: Vec<(u32, u32, u64, u32)> = Vec::new();
    if !p.try_consume(']') {
        loop {
            p.expect('[')?;
            let from = narrow(p.number()?, "node id")?;
            p.expect(',')?;
            let to = narrow(p.number()?, "node id")?;
            p.expect(',')?;
            let weight = p.number()?;
            p.expect(',')?;
            let port = narrow(p.number()?, "port")?;
            p.expect(']')?;
            edges.push((from, to, weight, port));
            if !p.try_consume(',') {
                p.expect(']')?;
                break;
            }
        }
    }
    p.expect('}')?;
    p.expect_end()?;

    let mut b = DiGraphBuilder::new(n);
    // Build with consecutive ports first, then overwrite with the explicit
    // ports carried in the file via the builder's explicit-port hook.
    b.port_assignment(PortAssignment::Consecutive);
    for &(from, to, weight, _) in &edges {
        b.add_edge(NodeId(from), NodeId(to), weight)?;
    }
    let mut g = b.build()?;
    g.reassign_ports(edges.iter().map(|&(from, to, _, port)| (NodeId(from), NodeId(to), port)))?;
    Ok(g)
}

/// A minimal recursive-descent JSON reader for the graph format above.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(GraphError::Serde(format!("expected '{c}' at byte {}", self.pos)))
        }
    }

    fn try_consume(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_string(&mut self, s: &str) -> Result<()> {
        self.expect('"')?;
        let lit = s.as_bytes();
        if self.bytes.len() >= self.pos + lit.len()
            && &self.bytes[self.pos..self.pos + lit.len()] == lit
        {
            self.pos += lit.len();
            self.expect('"')
        } else {
            Err(GraphError::Serde(format!("expected key \"{s}\" at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(GraphError::Serde(format!("expected a number at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("malformed number at byte {start}")))
    }

    fn expect_end(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(GraphError::Serde(format!("trailing data at byte {}", self.pos)))
        }
    }
}

/// Renders the graph as a plain edge list: one `from to weight` triple per
/// line, preceded by a header line `n m`.
pub fn to_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.node_count(), g.edge_count());
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let _ = writeln!(out, "{} {} {}", u.0, e.to.0, e.weight);
        }
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`]. Ports are
/// assigned with [`PortAssignment::Consecutive`].
///
/// # Errors
///
/// Returns [`GraphError::Serde`] on malformed input, or the corresponding
/// builder error on invalid edges.
pub fn from_edge_list(text: &str) -> Result<DiGraph> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| GraphError::Serde("missing header".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Serde("bad node count".into()))?;
    let m: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Serde("bad edge count".into()))?;
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(PortAssignment::Consecutive);
    let mut count = 0;
    for line in lines {
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        let v: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        let w: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GraphError::Serde(format!("bad edge line: {line}")))?;
        b.add_edge(NodeId(u), NodeId(v), w)?;
        count += 1;
    }
    if count != m {
        return Err(GraphError::Serde(format!("expected {m} edges, found {count}")));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::strongly_connected_gnp;

    #[test]
    fn dot_contains_all_edges() {
        let g = strongly_connected_gnp(10, 0.2, 1).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph G {"));
        assert_eq!(dot.matches("->").count(), g.edge_count());
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = strongly_connected_gnp(20, 0.1, 2).unwrap();
        let json = to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            assert_eq!(g.out_edges(u), g2.out_edges(u));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(from_json("not json"), Err(GraphError::Serde(_))));
    }

    #[test]
    fn from_json_rejects_out_of_range_ids() {
        // 2^32 + 1 must not silently wrap to node 1.
        let bad = "{\"n\":3,\"edges\":[[4294967297,1,5,0]]}";
        assert!(matches!(from_json(bad), Err(GraphError::Serde(_))));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = strongly_connected_gnp(15, 0.15, 3).unwrap();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert_eq!(g2.edge_weight(u, e.to), Some(e.weight));
            }
        }
    }

    #[test]
    fn edge_list_rejects_bad_counts() {
        let text = "2 5\n0 1 1\n";
        assert!(matches!(from_edge_list(text), Err(GraphError::Serde(_))));
    }

    #[test]
    fn edge_list_rejects_missing_header() {
        assert!(matches!(from_edge_list("   \n"), Err(GraphError::Serde(_))));
    }
}
