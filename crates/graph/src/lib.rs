//! # rtr-graph — weighted directed graph substrate
//!
//! This crate provides the graph model used throughout the
//! *compact roundtrip routing* reproduction (Arias, Cowen, Laing, PODC 2003):
//! strongly connected, positively weighted directed graphs in the **fixed-port
//! model** — every node names its outgoing edges with arbitrary, adversarially
//! chosen port numbers that carry no global meaning (paper §1.1.3).
//!
//! The crate contains:
//!
//! * [`DiGraph`] — a compact adjacency representation with per-edge ports and
//!   integer weights, plus [`DiGraphBuilder`] for incremental construction.
//! * [`algo`] — Dijkstra (forward and reverse), Tarjan strongly connected
//!   components, BFS/DFS reachability, and a Floyd–Warshall oracle used by
//!   tests.
//! * [`generators`] — seeded generators for the graph families used in the
//!   experiments (strongly connected *G(n,p)*, bidirected grids and tori,
//!   rings, complete graphs, layered digraphs with back edges, preferential
//!   attachment, random geometric digraphs, and the bidirected graphs used by
//!   the §5 lower bound).
//! * [`io`] — DOT export and JSON (de)serialization.
//!
//! Weights are unsigned integers (`u64`). The paper assumes positive real
//! weights; integer weights keep every distance computation exact, which lets
//! the test-suite assert the paper's stretch bounds as *hard* inequalities
//! instead of floating-point approximations. Arbitrary precision is recovered
//! by scaling.
//!
//! ```
//! use rtr_graph::{DiGraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), rtr_graph::GraphError> {
//! let mut b = DiGraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 2)?;
//! b.add_edge(NodeId(1), NodeId(2), 3)?;
//! b.add_edge(NodeId(2), NodeId(0), 4)?;
//! let g = b.build()?;
//! assert!(g.is_strongly_connected());
//! assert_eq!(g.edge_count(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is the first stage: it feeds the roundtrip metric
//! in `rtr-metric`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
pub mod chaos;
mod error;
pub mod generators;
mod graph;
pub mod io;
pub mod par;
pub mod types;

pub use chaos::{EdgeFault, FaultApplication, FaultPlan, GraphDelta};
pub use error::GraphError;
pub use graph::{DiGraph, DiGraphBuilder, Edge, PortAssignment};
pub use types::{Distance, NodeId, Port, Weight, INFINITY};

/// Crate-wide result alias.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
