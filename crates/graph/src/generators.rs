//! Seeded generators for the graph families used in the experiments.
//!
//! Every generator returns a *strongly connected*, positively weighted
//! directed graph and is fully deterministic given its seed, so that every
//! experiment in EXPERIMENTS.md can be reproduced bit-for-bit.
//!
//! The families:
//!
//! * [`strongly_connected_gnp`] — directed Erdős–Rényi `G(n, p)` patched to be
//!   strongly connected via a random Hamiltonian cycle; the workhorse family.
//! * [`bidirected_grid`] / [`bidirected_torus`] — each undirected grid edge
//!   replaced by two opposite directed edges (the construction of the §5 lower
//!   bound applied to grids); models mesh-like networks.
//! * [`directed_ring`] and [`ring_with_chords`] — minimal strong connectivity
//!   and small-world-ish variants with asymmetric shortcut edges.
//! * [`complete_digraph`] — dense reference family.
//! * [`layered_cycle`] — long directed cycles with forward "express" edges,
//!   producing strongly asymmetric `d(u,v)` vs `d(v,u)` (the regime where
//!   roundtrip routing differs most from one-way routing).
//! * [`preferential_attachment`] — scale-free-ish digraph, modelling AS-level
//!   topologies, patched to strong connectivity.
//! * [`random_geometric`] — nodes in the unit square connected when close,
//!   with weights proportional to distance; directed by random edge deletion.
//! * [`bidirected_from_undirected`] — the §5 reduction: replace every edge of
//!   an arbitrary undirected graph by two opposite directed edges, which makes
//!   `d(u,v) = d(v,u)` for all pairs.

use crate::graph::{DiGraph, DiGraphBuilder, PortAssignment};
use crate::types::{NodeId, Weight};
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters shared by the random generators.
#[derive(Debug, Clone, Copy)]
pub struct WeightRange {
    /// Smallest generated weight (≥ 1).
    pub min: Weight,
    /// Largest generated weight.
    pub max: Weight,
}

impl Default for WeightRange {
    fn default() -> Self {
        WeightRange { min: 1, max: 16 }
    }
}

impl WeightRange {
    /// Uniform weights in `[min, max]`.
    pub fn new(min: Weight, max: Weight) -> Self {
        assert!(min >= 1 && max >= min, "invalid weight range");
        WeightRange { min, max }
    }

    /// Unit weights.
    pub fn unit() -> Self {
        WeightRange { min: 1, max: 1 }
    }

    fn sample(&self, rng: &mut StdRng) -> Weight {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

fn scrambled(seed: u64) -> PortAssignment {
    PortAssignment::Scrambled { seed: seed ^ 0xa5a5_5a5a_dead_beef }
}

/// Directed `G(n, p)` patched to strong connectivity with a random Hamiltonian
/// cycle of fresh edges.
///
/// # Errors
///
/// Propagates builder errors (none are expected for valid `n ≥ 2`).
///
/// # Panics
///
/// Panics if `n < 2` or `p` is not a probability.
pub fn strongly_connected_gnp(n: usize, p: f64, seed: u64) -> Result<DiGraph> {
    strongly_connected_gnp_weighted(n, p, seed, WeightRange::default())
}

/// [`strongly_connected_gnp`] with an explicit weight range.
pub fn strongly_connected_gnp_weighted(
    n: usize,
    p: f64,
    seed: u64,
    weights: WeightRange,
) -> Result<DiGraph> {
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));

    // Random Hamiltonian cycle guarantees strong connectivity.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    for i in 0..n {
        let u = NodeId(perm[i]);
        let v = NodeId(perm[(i + 1) % n]);
        b.add_edge(u, v, weights.sample(&mut rng))?;
    }

    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u == v {
                continue;
            }
            if b.has_edge(NodeId(u), NodeId(v)) {
                continue;
            }
            if rng.gen_bool(p) {
                b.add_edge(NodeId(u), NodeId(v), weights.sample(&mut rng))?;
            }
        }
    }
    b.build()
}

/// `rows × cols` grid where every undirected grid edge becomes two opposite
/// directed edges with equal weight (so `d(u,v) = d(v,u)`).
pub fn bidirected_grid(rows: usize, cols: usize, seed: u64) -> Result<DiGraph> {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let n = rows * cols;
    let id = |r: usize, c: usize| NodeId::from_index(r * cols + c);
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_bidirected(id(r, c), id(r, c + 1), weights.sample(&mut rng))?;
            }
            if r + 1 < rows {
                b.add_bidirected(id(r, c), id(r + 1, c), weights.sample(&mut rng))?;
            }
        }
    }
    b.build()
}

/// Like [`bidirected_grid`] but with wrap-around edges (torus).
pub fn bidirected_torus(rows: usize, cols: usize, seed: u64) -> Result<DiGraph> {
    assert!(rows >= 3 && cols >= 3, "torus needs at least 3x3");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let n = rows * cols;
    let id = |r: usize, c: usize| NodeId::from_index((r % rows) * cols + (c % cols));
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for r in 0..rows {
        for c in 0..cols {
            b.add_bidirected(id(r, c), id(r, c + 1), weights.sample(&mut rng))?;
            b.add_bidirected(id(r, c), id(r + 1, c), weights.sample(&mut rng))?;
        }
    }
    b.build()
}

/// A single directed cycle `0 → 1 → … → n−1 → 0` with the given weights.
///
/// This is the extreme asymmetric family: `d(u,v)` can be 1 while `d(v,u)` is
/// `n − 1`.
pub fn directed_ring(n: usize, seed: u64) -> Result<DiGraph> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for i in 0..n {
        b.add_edge(
            NodeId::from_index(i),
            NodeId::from_index((i + 1) % n),
            weights.sample(&mut rng),
        )?;
    }
    b.build()
}

/// A directed ring plus `chords` random one-way chord edges.
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> Result<DiGraph> {
    ring_with_chords_weighted(n, chords, seed, WeightRange::default(), WeightRange::default())
}

/// [`ring_with_chords`] with explicit ring and chord weight ranges.
///
/// Widening the chord range past the typical graph distance makes a
/// controllable share of the chords *metrically redundant* (never on any
/// shortest path), which is the regime for fault-injection studies: redundant
/// edges can fail without perturbing the distance metric, as in real networks
/// that survive losing spare capacity.
pub fn ring_with_chords_weighted(
    n: usize,
    chords: usize,
    seed: u64,
    ring_weights: WeightRange,
    chord_weights: WeightRange,
) -> Result<DiGraph> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for i in 0..n {
        b.add_edge(
            NodeId::from_index(i),
            NodeId::from_index((i + 1) % n),
            ring_weights.sample(&mut rng),
        )?;
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < 50 * chords.max(1) {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
            b.add_edge(NodeId(u), NodeId(v), chord_weights.sample(&mut rng))?;
            added += 1;
        }
    }
    b.build()
}

/// Complete digraph on `n` nodes with random weights.
pub fn complete_digraph(n: usize, seed: u64) -> Result<DiGraph> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), weights.sample(&mut rng))?;
            }
        }
    }
    b.build()
}

/// `layers` concentric directed cycles of `layer_size` nodes each, with
/// one-way "express" edges from each layer to the next and a single long way
/// back, producing strongly asymmetric distances.
pub fn layered_cycle(layers: usize, layer_size: usize, seed: u64) -> Result<DiGraph> {
    assert!(layers >= 1 && layer_size >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let n = layers * layer_size;
    let id = |l: usize, i: usize| NodeId::from_index(l * layer_size + (i % layer_size));
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for l in 0..layers {
        for i in 0..layer_size {
            b.add_edge(id(l, i), id(l, i + 1), weights.sample(&mut rng))?;
        }
    }
    for l in 0..layers.saturating_sub(1) {
        // Express edges forward; only one return edge per layer pair.
        for i in (0..layer_size).step_by(2) {
            b.add_edge(id(l, i), id(l + 1, i), weights.sample(&mut rng))?;
        }
        b.add_edge(id(l + 1, 1), id(l, 1), weights.sample(&mut rng))?;
    }
    b.build()
}

/// Preferential-attachment digraph: each new node attaches `out_deg` out-edges
/// to earlier nodes chosen proportionally to their current in-degree (plus 1),
/// and one in-edge from a random earlier node; finally a Hamiltonian cycle on
/// a random permutation guarantees strong connectivity.
pub fn preferential_attachment(n: usize, out_deg: usize, seed: u64) -> Result<DiGraph> {
    assert!(n >= 2 && out_deg >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightRange::default();
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));

    // in_degree + 1 "attractiveness" per existing node.
    let mut attract: Vec<u64> = vec![1; n];
    for v in 1..n {
        let mut targets_added = 0;
        let mut guard = 0;
        while targets_added < out_deg.min(v) && guard < 20 * out_deg {
            guard += 1;
            let total: u64 = attract[..v].iter().sum();
            let mut pick = rng.gen_range(0..total);
            let mut t = 0usize;
            for (i, &a) in attract[..v].iter().enumerate() {
                if pick < a {
                    t = i;
                    break;
                }
                pick -= a;
            }
            let (u, w) = (NodeId::from_index(v), NodeId::from_index(t));
            if !b.has_edge(u, w) {
                b.add_edge(u, w, weights.sample(&mut rng))?;
                attract[t] += 1;
                targets_added += 1;
            }
        }
        // One returning edge so older nodes can reach newer ones.
        let t = rng.gen_range(0..v);
        let (u, w) = (NodeId::from_index(t), NodeId::from_index(v));
        if !b.has_edge(u, w) {
            b.add_edge(u, w, weights.sample(&mut rng))?;
        }
    }
    // Strong-connectivity patch.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    for i in 0..n {
        let u = NodeId(perm[i]);
        let v = NodeId(perm[(i + 1) % n]);
        if !b.has_edge(u, v) {
            b.add_edge(u, v, weights.sample(&mut rng))?;
        }
    }
    b.build()
}

/// Random geometric digraph: `n` points in the unit square, an edge between
/// points at Euclidean distance below `radius` (weight = ⌈scaled distance⌉),
/// each direction kept independently with probability `keep`, plus a
/// Hamiltonian-cycle patch for strong connectivity.
pub fn random_geometric(n: usize, radius: f64, keep: f64, seed: u64) -> Result<DiGraph> {
    assert!(n >= 2);
    assert!(radius > 0.0 && (0.0..=1.0).contains(&keep));
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    let scale = 100.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= radius && rng.gen_bool(keep) {
                let w = (dist * scale).ceil().max(1.0) as Weight;
                b.add_edge(NodeId::from_index(i), NodeId::from_index(j), w)?;
            }
        }
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    for i in 0..n {
        let u = NodeId(perm[i]);
        let v = NodeId(perm[(i + 1) % n]);
        if !b.has_edge(u, v) {
            let du = pts[u.index()];
            let dv = pts[v.index()];
            let dist = ((du.0 - dv.0).powi(2) + (du.1 - dv.1).powi(2)).sqrt();
            let w = (dist * scale).ceil().max(1.0) as Weight;
            b.add_edge(u, v, w)?;
        }
    }
    b.build()
}

/// The §5 reduction: replace each undirected edge `{u, v}` (given as a pair
/// list) by two opposite directed edges with equal weight. The resulting
/// digraph satisfies `d(u,v) = d(v,u)` for every pair, which is the property
/// the lower-bound argument relies on.
///
/// # Errors
///
/// Propagates builder errors (e.g. duplicate or out-of-range edges).
pub fn bidirected_from_undirected(
    n: usize,
    undirected_edges: &[(u32, u32, Weight)],
    seed: u64,
) -> Result<DiGraph> {
    let mut b = DiGraphBuilder::new(n);
    b.port_assignment(scrambled(seed));
    for &(u, v, w) in undirected_edges {
        b.add_bidirected(NodeId(u), NodeId(v), w)?;
    }
    b.build()
}

/// A convenient enumeration of the standard experiment families, so that
/// experiment harnesses can sweep over them by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`strongly_connected_gnp`] with average degree ≈ 8.
    Gnp,
    /// [`bidirected_grid`] with aspect ratio ≈ 1.
    Grid,
    /// [`ring_with_chords`] with `n/2` chords.
    RingChords,
    /// [`layered_cycle`] with layers of 16.
    Layered,
    /// [`preferential_attachment`] with out-degree 4.
    ScaleFree,
    /// [`random_geometric`] with radius tuned for connectivity.
    Geometric,
}

impl Family {
    /// All families, for sweeps.
    pub const ALL: [Family; 6] = [
        Family::Gnp,
        Family::Grid,
        Family::RingChords,
        Family::Layered,
        Family::ScaleFree,
        Family::Geometric,
    ];

    /// Short stable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Gnp => "gnp",
            Family::Grid => "grid",
            Family::RingChords => "ring+chords",
            Family::Layered => "layered",
            Family::ScaleFree => "scale-free",
            Family::Geometric => "geometric",
        }
    }

    /// Generates a member of this family with approximately `n` nodes.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn generate(self, n: usize, seed: u64) -> Result<DiGraph> {
        match self {
            Family::Gnp => {
                let p = (8.0 / n as f64).min(0.9);
                strongly_connected_gnp(n, p, seed)
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                bidirected_grid(side, side, seed)
            }
            Family::RingChords => ring_with_chords(n, n / 2, seed),
            Family::Layered => {
                let layer = 16.min(n / 2).max(2);
                layered_cycle((n / layer).max(1), layer, seed)
            }
            Family::ScaleFree => preferential_attachment(n, 4, seed),
            Family::Geometric => {
                let radius = (8.0 / (std::f64::consts::PI * n as f64)).sqrt().min(0.9);
                random_geometric(n, radius, 0.8, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_strongly_connected_and_deterministic() {
        let g1 = strongly_connected_gnp(64, 0.05, 3).unwrap();
        let g2 = strongly_connected_gnp(64, 0.05, 3).unwrap();
        assert!(g1.is_strongly_connected());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for u in g1.nodes() {
            for (a, b) in g1.out_edges(u).iter().zip(g2.out_edges(u)) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let g1 = strongly_connected_gnp(64, 0.05, 3).unwrap();
        let g2 = strongly_connected_gnp(64, 0.05, 4).unwrap();
        // Overwhelmingly likely to differ in edge count or structure.
        let same = g1.edge_count() == g2.edge_count()
            && g1.nodes().all(|u| g1.out_edges(u) == g2.out_edges(u));
        assert!(!same);
    }

    #[test]
    fn grid_dimensions_and_connectivity() {
        let g = bidirected_grid(5, 7, 1).unwrap();
        assert_eq!(g.node_count(), 35);
        assert!(g.is_strongly_connected());
        // Interior node has degree 4 in each direction.
        let interior = NodeId::from_index(7 + 3);
        assert_eq!(g.out_degree(interior), 4);
        assert_eq!(g.in_degree(interior), 4);
    }

    #[test]
    fn torus_is_regular() {
        let g = bidirected_torus(4, 5, 2).unwrap();
        assert_eq!(g.node_count(), 20);
        assert!(g.is_strongly_connected());
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
            assert_eq!(g.in_degree(v), 4);
        }
    }

    #[test]
    fn ring_and_chords() {
        let g = directed_ring(10, 5).unwrap();
        assert!(g.is_strongly_connected());
        assert_eq!(g.edge_count(), 10);
        let g = ring_with_chords(30, 10, 5).unwrap();
        assert!(g.is_strongly_connected());
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn weighted_chords_respect_their_range() {
        let ring = WeightRange::unit();
        let chord = WeightRange::new(100, 200);
        let g = ring_with_chords_weighted(40, 25, 7, ring, chord).unwrap();
        assert!(g.is_strongly_connected());
        assert_eq!(g.edge_count(), 65);
        let mut chords_seen = 0;
        for u in g.nodes() {
            for e in g.out_edges(u) {
                if (u.index() + 1) % 40 == e.to.index() {
                    assert_eq!(e.weight, 1, "ring edge outside ring range");
                } else {
                    assert!((100..=200).contains(&e.weight), "chord weight {} off-range", e.weight);
                    chords_seen += 1;
                }
            }
        }
        assert_eq!(chords_seen, 25);
    }

    #[test]
    fn default_ranges_match_the_unweighted_generator() {
        let g1 = ring_with_chords(30, 12, 5).unwrap();
        let g2 =
            ring_with_chords_weighted(30, 12, 5, WeightRange::default(), WeightRange::default())
                .unwrap();
        for u in g1.nodes() {
            assert_eq!(g1.out_edges(u), g2.out_edges(u));
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_digraph(8, 9).unwrap();
        assert_eq!(g.edge_count(), 8 * 7);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn layered_cycle_is_strongly_connected() {
        let g = layered_cycle(4, 8, 11).unwrap();
        assert_eq!(g.node_count(), 32);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn preferential_attachment_is_strongly_connected() {
        let g = preferential_attachment(80, 3, 13).unwrap();
        assert_eq!(g.node_count(), 80);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn geometric_is_strongly_connected() {
        let g = random_geometric(60, 0.3, 0.7, 17).unwrap();
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn bidirected_reduction_symmetric_weights() {
        let edges = [(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 0, 5), (0, 2, 7)];
        let g = bidirected_from_undirected(4, &edges, 0).unwrap();
        assert!(g.is_strongly_connected());
        for &(u, v, w) in &edges {
            assert_eq!(g.edge_weight(NodeId(u), NodeId(v)), Some(w));
            assert_eq!(g.edge_weight(NodeId(v), NodeId(u)), Some(w));
        }
    }

    #[test]
    fn every_family_generates_strongly_connected_graphs() {
        for family in Family::ALL {
            for seed in 0..3 {
                let g = family.generate(48, seed).unwrap();
                assert!(
                    g.is_strongly_connected(),
                    "{} (seed {seed}) not strongly connected",
                    family.name()
                );
                assert!(g.node_count() >= 16, "{} too small", family.name());
            }
        }
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }
}
