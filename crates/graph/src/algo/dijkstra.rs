//! Single-source shortest paths (Dijkstra) in forward and reverse direction.
//!
//! Both directions are needed throughout the reproduction: the roundtrip
//! distance `r(u,v) = d(u,v) + d(v,u)` (paper §1.1) combines a forward
//! single-source run from `u` with a *reverse* run from `u` on the transposed
//! adjacency (giving `d(·, u)` for all sources).

use crate::graph::DiGraph;
use crate::types::{Distance, NodeId, Port, Weight, INFINITY};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of a single-source (or single-sink) shortest path computation.
///
/// For a *forward* run from root `r`, `dist[v] = d(r, v)` and `parent[v]` is
/// the predecessor of `v` on a shortest `r → v` path (so following parents
/// from `v` leads back to `r`). `parent_port[v]` is the fixed-port label of
/// the edge `parent[v] → v` at `parent[v]` — exactly what a routing table
/// needs to store to forward *away* from the root along the tree.
///
/// For a *reverse* run (single sink `r`), `dist[v] = d(v, r)` and `parent[v]`
/// is the successor of `v` on a shortest `v → r` path; `parent_port[v]` is the
/// port of the edge `v → parent[v]` at `v` — what `v` stores to forward
/// *toward* the root.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The root (forward) or sink (reverse) of the computation.
    pub root: NodeId,
    /// `dist[v]`: distance from the root to `v` (forward) or from `v` to the
    /// root (reverse). [`INFINITY`] when unreachable.
    pub dist: Vec<Distance>,
    /// Tree parent of each node (`None` for the root and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// Port of the tree edge adjacent to the parent (forward) or to the node
    /// itself (reverse); see the struct docs.
    pub parent_port: Vec<Option<Port>>,
    /// True when this tree was produced by [`dijkstra_reverse`].
    pub reverse: bool,
}

impl ShortestPathTree {
    /// Distance to (or from) `v`.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist[v.index()]
    }

    /// Whether `v` is reachable from the root (forward) or reaches the root
    /// (reverse).
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()] != INFINITY
    }

    /// Reconstructs the node sequence of the tree path for `v`.
    ///
    /// Forward trees return the path `root → … → v`; reverse trees return the
    /// path `v → … → root`. Returns `None` if `v` is unreachable.
    pub fn path(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut seq = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            seq.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        if !self.reverse {
            seq.reverse();
        }
        Some(seq)
    }

    /// Number of reachable nodes, including the root.
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INFINITY).count()
    }
}

/// Entry of the priority queue. Ordered by distance then node id, so that runs
/// are fully deterministic regardless of heap tie-breaking.
type HeapEntry = Reverse<(Distance, u32)>;

/// Forward Dijkstra from `source`, restricted to an optional node filter.
///
/// When `filter` is `Some(f)`, only nodes `v` with `f(v) == true` are relaxed
/// or settled (the source is always settled); this is used to build
/// shortest-path trees *inside a cluster* for the cover constructions of
/// paper §4, where paths must stay within the cluster's induced subgraph.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra_filtered(
    g: &DiGraph,
    source: NodeId,
    filter: Option<&dyn Fn(NodeId) -> bool>,
) -> ShortestPathTree {
    dijkstra_forward_core(g, source, filter, None)
}

/// The single forward relaxation loop behind [`dijkstra`],
/// [`dijkstra_filtered`] and [`dijkstra_to_targets`].  Keeping one
/// implementation is what makes the bounded variant's "bit-identical on
/// targets" guarantee structural: there is exactly one relaxation body and
/// one equal-distance tie-break.
fn dijkstra_forward_core(
    g: &DiGraph,
    source: NodeId,
    filter: Option<&dyn Fn(NodeId) -> bool>,
    targets: Option<&[NodeId]>,
) -> ShortestPathTree {
    let n = g.node_count();
    assert!(source.index() < n, "source out of range");
    // When a target set is given, count down distinct unsettled targets and
    // stop the loop at zero.
    let mut goal = targets.map(|ts| {
        let mut is_target = vec![false; n];
        let mut remaining = 0usize;
        for &t in ts {
            assert!(t.index() < n, "target out of range");
            if !is_target[t.index()] {
                is_target[t.index()] = true;
                remaining += 1;
            }
        }
        (is_target, remaining)
    });

    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut parent_port: Vec<Option<Port>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

    dist[source.index()] = 0;
    heap.push(Reverse((0, source.0)));

    while goal.as_ref().is_none_or(|(_, remaining)| *remaining > 0) {
        let Some(Reverse((d, u_raw))) = heap.pop() else {
            break; // heap exhausted (or some targets unreachable)
        };
        let u = NodeId(u_raw);
        if settled[u.index()] {
            continue;
        }
        if d > dist[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        if let Some((is_target, remaining)) = goal.as_mut() {
            if is_target[u.index()] {
                *remaining -= 1;
            }
        }
        for e in g.out_edges(u) {
            let v = e.to;
            if let Some(f) = filter {
                if !f(v) {
                    continue;
                }
            }
            let nd = d.saturating_add(e.weight);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                parent_port[v.index()] = Some(e.port);
                heap.push(Reverse((nd, v.0)));
            } else if nd == dist[v.index()] {
                // Deterministic tie-break: prefer the smaller parent id so
                // that repeated builds give identical trees.
                if let Some(p) = parent[v.index()] {
                    if u < p {
                        parent[v.index()] = Some(u);
                        parent_port[v.index()] = Some(e.port);
                    }
                }
            }
        }
    }

    ShortestPathTree { root: source, dist, parent, parent_port, reverse: false }
}

/// Forward Dijkstra from `source` over the whole graph.
pub fn dijkstra(g: &DiGraph, source: NodeId) -> ShortestPathTree {
    dijkstra_filtered(g, source, None)
}

/// Forward Dijkstra from `source` that terminates as soon as every node in
/// `targets` is settled, instead of running to completion.
///
/// For the targets themselves the result — `dist`, `parent` and
/// `parent_port` — is **bit-identical** to a full [`dijkstra`] run: a
/// target's entries can only be rewritten (including the deterministic
/// equal-distance tie-break) while relaxing edges out of a node with strictly
/// smaller distance, and every such node is popped from the heap before the
/// target is settled. Entries of non-target nodes may be tentative
/// (unreached nodes stay at [`INFINITY`]); only read the targets.
///
/// This is the ball-port extraction fast path: a node's roundtrip ball holds
/// at most `O(√n)` members, so stopping at the last member skips most of the
/// graph on low-diameter instances.
///
/// # Panics
///
/// Panics if `source` or any target is out of range.
pub fn dijkstra_to_targets(g: &DiGraph, source: NodeId, targets: &[NodeId]) -> ShortestPathTree {
    dijkstra_forward_core(g, source, None, Some(targets))
}

/// Reverse (single-sink) Dijkstra: computes `d(v, sink)` for every `v`.
///
/// The relaxation walks the *in*-edges of the graph. For every node `v` the
/// resulting `parent[v]` is the next node after `v` on a shortest `v → sink`
/// path and `parent_port[v]` is the out-port of `v` leading to it — i.e. the
/// entry `v` stores to route toward the sink (the `InTree` of paper §3.2).
///
/// # Panics
///
/// Panics if `sink` is out of range.
pub fn dijkstra_reverse_filtered(
    g: &DiGraph,
    sink: NodeId,
    filter: Option<&dyn Fn(NodeId) -> bool>,
) -> ShortestPathTree {
    let n = g.node_count();
    assert!(sink.index() < n, "sink out of range");
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut parent_port: Vec<Option<Port>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

    dist[sink.index()] = 0;
    heap.push(Reverse((0, sink.0)));

    while let Some(Reverse((d, u_raw))) = heap.pop() {
        let u = NodeId(u_raw);
        if settled[u.index()] {
            continue;
        }
        if d > dist[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        // Relax in-edges: for an edge (w -> u), a path w -> u -> ... -> sink.
        for &(w, weight) in g.in_edges(u) {
            if let Some(f) = filter {
                if !f(w) {
                    continue;
                }
            }
            let nd = d.saturating_add(weight);
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                parent[w.index()] = Some(u);
                parent_port[w.index()] = g.port_of_edge(w, u);
                heap.push(Reverse((nd, w.0)));
            } else if nd == dist[w.index()] {
                if let Some(p) = parent[w.index()] {
                    if u < p {
                        parent[w.index()] = Some(u);
                        parent_port[w.index()] = g.port_of_edge(w, u);
                    }
                }
            }
        }
    }

    ShortestPathTree { root: sink, dist, parent, parent_port, reverse: true }
}

/// Reverse Dijkstra over the whole graph (see [`dijkstra_reverse_filtered`]).
pub fn dijkstra_reverse(g: &DiGraph, sink: NodeId) -> ShortestPathTree {
    dijkstra_reverse_filtered(g, sink, None)
}

/// Computes the weight of the path described by the node sequence `path`.
///
/// Returns `None` if the sequence uses a missing edge or is empty.
pub fn path_weight(g: &DiGraph, path: &[NodeId]) -> Option<Weight> {
    if path.is_empty() {
        return None;
    }
    let mut total: Weight = 0;
    for w in path.windows(2) {
        total = total.checked_add(g.edge_weight(w[0], w[1])?)?;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiGraphBuilder;

    /// A small asymmetric strongly connected digraph used by several tests.
    ///
    /// Edges: 0→1 (1), 1→2 (2), 2→0 (4), 0→2 (10), 2→1 (1), 1→0 (7)
    fn asym() -> DiGraph {
        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 4).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_distances() {
        let g = asym();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.distance(NodeId(0)), 0);
        assert_eq!(t.distance(NodeId(1)), 1);
        assert_eq!(t.distance(NodeId(2)), 3); // 0→1→2
    }

    #[test]
    fn reverse_distances() {
        let g = asym();
        let t = dijkstra_reverse(&g, NodeId(0));
        // d(1, 0): 1→2→0 = 6 vs 1→0 = 7 → 6
        assert_eq!(t.distance(NodeId(1)), 6);
        assert_eq!(t.distance(NodeId(2)), 4);
        assert_eq!(t.distance(NodeId(0)), 0);
    }

    #[test]
    fn forward_path_reconstruction() {
        let g = asym();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.path(NodeId(2)).unwrap(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(path_weight(&g, &t.path(NodeId(2)).unwrap()), Some(3));
    }

    #[test]
    fn reverse_path_reconstruction() {
        let g = asym();
        let t = dijkstra_reverse(&g, NodeId(0));
        // Path from 1 to 0 should be 1→2→0.
        assert_eq!(t.path(NodeId(1)).unwrap(), vec![NodeId(1), NodeId(2), NodeId(0)]);
        assert_eq!(path_weight(&g, &t.path(NodeId(1)).unwrap()), Some(6));
    }

    #[test]
    fn reverse_parent_ports_point_along_path() {
        let g = asym();
        let t = dijkstra_reverse(&g, NodeId(0));
        // Node 1's next hop toward 0 is node 2; the stored port must label
        // edge (1, 2) at node 1.
        let port = t.parent_port[1].unwrap();
        let e = g.edge_by_port(NodeId(1), port).unwrap();
        assert_eq!(e.to, NodeId(2));
    }

    #[test]
    fn forward_parent_ports_label_parent_edges() {
        let g = asym();
        let t = dijkstra(&g, NodeId(0));
        // Node 2's parent is 1; parent_port must label edge (1, 2) at node 1.
        assert_eq!(t.parent[2], Some(NodeId(1)));
        let e = g.edge_by_port(NodeId(1), t.parent_port[2].unwrap()).unwrap();
        assert_eq!(e.to, NodeId(2));
    }

    #[test]
    fn unreachable_nodes_get_infinity() {
        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        // Node 2 unreachable from 0.
        b.add_edge(NodeId(2), NodeId(0), 1).unwrap();
        let g = b.build().unwrap();
        let t = dijkstra(&g, NodeId(0));
        assert!(!t.is_reachable(NodeId(2)));
        assert_eq!(t.path(NodeId(2)), None);
        assert_eq!(t.reachable_count(), 2);
    }

    #[test]
    fn filtered_dijkstra_respects_the_filter() {
        let g = asym();
        // Forbid node 1: distance 0→2 must use the direct edge of weight 10.
        let allowed = |v: NodeId| v != NodeId(1);
        let t = dijkstra_filtered(&g, NodeId(0), Some(&allowed));
        assert_eq!(t.distance(NodeId(2)), 10);
        assert_eq!(t.distance(NodeId(1)), INFINITY);
    }

    #[test]
    fn filtered_reverse_dijkstra_respects_the_filter() {
        let g = asym();
        let allowed = |v: NodeId| v != NodeId(2);
        let t = dijkstra_reverse_filtered(&g, NodeId(0), Some(&allowed));
        // d(1, 0) avoiding 2: direct edge weight 7.
        assert_eq!(t.distance(NodeId(1)), 7);
    }

    #[test]
    fn path_weight_rejects_non_paths() {
        let g = asym();
        assert_eq!(path_weight(&g, &[]), None);
        assert_eq!(path_weight(&g, &[NodeId(0), NodeId(0)]), None);
        assert_eq!(path_weight(&g, &[NodeId(0)]), Some(0));
    }

    #[test]
    fn bounded_run_handles_unreachable_targets() {
        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 1).unwrap();
        let g = b.build().unwrap();
        let t = dijkstra_to_targets(&g, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.distance(NodeId(1)), 1);
        assert!(!t.is_reachable(NodeId(2)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        // Property behind the ball-port fast path: for any graph family,
        // source and target set, the early-terminating run is bit-identical
        // to the full run on every target (distances, parents, ports).
        #[test]
        fn bounded_dijkstra_matches_full_run_on_targets(
            seed in 0u64..1000,
            n in 8usize..40,
            target_count in 1usize..12,
        ) {
            use crate::generators::Family;
            let family = Family::ALL[(seed % Family::ALL.len() as u64) as usize];
            let g = family.generate(n, seed).unwrap();
            let n = g.node_count();
            let source = NodeId::from_index(seed as usize % n);
            // A deterministic pseudo-random target set (duplicates allowed on
            // purpose: the bounded run must tolerate them).
            let targets: Vec<NodeId> = (0..target_count)
                .map(|i| NodeId::from_index((seed as usize * 31 + i * 17) % n))
                .collect();
            let full = dijkstra(&g, source);
            let bounded = dijkstra_to_targets(&g, source, &targets);
            for &t in &targets {
                proptest::prop_assert_eq!(bounded.distance(t), full.distance(t));
                proptest::prop_assert_eq!(bounded.parent[t.index()], full.parent[t.index()]);
                proptest::prop_assert_eq!(
                    bounded.parent_port[t.index()],
                    full.parent_port[t.index()]
                );
                proptest::prop_assert_eq!(bounded.path(t), full.path(t));
            }
        }
    }

    #[test]
    fn forward_and_reverse_agree_on_pairs() {
        let g = asym();
        for u in g.nodes() {
            let fwd = dijkstra(&g, u);
            for v in g.nodes() {
                let rev = dijkstra_reverse(&g, v);
                assert_eq!(fwd.distance(v), rev.distance(u), "d({u},{v}) mismatch");
            }
        }
    }

    #[test]
    fn deterministic_under_repeated_runs() {
        let g = asym();
        let a = dijkstra(&g, NodeId(2));
        let b = dijkstra(&g, NodeId(2));
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.parent, b.parent);
    }
}
