//! Strongly connected components (iterative Tarjan) and the condensation DAG.
//!
//! Every scheme in the paper requires a strongly connected input graph
//! (§1.1); generators use the SCC decomposition to patch arbitrary random
//! graphs into strongly connected ones, and `DiGraph::require_strongly_connected`
//! uses it for validation.

use crate::graph::DiGraph;
use crate::types::NodeId;

/// Computes the strongly connected components of `g`.
///
/// Returns the components as vectors of node ids, in reverse topological
/// order of the condensation (i.e. a component appears before any component
/// it has an edge *into*... specifically Tarjan's completion order). Each node
/// appears in exactly one component.
///
/// The implementation is an iterative Tarjan so that large graphs do not
/// overflow the call stack.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut index_counter: u32 = 0;
    let mut index: Vec<Option<u32>> = vec![None; n];
    let mut lowlink: Vec<u32> = vec![0; n];
    let mut on_stack: Vec<bool> = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS state: (node, next out-edge position to explore).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for start in g.nodes() {
        if index[start.index()].is_some() {
            continue;
        }
        call_stack.push((start, 0));
        while let Some(&mut (v, ref mut next_edge)) = call_stack.last_mut() {
            if *next_edge == 0 {
                // First visit of v.
                index[v.index()] = Some(index_counter);
                lowlink[v.index()] = index_counter;
                index_counter += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            let out = g.out_edges(v);
            if *next_edge < out.len() {
                let w = out[*next_edge].to;
                *next_edge += 1;
                match index[w.index()] {
                    None => call_stack.push((w, 0)),
                    Some(widx) => {
                        if on_stack[w.index()] {
                            lowlink[v.index()] = lowlink[v.index()].min(widx);
                        }
                    }
                }
            } else {
                // All successors explored: close v.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if Some(lowlink[v.index()]) == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// The condensation of `g`: one meta-node per strongly connected component,
/// and an (unweighted, deduplicated) edge between two components whenever some
/// original edge crosses them.
///
/// Returns `(component_of_node, edges)` where `component_of_node[v]` is the
/// index of `v`'s component in the vector returned by
/// [`strongly_connected_components`], and `edges` lists directed component
/// pairs.
pub fn condensation(g: &DiGraph) -> (Vec<usize>, Vec<(usize, usize)>) {
    let comps = strongly_connected_components(g);
    let mut comp_of = vec![usize::MAX; g.node_count()];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let (cu, cv) = (comp_of[u.index()], comp_of[e.to.index()]);
            if cu != cv {
                edges.push((cu, cv));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (comp_of, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiGraphBuilder;

    #[test]
    fn single_cycle_is_one_component() {
        let mut b = DiGraphBuilder::new(5);
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 5), 1).unwrap();
        }
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn path_graph_has_n_components() {
        let mut b = DiGraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1).unwrap();
        }
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn two_cycles_joined_by_one_edge() {
        let mut b = DiGraphBuilder::new(6);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 3), 1).unwrap();
            b.add_edge(NodeId(3 + i), NodeId(3 + (i + 1) % 3), 1).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(3), 1).unwrap();
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn components_partition_the_nodes() {
        let mut b = DiGraphBuilder::new(10);
        for i in 0..9u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1).unwrap();
        }
        b.add_edge(NodeId(4), NodeId(0), 1).unwrap();
        b.add_edge(NodeId(9), NodeId(5), 1).unwrap();
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        let mut all: Vec<NodeId> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, g.nodes().collect::<Vec<_>>());
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn condensation_of_two_sccs() {
        let mut b = DiGraphBuilder::new(4);
        b.add_bidirected(NodeId(0), NodeId(1), 1).unwrap();
        b.add_bidirected(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        let g = b.build().unwrap();
        let (comp_of, edges) = condensation(&g);
        assert_eq!(comp_of[0], comp_of[1]);
        assert_eq!(comp_of[2], comp_of[3]);
        assert_ne!(comp_of[0], comp_of[2]);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0], (comp_of[1], comp_of[2]));
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 50k-node path: a recursive Tarjan would overflow; the iterative one
        // must handle it.
        let n = 50_000usize;
        let mut b = DiGraphBuilder::new(n);
        for i in 0..(n - 1) as u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1).unwrap();
        }
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn singleton_graph() {
        let b = DiGraphBuilder::new(1);
        let g = b.build().unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert!(g.is_strongly_connected());
    }
}
