//! Floyd–Warshall all-pairs shortest paths.
//!
//! This is the *oracle* implementation used by tests and small experiments to
//! validate the Dijkstra-based distance machinery and the stretch accounting.
//! It is O(n³) and should only be used on small graphs; the production
//! all-pairs code lives in `rtr-metric` and runs `n` Dijkstras in parallel.

use crate::graph::DiGraph;
use crate::types::{Distance, NodeId, INFINITY};

/// Dense all-pairs distance matrix: `dist(u, v) = matrix[u.index()][v.index()]`.
///
/// Unreachable pairs hold [`INFINITY`]; the diagonal is zero.
pub fn floyd_warshall(g: &DiGraph) -> Vec<Vec<Distance>> {
    let n = g.node_count();
    let mut dist = vec![vec![INFINITY; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = 0;
    }
    for u in g.nodes() {
        for e in g.out_edges(u) {
            let cur = &mut dist[u.index()][e.to.index()];
            if e.weight < *cur {
                *cur = e.weight;
            }
        }
    }
    for k in 0..n {
        let row_k = dist[k].clone();
        for row_i in dist.iter_mut() {
            let dik = row_i[k];
            if dik == INFINITY {
                continue;
            }
            for (j, &dkj) in row_k.iter().enumerate() {
                if dkj == INFINITY {
                    continue;
                }
                let through = dik + dkj;
                if through < row_i[j] {
                    row_i[j] = through;
                }
            }
        }
    }
    dist
}

/// Convenience lookup into a Floyd–Warshall matrix.
pub fn matrix_distance(matrix: &[Vec<Distance>], u: NodeId, v: NodeId) -> Distance {
    matrix[u.index()][v.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::dijkstra;
    use crate::graph::DiGraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let n = 12 + trial;
            let mut b = DiGraphBuilder::new(n);
            // Cycle to guarantee strong connectivity.
            for i in 0..n as u32 {
                b.add_edge(NodeId(i), NodeId((i + 1) % n as u32), rng.gen_range(1..20)).unwrap();
            }
            for _ in 0..3 * n {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
                    b.add_edge(NodeId(u), NodeId(v), rng.gen_range(1..20)).unwrap();
                }
            }
            let g = b.build().unwrap();
            let fw = floyd_warshall(&g);
            for u in g.nodes() {
                let t = dijkstra(&g, u);
                for v in g.nodes() {
                    assert_eq!(t.distance(v), matrix_distance(&fw, u, v), "mismatch for ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn diagonal_is_zero_and_unreachable_is_infinity() {
        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        let g = b.build().unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw[0][0], 0);
        assert_eq!(fw[0][1], 5);
        assert_eq!(fw[1][0], INFINITY);
        assert_eq!(fw[0][2], INFINITY);
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut b = DiGraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 1).unwrap();
        let g = b.build().unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw[0][2], 4, "must prefer 0→1→2 over the direct edge");
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    if fw[i][k] != INFINITY && fw[k][j] != INFINITY && fw[i][j] != INFINITY {
                        assert!(fw[i][j] <= fw[i][k] + fw[k][j]);
                    }
                }
            }
        }
    }
}
