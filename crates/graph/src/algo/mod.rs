//! Graph algorithms: shortest paths, strong connectivity, traversal, oracles.

pub mod dijkstra;
pub mod floyd;
pub mod scc;
pub mod traversal;

pub use dijkstra::{dijkstra, dijkstra_reverse, ShortestPathTree};
pub use floyd::floyd_warshall;
pub use scc::{condensation, strongly_connected_components};
pub use traversal::{bfs_order, dfs_order, reachable_from, reaches_all};
