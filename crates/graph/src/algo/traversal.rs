//! Unweighted traversals: BFS, DFS, reachability helpers.

use crate::graph::DiGraph;
use crate::types::NodeId;
use std::collections::VecDeque;

/// Nodes reachable from `source` (including `source`), in BFS order.
pub fn bfs_order(g: &DiGraph, source: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for e in g.out_edges(u) {
            if !visited[e.to.index()] {
                visited[e.to.index()] = true;
                queue.push_back(e.to);
            }
        }
    }
    order
}

/// Nodes reachable from `source` (including `source`), in iterative
/// preorder DFS order.
pub fn dfs_order(g: &DiGraph, source: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so the first out-edge is explored first.
        for e in g.out_edges(u).iter().rev() {
            if !visited[e.to.index()] {
                stack.push(e.to);
            }
        }
    }
    order
}

/// The set of nodes reachable from `source` as a boolean vector indexed by node.
pub fn reachable_from(g: &DiGraph, source: NodeId) -> Vec<bool> {
    let mut reach = vec![false; g.node_count()];
    for v in bfs_order(g, source) {
        reach[v.index()] = true;
    }
    reach
}

/// True when every node of the graph is reachable from `source`.
pub fn reaches_all(g: &DiGraph, source: NodeId) -> bool {
    bfs_order(g, source).len() == g.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiGraphBuilder;

    fn diamond() -> DiGraph {
        // 0 → {1,2} → 3, plus 3 → 0 to close the cycle.
        let mut b = DiGraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bfs_visits_every_reachable_node_once() {
        let g = diamond();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId(0));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn bfs_respects_level_order() {
        let g = diamond();
        let order = bfs_order(&g, NodeId(0));
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(NodeId(1)) < pos(NodeId(3)));
        assert!(pos(NodeId(2)) < pos(NodeId(3)));
    }

    #[test]
    fn dfs_visits_every_reachable_node_once() {
        let g = diamond();
        let order = dfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn dfs_explores_first_edge_first() {
        let g = diamond();
        let order = dfs_order(&g, NodeId(0));
        // First out-edge of 0 goes to 1 (insertion order), so 1 precedes 2.
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(NodeId(1)) < pos(NodeId(2)));
    }

    #[test]
    fn reachability_on_disconnected_graph() {
        let mut b = DiGraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        let g = b.build().unwrap();
        let reach = reachable_from(&g, NodeId(0));
        assert_eq!(reach, vec![true, true, false, false]);
        assert!(!reaches_all(&g, NodeId(0)));
    }

    #[test]
    fn reaches_all_on_cycle() {
        let g = diamond();
        for v in g.nodes() {
            assert!(reaches_all(&g, v));
        }
    }
}
