//! A tiny shared-nothing parallel-map helper used across the workspace.
//!
//! The workspace's dominant parallel pattern is "fan a slice out over worker
//! threads that own disjoint blocks" (matrix rows, cover balls, scheme
//! tables).  This module keeps that scaffold in one place so chunk sizing and
//! panic propagation are fixed once.

use std::panic::resume_unwind;

/// Runs `f(start_index, block)` over disjoint blocks of `slice`, one scoped
/// worker thread per block, sized to the available parallelism.
///
/// `start_index` is the index of `block[0]` within `slice`, so workers can
/// recover the global position of each element.  Blocks are contiguous and
/// cover the slice exactly; with `t` threads there are at most `t` blocks.
/// Determinism is the caller's property: as long as `f` writes only through
/// its own block (which the borrow checker enforces) and reads only shared
/// immutable state, the result is bit-identical for any thread count.
///
/// A panic in any worker is propagated to the caller with its original
/// payload after all workers have joined.
pub fn par_blocks_mut<T, F>(slice: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = slice.len();
    if n == 0 {
        return;
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    let chunk = n.div_ceil(threads);
    let result = crossbeam::scope(|scope| {
        for (ci, block) in slice.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| f(ci * chunk, block));
        }
    });
    if let Err(payload) = result {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once_with_global_indices() {
        let mut v = vec![0usize; 1037];
        par_blocks_mut(&mut v, |start, block| {
            for (offset, slot) in block.iter_mut().enumerate() {
                *slot = start + offset;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut v: Vec<u8> = Vec::new();
        par_blocks_mut(&mut v, |_, _| panic!("must not run"));
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let mut v = vec![0u8; 16];
            par_blocks_mut(&mut v, |_, _| panic!("worker failed"));
        });
        assert!(result.is_err());
    }
}
