//! Seeded fault injection: graph mutations as data.
//!
//! A [`GraphDelta`] is one structural fault — an edge removal, a weight
//! inflation, or a node outage. A [`FaultPlan`] is a deterministic sequence
//! of deltas: the generators here are pure functions of their inputs and a
//! seed, so the same plan can be regenerated bit-for-bit on any worker (the
//! chaos conformance tests assert exactly that).
//!
//! The generators are deliberately **metric-free** — they see adjacency and
//! candidate lists, never distances. Callers that want impact-budgeted fault
//! selection (the `chaos_sweep` bench) score candidates against the metric
//! themselves and hand the survivors to [`FaultPlan::new`].
//!
//! Applying a plan ([`FaultPlan::apply`]) mutates a [`DiGraph`] in place
//! through the port-preserving mutation API ([`DiGraph::remove_edge`],
//! [`DiGraph::set_edge_weight`], [`DiGraph::isolate_node`]) and returns the
//! [`EdgeFault`] records a downstream row-invalidation pass needs: the old
//! weight of every touched edge, and whether the whole metric must be
//! considered dirty (node outages).

use crate::graph::DiGraph;
use crate::types::{NodeId, Weight};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One structural fault, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// Remove the directed edge `(from, to)` — a link failure.
    RemoveEdge {
        /// Tail of the failed edge.
        from: NodeId,
        /// Head of the failed edge.
        to: NodeId,
    },
    /// Multiply the weight of edge `(from, to)` by `factor` (saturating) — a
    /// congested or lossy link. Factors are `>= 1`, so distances never
    /// shrink; that keeps conservative row invalidation sound.
    InflateWeight {
        /// Tail of the perturbed edge.
        from: NodeId,
        /// Head of the perturbed edge.
        to: NodeId,
        /// Multiplier applied to the current weight (must be `>= 1`).
        factor: u32,
    },
    /// Remove every edge incident to `node` — a node outage. Breaks strong
    /// connectivity, so applying one marks the entire metric dirty.
    IsolateNode {
        /// The failed node.
        node: NodeId,
    },
}

/// The record of one applied fault, in application order: enough for a
/// conservative shortest-path row invalidation (`rtr-metric`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFault {
    /// Tail of the touched edge.
    pub from: NodeId,
    /// Head of the touched edge.
    pub to: NodeId,
    /// The edge's weight **before** the fault.
    pub weight: Weight,
    /// The weight after the fault — `None` for a removal.
    pub new_weight: Option<Weight>,
}

/// What applying a [`FaultPlan`] actually did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultApplication {
    /// Every touched edge with its pre-fault weight, in application order.
    pub faults: Vec<EdgeFault>,
    /// Deltas that matched no present edge (already removed, or never
    /// existed) and were skipped.
    pub skipped: usize,
    /// True when a delta invalidated the whole metric (node outage, or a
    /// weight that decreased) — conservative per-row invalidation is only
    /// sound for removals and weight increases.
    pub all_rows_dirty: bool,
}

/// A deterministic, seeded sequence of [`GraphDelta`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    deltas: Vec<GraphDelta>,
    /// The seed the plan was generated from (0 for hand-built plans) —
    /// carried for provenance in bench artifacts.
    pub seed: u64,
}

impl FaultPlan {
    /// Wraps an explicit delta sequence (impact-budgeted selections built by
    /// callers with metric access).
    pub fn new(deltas: Vec<GraphDelta>, seed: u64) -> FaultPlan {
        FaultPlan { deltas, seed }
    }

    /// The delta sequence, in application order.
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }

    /// Number of deltas in the plan.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when the plan contains no deltas.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Seeded selection of `count` edge removals from a candidate list: the
    /// candidates are shuffled with `StdRng::seed_from_u64(seed)` and the
    /// first `count` become [`GraphDelta::RemoveEdge`]. Same inputs and seed
    /// ⇒ identical plan.
    pub fn remove_from_candidates(
        candidates: &[(NodeId, NodeId)],
        count: usize,
        seed: u64,
    ) -> FaultPlan {
        Self::mixed_from_candidates(candidates, count, 0, 1, seed)
    }

    /// Like [`remove_from_candidates`](Self::remove_from_candidates), but
    /// every `inflate_stride`-th selected edge (positions `0, s, 2s, …` of
    /// the shuffled selection) becomes a weight inflation by `factor`
    /// instead of a removal. `inflate_stride == 0` disables inflation.
    pub fn mixed_from_candidates(
        candidates: &[(NodeId, NodeId)],
        count: usize,
        inflate_stride: usize,
        factor: u32,
        seed: u64,
    ) -> FaultPlan {
        let mut picked: Vec<(NodeId, NodeId)> = candidates.to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        picked.shuffle(&mut rng);
        picked.truncate(count);
        let deltas = picked
            .into_iter()
            .enumerate()
            .map(|(i, (from, to))| {
                if inflate_stride > 0 && i % inflate_stride == 0 {
                    GraphDelta::InflateWeight { from, to, factor }
                } else {
                    GraphDelta::RemoveEdge { from, to }
                }
            })
            .collect();
        FaultPlan { deltas, seed }
    }

    /// A seeded regional outage: an unweighted out-BFS from `center` up to
    /// `hops` hops marks the blast region, and every edge with **both**
    /// endpoints inside the region is removed (shuffled into a seeded
    /// order). Regions routinely disconnect the graph — this generator is
    /// for outage modelling and API tests, not for plans that must keep the
    /// serving plane strongly connected.
    pub fn regional(g: &DiGraph, center: NodeId, hops: usize, seed: u64) -> FaultPlan {
        let n = g.node_count();
        let mut depth: Vec<Option<usize>> = vec![None; n];
        depth[center.index()] = Some(0);
        let mut frontier = vec![center];
        for d in 1..=hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for e in g.out_edges(u) {
                    if depth[e.to.index()].is_none() {
                        depth[e.to.index()] = Some(d);
                        next.push(e.to);
                    }
                }
            }
            frontier = next;
        }
        let mut internal: Vec<(NodeId, NodeId)> = Vec::new();
        for u in g.nodes() {
            if depth[u.index()].is_none() {
                continue;
            }
            for e in g.out_edges(u) {
                if depth[e.to.index()].is_some() {
                    internal.push((u, e.to));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        internal.shuffle(&mut rng);
        let deltas =
            internal.into_iter().map(|(from, to)| GraphDelta::RemoveEdge { from, to }).collect();
        FaultPlan { deltas, seed }
    }

    /// Applies the plan to `g` in delta order, returning the applied-fault
    /// records. Deltas naming an absent edge are counted in
    /// [`FaultApplication::skipped`] rather than failing — a node outage
    /// earlier in the plan may already have taken an edge down.
    pub fn apply(&self, g: &mut DiGraph) -> FaultApplication {
        let mut out = FaultApplication::default();
        for &delta in &self.deltas {
            match delta {
                GraphDelta::RemoveEdge { from, to } => match g.remove_edge(from, to) {
                    Some(e) => {
                        out.faults.push(EdgeFault { from, to, weight: e.weight, new_weight: None })
                    }
                    None => out.skipped += 1,
                },
                GraphDelta::InflateWeight { from, to, factor } => {
                    assert!(factor >= 1, "inflation factors are >= 1");
                    match g.edge_weight(from, to) {
                        Some(old) => {
                            let new = old.saturating_mul(factor as Weight);
                            g.set_edge_weight(from, to, new);
                            if new < old {
                                out.all_rows_dirty = true;
                            }
                            out.faults.push(EdgeFault {
                                from,
                                to,
                                weight: old,
                                new_weight: Some(new),
                            });
                        }
                        None => out.skipped += 1,
                    }
                }
                GraphDelta::IsolateNode { node } => {
                    let removed = g.isolate_node(node);
                    if !removed.is_empty() {
                        out.all_rows_dirty = true;
                    }
                    for (from, to, weight) in removed {
                        out.faults.push(EdgeFault { from, to, weight, new_weight: None });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::strongly_connected_gnp;

    #[test]
    fn same_seed_same_plan() {
        let g = strongly_connected_gnp(40, 0.2, 7).unwrap();
        let candidates: Vec<(NodeId, NodeId)> =
            g.nodes().flat_map(|u| g.out_edges(u).iter().map(move |e| (u, e.to))).collect();
        let a = FaultPlan::mixed_from_candidates(&candidates, 12, 4, 3, 99);
        let b = FaultPlan::mixed_from_candidates(&candidates, 12, 4, 3, 99);
        assert_eq!(a, b);
        let c = FaultPlan::mixed_from_candidates(&candidates, 12, 4, 3, 100);
        assert_ne!(a.deltas(), c.deltas());
        assert_eq!(a.len(), 12);
        assert!(a.deltas().iter().any(|d| matches!(d, GraphDelta::InflateWeight { .. })));
        assert!(a.deltas().iter().any(|d| matches!(d, GraphDelta::RemoveEdge { .. })));
    }

    #[test]
    fn apply_records_old_weights_and_skips_absent_edges() {
        let g0 = strongly_connected_gnp(30, 0.2, 3).unwrap();
        let (u, e) = g0
            .nodes()
            .find_map(|u| g0.out_edges(u).first().map(|e| (u, *e)))
            .expect("graph has edges");
        let plan = FaultPlan::new(
            vec![
                GraphDelta::InflateWeight { from: u, to: e.to, factor: 5 },
                GraphDelta::RemoveEdge { from: u, to: e.to },
                GraphDelta::RemoveEdge { from: u, to: e.to },
            ],
            0,
        );
        let mut g = g0.clone();
        let applied = plan.apply(&mut g);
        assert_eq!(applied.skipped, 1);
        assert!(!applied.all_rows_dirty);
        assert_eq!(applied.faults.len(), 2);
        assert_eq!(applied.faults[0].weight, e.weight);
        assert_eq!(applied.faults[0].new_weight, Some(e.weight.saturating_mul(5)));
        assert_eq!(applied.faults[1].weight, e.weight.saturating_mul(5));
        assert_eq!(applied.faults[1].new_weight, None);
        assert_eq!(g.edge_count(), g0.edge_count() - 1);
    }

    #[test]
    fn isolate_marks_all_rows_dirty() {
        let g0 = strongly_connected_gnp(20, 0.25, 5).unwrap();
        let mut g = g0.clone();
        let plan = FaultPlan::new(vec![GraphDelta::IsolateNode { node: NodeId(3) }], 0);
        let applied = plan.apply(&mut g);
        assert!(applied.all_rows_dirty);
        assert_eq!(applied.faults.len(), g0.out_degree(NodeId(3)) + g0.in_degree(NodeId(3)));
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn regional_outage_is_deterministic_and_internal() {
        let g = strongly_connected_gnp(50, 0.15, 11).unwrap();
        let a = FaultPlan::regional(&g, NodeId(7), 2, 1);
        let b = FaultPlan::regional(&g, NodeId(7), 2, 1);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Every delta touches only nodes within 2 out-hops of the center.
        let mut g2 = g.clone();
        let applied = a.apply(&mut g2);
        assert_eq!(applied.skipped, 0);
        assert_eq!(applied.faults.len(), a.len());
    }
}
