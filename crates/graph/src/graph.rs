//! The [`DiGraph`] structure and its builder.

use crate::error::GraphError;
use crate::types::{NodeId, Port, Weight};
use crate::Result;
use std::collections::HashSet;
use std::fmt;

/// A directed edge as stored in the graph's adjacency lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Head (target) of the edge.
    pub to: NodeId,
    /// Strictly positive weight.
    pub weight: Weight,
    /// Fixed-port label of this edge at its tail node (paper §1.1.3).
    pub port: Port,
}

/// How out-edge port numbers are assigned when the builder finalizes a graph.
///
/// In the fixed-port model the port labels are adversarial; the routing
/// schemes must work for *any* assignment. The builder therefore supports
/// several assignments so that tests can exercise more than the convenient
/// consecutive numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortAssignment {
    /// Ports `0, 1, 2, …` in insertion order (the "friendly" assignment).
    Consecutive,
    /// A seeded pseudo-random injection into `0..4n` — the adversarial
    /// assignment used by default in the experiments.
    Scrambled {
        /// Seed of the deterministic scramble.
        seed: u64,
    },
}

impl Default for PortAssignment {
    fn default() -> Self {
        PortAssignment::Scrambled { seed: 0x5eed_c0de }
    }
}

/// A strongly typed, positively weighted directed multigraph-free graph in the
/// fixed-port model.
///
/// The representation is a per-node `Vec<Edge>` (forward adjacency) plus a
/// per-node reverse adjacency of `(source, weight)` pairs used by reverse
/// Dijkstra. Nodes are `0..n`. The structure is immutable after construction;
/// use [`DiGraphBuilder`] to create one.
#[derive(Debug, Clone)]
pub struct DiGraph {
    out_edges: Vec<Vec<Edge>>,
    in_edges: Vec<Vec<(NodeId, Weight)>>,
    edge_count: usize,
    max_weight: Weight,
    min_weight: Weight,
}

impl DiGraph {
    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Largest edge weight `W` (1 if the graph has no edges).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Smallest edge weight (1 if the graph has no edges).
    #[inline]
    pub fn min_weight(&self) -> Weight {
        self.min_weight
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Returns true when `v` is a valid node of this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Out-edges of `v` in port order of insertion.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[Edge] {
        &self.out_edges[v.index()]
    }

    /// In-edges of `v` as `(source, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        &self.in_edges[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges[v.index()].len()
    }

    /// The edge from `u` to `v`, if present.
    pub fn edge(&self, u: NodeId, v: NodeId) -> Option<&Edge> {
        self.out_edges[u.index()].iter().find(|e| e.to == v)
    }

    /// The weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.edge(u, v).map(|e| e.weight)
    }

    /// Resolves an outgoing port at node `u` to the edge it labels.
    ///
    /// This is the only lookup a node may perform when *forwarding* a packet:
    /// routing tables store ports, and the simulator resolves them through
    /// this method.
    pub fn edge_by_port(&self, u: NodeId, port: Port) -> Option<&Edge> {
        self.out_edges[u.index()].iter().find(|e| e.port == port)
    }

    /// The port labelling edge `(u, v)`, if the edge exists.
    pub fn port_of_edge(&self, u: NodeId, v: NodeId) -> Option<Port> {
        self.edge(u, v).map(|e| e.port)
    }

    /// True when the graph is strongly connected (paper §1.1: all schemes
    /// require strong connectivity).
    pub fn is_strongly_connected(&self) -> bool {
        crate::algo::scc::strongly_connected_components(self).len() == 1
    }

    /// Returns an error unless the graph is strongly connected.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotStronglyConnected`] with the number of components.
    pub fn require_strongly_connected(&self) -> Result<()> {
        let comps = crate::algo::scc::strongly_connected_components(self).len();
        if comps == 1 {
            Ok(())
        } else {
            Err(GraphError::NotStronglyConnected { components: comps })
        }
    }

    /// The transpose graph (every edge reversed, ports re-assigned
    /// consecutively on the reversed edges).
    pub fn transpose(&self) -> DiGraph {
        let n = self.node_count();
        let mut builder = DiGraphBuilder::new(n);
        builder.port_assignment(PortAssignment::Consecutive);
        for u in self.nodes() {
            for e in self.out_edges(u) {
                builder.add_edge(e.to, u, e.weight).expect("transposing a valid graph cannot fail");
            }
        }
        builder.build().expect("transposing a valid graph cannot fail")
    }

    /// Total weight of all edges (useful sanity statistic).
    pub fn total_weight(&self) -> u128 {
        self.out_edges.iter().flat_map(|es| es.iter()).map(|e| e.weight as u128).sum()
    }

    /// Returns the sum of the sizes of all adjacency lists in machine words,
    /// an estimate of the raw memory the topology itself occupies. Used by the
    /// experiments to contrast routing-table size against graph size.
    pub fn adjacency_words(&self) -> usize {
        // 3 words per out-edge (to, weight, port) + 2 per in-edge.
        3 * self.edge_count + 2 * self.edge_count
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiGraph(n={}, m={}, W=[{}, {}])",
            self.node_count(),
            self.edge_count(),
            self.min_weight(),
            self.max_weight()
        )
    }
}

/// Incremental builder for [`DiGraph`].
///
/// ```
/// use rtr_graph::{DiGraphBuilder, NodeId, PortAssignment};
/// # fn main() -> Result<(), rtr_graph::GraphError> {
/// let mut b = DiGraphBuilder::new(2);
/// b.port_assignment(PortAssignment::Consecutive);
/// b.add_edge(NodeId(0), NodeId(1), 1)?;
/// b.add_edge(NodeId(1), NodeId(0), 1)?;
/// let g = b.build()?;
/// assert_eq!(g.out_degree(NodeId(0)), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiGraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
    seen: HashSet<(u32, u32)>,
    ports: PortAssignment,
}

impl DiGraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        DiGraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
            ports: PortAssignment::default(),
        }
    }

    /// Chooses how ports are assigned when [`build`](Self::build) runs.
    pub fn port_assignment(&mut self, ports: PortAssignment) -> &mut Self {
        self.ports = ports;
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.0, v.0))
    }

    /// Adds a directed edge `(from, to)` of the given weight.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `from == to`.
    /// * [`GraphError::ZeroWeight`] if `weight == 0`.
    /// * [`GraphError::DuplicateEdge`] if the directed pair was added before.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: Weight) -> Result<&mut Self> {
        if from.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: from, n: self.n });
        }
        if to.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: to, n: self.n });
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        if weight == 0 {
            return Err(GraphError::ZeroWeight { from, to });
        }
        if !self.seen.insert((from.0, to.0)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        self.edges.push((from, to, weight));
        Ok(self)
    }

    /// Adds the pair of edges `(u, v)` and `(v, u)` with the same weight,
    /// producing a "bidirected" connection (used by grids, rings and the §5
    /// lower-bound graphs where `d(u,v) = d(v,u)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`add_edge`](Self::add_edge) for either direction.
    pub fn add_bidirected(&mut self, u: NodeId, v: NodeId, weight: Weight) -> Result<&mut Self> {
        self.add_edge(u, v, weight)?;
        self.add_edge(v, u, weight)?;
        Ok(self)
    }

    /// Finalizes the graph, assigning ports according to the configured
    /// [`PortAssignment`].
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn build(&self) -> Result<DiGraph> {
        if self.n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let mut out_edges: Vec<Vec<Edge>> = vec![Vec::new(); self.n];
        let mut in_edges: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); self.n];
        let mut max_weight: Weight = 1;
        let mut min_weight: Weight = Weight::MAX;

        for &(from, to, weight) in &self.edges {
            out_edges[from.index()].push(Edge { to, weight, port: Port(0) });
            in_edges[to.index()].push((from, weight));
            max_weight = max_weight.max(weight);
            min_weight = min_weight.min(weight);
        }
        if self.edges.is_empty() {
            min_weight = 1;
        }

        // Assign ports per node.
        for (u, edges) in out_edges.iter_mut().enumerate() {
            match self.ports {
                PortAssignment::Consecutive => {
                    for (i, e) in edges.iter_mut().enumerate() {
                        e.port = Port(i as u32);
                    }
                }
                PortAssignment::Scrambled { seed } => {
                    // Deterministic per-node injection into a range of size
                    // 4 * max(deg, 1) using a splitmix-style hash, with linear
                    // probing to resolve collisions. This stays within the
                    // paper's "port names from a set of size O(n)" model while
                    // being reproducible.
                    let deg = edges.len().max(1) as u64;
                    let space = 4 * deg.max(4);
                    let mut used: HashSet<u32> = HashSet::with_capacity(edges.len());
                    for (i, e) in edges.iter_mut().enumerate() {
                        let mut h = seed
                            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u as u64 + 1))
                            .wrapping_add((i as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9));
                        h ^= h >> 30;
                        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        h ^= h >> 27;
                        let mut p = (h % space) as u32;
                        while !used.insert(p) {
                            p = (p + 1) % space as u32;
                        }
                        e.port = Port(p);
                    }
                }
            }
        }

        let g =
            DiGraph { out_edges, in_edges, edge_count: self.edges.len(), max_weight, min_weight };
        g.validate_ports()?;
        Ok(g)
    }
}

impl DiGraph {
    /// Overwrites the port labels of the given edges (used by
    /// [`crate::io::from_json`] to restore an explicitly stored assignment),
    /// then re-validates per-node uniqueness.
    pub(crate) fn reassign_ports<I: IntoIterator<Item = (NodeId, NodeId, u32)>>(
        &mut self,
        ports: I,
    ) -> Result<()> {
        for (from, to, port) in ports {
            let edge = self
                .out_edges
                .get_mut(from.index())
                .and_then(|es| es.iter_mut().find(|e| e.to == to))
                .ok_or_else(|| {
                    GraphError::Serde(format!("port for missing edge ({from}, {to})"))
                })?;
            edge.port = Port(port);
        }
        self.validate_ports()
    }

    /// Removes the directed edge `(from, to)` in place, returning the removed
    /// edge record (including its port label) or `None` when no such edge
    /// exists.
    ///
    /// All surviving edges keep their port labels, so routing tables built
    /// before the removal still resolve — a table entry naming the removed
    /// port simply stops resolving, which is exactly how a link failure
    /// manifests in the fixed-port model. Weight bounds are recomputed, so
    /// this is `O(m)` per call; fault injection applies batches of a few
    /// hundred, where that is irrelevant.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Option<Edge> {
        let out = &mut self.out_edges[from.index()];
        let at = out.iter().position(|e| e.to == to)?;
        let removed = out.remove(at);
        let ins = &mut self.in_edges[to.index()];
        let in_at = ins
            .iter()
            .position(|&(s, _)| s == from)
            .expect("in-edge list out of sync with out-edge list");
        ins.remove(in_at);
        self.edge_count -= 1;
        self.recompute_weight_bounds();
        Some(removed)
    }

    /// Sets the weight of edge `(from, to)` in place, returning the previous
    /// weight, or `None` when the edge does not exist. The port label is
    /// preserved. Weight bounds are recomputed (`O(m)`).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if `weight == 0`
    /// (weights are strictly positive by construction).
    pub fn set_edge_weight(&mut self, from: NodeId, to: NodeId, weight: Weight) -> Option<Weight> {
        assert!(weight > 0, "edge weights are strictly positive");
        let edge = self.out_edges[from.index()].iter_mut().find(|e| e.to == to)?;
        let old = edge.weight;
        edge.weight = weight;
        let entry = self.in_edges[to.index()]
            .iter_mut()
            .find(|&&mut (s, _)| s == from)
            .expect("in-edge list out of sync with out-edge list");
        entry.1 = weight;
        self.recompute_weight_bounds();
        Some(old)
    }

    /// Removes every edge incident to `node` (both directions), returning the
    /// removed `(from, to, weight)` records. The node itself remains (ids are
    /// dense), it just becomes isolated — which breaks strong connectivity,
    /// so callers modelling a node outage must treat the whole metric as
    /// invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn isolate_node(&mut self, node: NodeId) -> Vec<(NodeId, NodeId, Weight)> {
        let mut removed = Vec::new();
        let outs: Vec<NodeId> = self.out_edges[node.index()].iter().map(|e| e.to).collect();
        for to in outs {
            if let Some(e) = self.remove_edge(node, to) {
                removed.push((node, to, e.weight));
            }
        }
        let ins: Vec<NodeId> = self.in_edges[node.index()].iter().map(|&(s, _)| s).collect();
        for from in ins {
            if let Some(e) = self.remove_edge(from, node) {
                removed.push((from, node, e.weight));
            }
        }
        removed
    }

    /// Re-derives `max_weight` / `min_weight` after an in-place mutation.
    fn recompute_weight_bounds(&mut self) {
        let mut max_weight: Weight = 1;
        let mut min_weight: Weight = Weight::MAX;
        for es in &self.out_edges {
            for e in es {
                max_weight = max_weight.max(e.weight);
                min_weight = min_weight.min(e.weight);
            }
        }
        if self.edge_count == 0 {
            min_weight = 1;
        }
        self.max_weight = max_weight;
        self.min_weight = min_weight;
    }

    /// Verifies that port labels are unique per node.
    fn validate_ports(&self) -> Result<()> {
        for u in self.nodes() {
            let mut seen = HashSet::new();
            for e in self.out_edges(u) {
                if !seen.insert(e.port.0) {
                    return Err(GraphError::DuplicatePort { node: u, port: e.port.0 });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_weight(), 3);
        assert_eq!(g.min_weight(), 1);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = DiGraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(1), 0).unwrap_err();
        assert_eq!(err, GraphError::ZeroWeight { from: NodeId(0), to: NodeId(1) });
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DiGraphBuilder::new(2);
        let err = b.add_edge(NodeId(1), NodeId(1), 1).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: NodeId(1) });
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DiGraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let err = b.add_edge(NodeId(0), NodeId(1), 5).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { from: NodeId(0), to: NodeId(1) });
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = DiGraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(7), 1).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_empty_graph() {
        let b = DiGraphBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn edge_lookup_and_ports() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), None);
        let p = g.port_of_edge(NodeId(0), NodeId(1)).unwrap();
        let e = g.edge_by_port(NodeId(0), p).unwrap();
        assert_eq!(e.to, NodeId(1));
    }

    #[test]
    fn ports_are_unique_per_node_with_scrambled_assignment() {
        let mut b = DiGraphBuilder::new(50);
        b.port_assignment(PortAssignment::Scrambled { seed: 7 });
        for i in 0..50u32 {
            for j in 0..50u32 {
                if i != j && (i + j) % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j), 1 + (i + j) as u64).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        for u in g.nodes() {
            let mut ports: Vec<u32> = g.out_edges(u).iter().map(|e| e.port.0).collect();
            let len_before = ports.len();
            ports.sort_unstable();
            ports.dedup();
            assert_eq!(ports.len(), len_before, "duplicate port at {u}");
        }
    }

    #[test]
    fn scrambled_ports_are_not_consecutive_in_general() {
        let mut b = DiGraphBuilder::new(20);
        b.port_assignment(PortAssignment::Scrambled { seed: 99 });
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j {
                    b.add_edge(NodeId(i), NodeId(j), 1).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let consecutive_everywhere = g.nodes().all(|u| {
            let mut ports: Vec<u32> = g.out_edges(u).iter().map(|e| e.port.0).collect();
            ports.sort_unstable();
            ports.iter().enumerate().all(|(i, &p)| p == i as u32)
        });
        assert!(!consecutive_everywhere, "adversarial port assignment looks consecutive");
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = triangle();
        let t = g.transpose();
        assert_eq!(t.edge_weight(NodeId(1), NodeId(0)), Some(1));
        assert_eq!(t.edge_weight(NodeId(0), NodeId(2)), Some(3));
        assert_eq!(t.edge_count(), g.edge_count());
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let g = triangle();
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert_eq!(g.in_edges(NodeId(0))[0], (NodeId(2), 3));
        assert_eq!(g.out_degree(NodeId(0)), 1);
    }

    #[test]
    fn bidirected_helper_adds_both_directions() {
        let mut b = DiGraphBuilder::new(2);
        b.add_bidirected(NodeId(0), NodeId(1), 4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(4));
    }

    #[test]
    fn display_shows_counts() {
        let g = triangle();
        let s = g.to_string();
        assert!(s.contains("n=3"));
        assert!(s.contains("m=3"));
    }

    #[test]
    fn remove_edge_preserves_surviving_ports() {
        let mut g = triangle();
        let kept_port = g.port_of_edge(NodeId(1), NodeId(2)).unwrap();
        let removed = g.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(removed.to, NodeId(1));
        assert_eq!(removed.weight, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), None);
        assert_eq!(g.in_degree(NodeId(1)), 0);
        assert_eq!(g.port_of_edge(NodeId(1), NodeId(2)), Some(kept_port));
        assert_eq!(g.min_weight(), 2);
        assert!(g.remove_edge(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn set_edge_weight_updates_both_adjacencies() {
        let mut g = triangle();
        let port = g.port_of_edge(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(g.set_edge_weight(NodeId(2), NodeId(0), 9), Some(3));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), Some(9));
        assert_eq!(g.in_edges(NodeId(0))[0], (NodeId(2), 9));
        assert_eq!(g.port_of_edge(NodeId(2), NodeId(0)), Some(port));
        assert_eq!(g.max_weight(), 9);
        assert_eq!(g.set_edge_weight(NodeId(0), NodeId(2), 5), None);
    }

    #[test]
    fn isolate_node_removes_all_incident_edges() {
        let mut g = triangle();
        let removed = g.isolate_node(NodeId(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(NodeId(1)), 0);
        assert_eq!(g.in_degree(NodeId(1)), 0);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn json_roundtrip() {
        let g = triangle();
        let json = crate::io::to_json(&g).unwrap();
        let g2: DiGraph = crate::io::from_json(&json).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_weight(NodeId(2), NodeId(0)), Some(3));
    }
}
