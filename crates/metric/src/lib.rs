//! # rtr-metric — the roundtrip distance metric and its derived structures
//!
//! Implements the metric machinery of paper §1.1 and §2:
//!
//! * the **roundtrip distance** `r(u, v) = d(u, v) + d(v, u)` — the minimum
//!   cost of a directed tour from `u` through `v` and back (symmetric by
//!   definition even though the underlying one-way distances are not);
//! * the [`DistanceOracle`] trait — pluggable access to the metric, with
//!   three implementations: the dense [`DistanceMatrix`] (`n²` memory, `O(1)`
//!   queries), the on-demand [`LazyDijkstraOracle`] (bounded LRU row cache
//!   for large sparse graphs), and the memoising [`CachedSubsetOracle`]
//!   (keeps exactly the rows a construction touches). Every consumer in the
//!   workspace — orders, covers, substrates, schemes — is generic over this
//!   trait;
//! * the **total order** `≺_v` on nodes (`Init_v`): `u ≺_v w` iff
//!   `r(v,u) < r(v,w)`, ties broken by `d(u,v)` and then by node id — this is
//!   the exact three-level comparison of §2;
//! * **neighborhood balls** `N_i(u)`: the first `n^{i/k}` nodes of `Init_u`,
//!   including prefix-truncated orders ([`RoundtripOrder::build_truncated`])
//!   so that schemes needing only `Õ(√n)`-sized neighborhoods never hold an
//!   `n²` structure;
//! * the **broadcast row sweep** ([`broadcast_rows`]): one prefetched pass
//!   over the oracle's forward/reverse rows fanned out to any number of
//!   registered [`RowSweepConsumer`]s — how the scheme suite builds its
//!   orders, landmark balls and cover balls from a single pass instead of
//!   one sweep per structure;
//! * the roundtrip aggregates `RTDiam`, `RTRad`, `RTCenter` on clusters
//!   (induced subgraphs, [`ClusterMetric`]), needed by the §4 cover
//!   construction.
//!
//! ```
//! use rtr_graph::generators::strongly_connected_gnp;
//! use rtr_metric::{DistanceMatrix, DistanceOracle, LazyDijkstraOracle};
//!
//! # fn main() -> Result<(), rtr_graph::GraphError> {
//! let g = strongly_connected_gnp(32, 0.2, 7)?;
//! let dense = DistanceMatrix::build(&g);
//! let lazy = LazyDijkstraOracle::with_default_capacity(&g);
//! let (u, v) = (rtr_graph::NodeId(0), rtr_graph::NodeId(5));
//! assert_eq!(dense.roundtrip(u, v), dense.distance(u, v) + dense.distance(v, u));
//! assert_eq!(lazy.roundtrip(u, v), dense.roundtrip(u, v));
//! # Ok(())
//! # }
//! ```
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is stage two: its oracle rows feed every
//! row-granular construction downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod invalidation;
mod matrix;
mod oracle;
mod order;
mod sweep;

pub use cluster::ClusterMetric;
pub use invalidation::RowInvalidation;
pub use matrix::DistanceMatrix;
pub use oracle::{
    roundtrip_rows_batched, roundtrip_rows_sharded, sweep_rows_prefetched, CachedSubsetOracle,
    DistanceOracle, LazyDijkstraOracle, OracleStats, PREFETCH_WINDOW,
};
pub use order::{roundtrip_closer, RoundtripOrder, TruncatedOrderSweep};
pub use sweep::{
    broadcast_rows, broadcast_rows_with_threads, RowSweepConsumer, SweepRows, SweepSlots,
};
