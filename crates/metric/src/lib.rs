//! # rtr-metric — the roundtrip distance metric and its derived structures
//!
//! Implements the metric machinery of paper §1.1 and §2:
//!
//! * the **roundtrip distance** `r(u, v) = d(u, v) + d(v, u)` — the minimum
//!   cost of a directed tour from `u` through `v` and back (symmetric by
//!   definition even though the underlying one-way distances are not);
//! * the **total order** `≺_v` on nodes (`Init_v`): `u ≺_v w` iff
//!   `r(v,u) < r(v,w)`, ties broken by `d(u,v)` and then by node id — this is
//!   the exact three-level comparison of §2;
//! * **neighborhood balls** `N_i(u)`: the first `n^{i/k}` nodes of `Init_u`;
//! * all-pairs distances ([`DistanceMatrix`], parallel Dijkstra via
//!   crossbeam scoped threads) and the roundtrip aggregates `RTDiam`,
//!   `RTRad`, `RTCenter` on clusters (induced subgraphs), needed by the §4
//!   cover construction.
//!
//! ```
//! use rtr_graph::generators::strongly_connected_gnp;
//! use rtr_metric::DistanceMatrix;
//!
//! # fn main() -> Result<(), rtr_graph::GraphError> {
//! let g = strongly_connected_gnp(32, 0.2, 7)?;
//! let m = DistanceMatrix::build(&g);
//! let (u, v) = (rtr_graph::NodeId(0), rtr_graph::NodeId(5));
//! assert_eq!(m.roundtrip(u, v), m.distance(u, v) + m.distance(v, u));
//! assert_eq!(m.roundtrip(u, v), m.roundtrip(v, u));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod matrix;
mod order;

pub use cluster::ClusterMetric;
pub use matrix::DistanceMatrix;
pub use order::{roundtrip_closer, RoundtripOrder};
