//! Roundtrip metric restricted to a cluster (induced subgraph).
//!
//! The §4 cover construction measures radii, centers and diameters of
//! *clusters* — node subsets inducing strongly connected subgraphs — under the
//! roundtrip metric **of the induced subgraph** (paths must stay inside the
//! cluster). [`ClusterMetric`] materializes exactly that.

use rtr_graph::algo::dijkstra::{dijkstra_filtered, dijkstra_reverse_filtered};
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{DiGraph, Distance, NodeId, INFINITY};
use std::collections::HashMap;

/// Dense distances between the members of one cluster, computed on the
/// subgraph induced by the cluster.
#[derive(Debug, Clone)]
pub struct ClusterMetric {
    members: Vec<NodeId>,
    index_of: HashMap<NodeId, usize>,
    /// `dist[i * k + j] = d_C(members[i], members[j])` within the cluster.
    dist: Vec<Distance>,
}

impl ClusterMetric {
    /// Computes all pairwise distances inside the subgraph induced by
    /// `members`. Duplicates in `members` are ignored.
    pub fn build(g: &DiGraph, members: &[NodeId]) -> Self {
        let mut members: Vec<NodeId> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let index_of: HashMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let k = members.len();
        let mut dist = vec![INFINITY; k * k];
        let in_cluster = |v: NodeId| index_of.contains_key(&v);
        for (i, &src) in members.iter().enumerate() {
            let tree = dijkstra_filtered(g, src, Some(&in_cluster));
            for (j, &dst) in members.iter().enumerate() {
                dist[i * k + j] = tree.distance(dst);
            }
        }
        ClusterMetric { members, index_of, dist }
    }

    /// The cluster's members in sorted order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index_of.contains_key(&v)
    }

    /// One-way distance within the cluster, or [`INFINITY`] if either node is
    /// not a member or unreachable inside the cluster.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        match (self.index_of.get(&u), self.index_of.get(&v)) {
            (Some(&i), Some(&j)) => self.dist[i * self.members.len() + j],
            _ => INFINITY,
        }
    }

    /// Roundtrip distance within the cluster.
    pub fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        saturating_dist_add(self.distance(u, v), self.distance(v, u))
    }

    /// True when the induced subgraph is strongly connected.
    pub fn is_strongly_connected(&self) -> bool {
        self.dist.iter().all(|&d| d != INFINITY)
    }

    /// `RadDM(v, C)`: the maximum roundtrip distance from `v` to any member.
    pub fn rt_radius_of(&self, v: NodeId) -> Distance {
        let mut worst = 0;
        for &w in &self.members {
            let r = self.roundtrip(v, w);
            if r == INFINITY {
                return INFINITY;
            }
            worst = worst.max(r);
        }
        worst
    }

    /// `RTRad(C) = min_v RadDM(v, C)`.
    pub fn rt_radius(&self) -> Distance {
        self.members.iter().map(|&v| self.rt_radius_of(v)).min().unwrap_or(0)
    }

    /// `RTCenter(C)`: a member achieving [`rt_radius`](Self::rt_radius)
    /// (smallest id among minimizers, for determinism).
    pub fn rt_center(&self) -> Option<NodeId> {
        self.members.iter().copied().map(|v| (self.rt_radius_of(v), v)).min().map(|(_, v)| v)
    }

    /// `RTDiam(C) = max_{u,v} r_C(u, v)`.
    pub fn rt_diameter(&self) -> Distance {
        let mut worst = 0;
        for (i, &u) in self.members.iter().enumerate() {
            for &v in &self.members[i + 1..] {
                let r = self.roundtrip(u, v);
                if r == INFINITY {
                    return INFINITY;
                }
                worst = worst.max(r);
            }
        }
        worst
    }

    /// Shortest-path out-tree of the cluster rooted at `root` (paths restricted
    /// to the cluster). Returns per-member `(parent, distance)` pairs aligned
    /// with [`members`](Self::members), `None` parent for the root and
    /// unreachable members.
    pub fn out_tree_parents(&self, g: &DiGraph, root: NodeId) -> Vec<(Option<NodeId>, Distance)> {
        let in_cluster = |v: NodeId| self.contains(v);
        let tree = dijkstra_filtered(g, root, Some(&in_cluster));
        self.members.iter().map(|&v| (tree.parent[v.index()], tree.distance(v))).collect()
    }

    /// Shortest-path in-tree of the cluster toward `root` (paths restricted to
    /// the cluster). Returns per-member `(next-hop, distance)` pairs aligned
    /// with [`members`](Self::members).
    pub fn in_tree_next_hops(&self, g: &DiGraph, root: NodeId) -> Vec<(Option<NodeId>, Distance)> {
        let in_cluster = |v: NodeId| self.contains(v);
        let tree = dijkstra_reverse_filtered(g, root, Some(&in_cluster));
        self.members.iter().map(|&v| (tree.parent[v.index()], tree.distance(v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMatrix;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};

    #[test]
    fn whole_graph_cluster_matches_global_metric() {
        let g = strongly_connected_gnp(24, 0.2, 8).unwrap();
        let all: Vec<NodeId> = g.nodes().collect();
        let c = ClusterMetric::build(&g, &all);
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(c.distance(u, v), m.distance(u, v));
                assert_eq!(c.roundtrip(u, v), m.roundtrip(u, v));
            }
        }
        assert!(c.is_strongly_connected());
        assert_eq!(c.rt_diameter(), m.roundtrip_diameter());
    }

    #[test]
    fn restricted_cluster_distances_are_no_shorter() {
        let g = strongly_connected_gnp(30, 0.15, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        let members: Vec<NodeId> = g.nodes().filter(|v| v.0 % 2 == 0).collect();
        let c = ClusterMetric::build(&g, &members);
        for &u in &members {
            for &v in &members {
                let within = c.distance(u, v);
                if within != INFINITY {
                    assert!(within >= m.distance(u, v));
                }
            }
        }
    }

    #[test]
    fn non_member_queries_are_infinite() {
        let g = strongly_connected_gnp(10, 0.3, 1).unwrap();
        let members = vec![NodeId(0), NodeId(1), NodeId(2)];
        let c = ClusterMetric::build(&g, &members);
        assert_eq!(c.distance(NodeId(0), NodeId(9)), INFINITY);
        assert!(!c.contains(NodeId(9)));
    }

    #[test]
    fn center_achieves_radius_and_radius_bounds_diameter() {
        let g = bidirected_grid(5, 5, 3).unwrap();
        let all: Vec<NodeId> = g.nodes().collect();
        let c = ClusterMetric::build(&g, &all);
        let center = c.rt_center().unwrap();
        assert_eq!(c.rt_radius_of(center), c.rt_radius());
        assert!(c.rt_radius() <= c.rt_diameter());
        assert!(c.rt_diameter() <= 2 * c.rt_radius());
    }

    #[test]
    fn disconnected_cluster_detected() {
        // Take two far-apart grid corners only: the induced subgraph on two
        // non-adjacent nodes has no edges.
        let g = bidirected_grid(4, 4, 0).unwrap();
        let c = ClusterMetric::build(&g, &[NodeId(0), NodeId(15)]);
        assert!(!c.is_strongly_connected());
        assert_eq!(c.rt_diameter(), INFINITY);
    }

    #[test]
    fn duplicate_members_are_deduplicated() {
        let g = strongly_connected_gnp(8, 0.4, 2).unwrap();
        let c = ClusterMetric::build(&g, &[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn tree_helpers_agree_with_cluster_distances() {
        let g = bidirected_grid(4, 4, 7).unwrap();
        let members: Vec<NodeId> = (0..8).map(NodeId::from_index).collect();
        let c = ClusterMetric::build(&g, &members);
        if let Some(root) = c.rt_center() {
            for (i, (parent, dist)) in c.out_tree_parents(&g, root).iter().enumerate() {
                let v = c.members()[i];
                assert_eq!(*dist, c.distance(root, v));
                if v == root {
                    assert!(parent.is_none());
                }
            }
            for (i, (_next, dist)) in c.in_tree_next_hops(&g, root).iter().enumerate() {
                let v = c.members()[i];
                assert_eq!(*dist, c.distance(v, root));
            }
        }
    }
}
