//! The [`DistanceOracle`] abstraction: pluggable access to the shortest-path
//! and roundtrip metric of a graph.
//!
//! The paper's schemes (and every structure they are built from — orders,
//! balls, covers, substrates) only ever *query* the roundtrip metric; nothing
//! in their definitions requires an eagerly materialised `n × n` table.  This
//! module makes that access pluggable:
//!
//! * [`crate::DistanceMatrix`] — the dense oracle.  `O(n²)` memory, `O(1)`
//!   queries, one Dijkstra per source at build time.  The right choice up to a
//!   few thousand nodes, where later stages perform millions of random
//!   lookups.
//! * [`LazyDijkstraOracle`] — the sparse/on-demand oracle.  No precomputation;
//!   a forward (and, for reverse distances, a backward) Dijkstra runs the
//!   first time a source's row is touched, and finished rows live in a
//!   **bounded LRU cache**.  Peak memory is `O(capacity · n)` instead of
//!   `O(n²)`, which is what makes `n = 10⁴–10⁵` sparse graphs reachable.
//!   Point queries on cold rows cost a Dijkstra, so consumers should prefer
//!   the row-granular methods ([`DistanceOracle::row`],
//!   [`DistanceOracle::roundtrip_row`]) and sweep source by source.
//! * [`CachedSubsetOracle`] — the memoising middle ground: rows are computed
//!   on demand and kept forever.  When a construction only touches a subset
//!   of sources (for example a cover hierarchy probing seeds and cluster
//!   members), only those rows are ever materialised.
//!
//! The trade-off in one line: **dense pays `n²` up front for free queries;
//! lazy pays a Dijkstra per row miss for `O(capacity·n)` memory; the subset
//! oracle pays each row once for `O(touched·n)` memory.**

use crate::invalidation::RowInvalidation;
use crate::matrix::DistanceMatrix;
use parking_lot::Mutex;
use rtr_graph::algo::dijkstra::{dijkstra, dijkstra_reverse};
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{DiGraph, Distance, NodeId, INFINITY};
use rtr_telemetry::{Counter, Gauge};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Read access to the one-way and roundtrip distances of a fixed graph.
///
/// Implementations must be consistent: `roundtrip(u, v)` equals
/// `distance(u, v) + distance(v, u)` (saturating at [`INFINITY`]), and the
/// row methods must agree with the point methods entry by entry.  All methods
/// take `&self`; implementations with interior caches (the lazy oracles) are
/// internally synchronised, so an oracle can be shared across construction
/// worker threads.
pub trait DistanceOracle: Sync + fmt::Debug {
    /// Number of nodes of the underlying graph.
    fn node_count(&self) -> usize;

    /// One-way distance `d(u, v)`, [`INFINITY`] when unreachable.
    fn distance(&self, u: NodeId, v: NodeId) -> Distance;

    /// Roundtrip distance `r(u, v) = d(u, v) + d(v, u)` (paper §1.1).
    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        saturating_dist_add(self.distance(u, v), self.distance(v, u))
    }

    /// Bulk row hook: `d(u, v)` for every `v`, as one vector.
    ///
    /// Row-granular access is the unit the lazy oracles cache, so consumers
    /// that sweep sources (orders, balls, landmark selection) should use this
    /// instead of `n` point queries.
    fn row(&self, u: NodeId) -> Vec<Distance>;

    /// Bulk reverse-row hook: `d(v, u)` for every `v` (distances *to* `u`).
    fn rev_row(&self, u: NodeId) -> Vec<Distance>;

    /// Bulk roundtrip row: `r(u, v)` for every `v`.  Needs only the forward
    /// and reverse rows of `u`, so even the lazy oracles serve it with two
    /// Dijkstras.
    fn roundtrip_row(&self, u: NodeId) -> Vec<Distance> {
        let fwd = self.row(u);
        let rev = self.rev_row(u);
        fwd.iter().zip(&rev).map(|(&a, &b)| saturating_dist_add(a, b)).collect()
    }

    /// Hint that the caller is about to sweep the forward and reverse rows of
    /// `sources`, in order.
    ///
    /// Caching oracles may compute the missing rows on worker threads before
    /// returning, so the sweep's subsequent row reads are cache hits and the
    /// Dijkstra time overlaps across cores instead of serialising on the
    /// consumer's thread.  Prefetching never changes any answer — only when
    /// (and on which thread) the Dijkstras run — so deterministic consumers
    /// may call this freely.  The default does nothing (dense oracles have
    /// every row already).
    fn prefetch_rows(&self, sources: &[NodeId]) {
        let _ = sources;
    }

    /// True when this oracle pays a per-row cost on cold reads and therefore
    /// benefits from [`prefetch_rows`](Self::prefetch_rows)-driven sequential
    /// sweeps.  Row-sweeping consumers use this to pick between "fan the
    /// sweep out over worker threads" (dense: rows are free, parallelise the
    /// consumption) and "sweep sequentially with a prefetch window" (lazy:
    /// the oracle parallelises the Dijkstras, consumption is cheap).
    fn prefers_row_prefetch(&self) -> bool {
        false
    }

    /// True when every ordered pair is reachable.
    ///
    /// The default checks the forward and reverse rows of node 0 — all nodes
    /// reachable from 0 and 0 reachable from all nodes is equivalent to strong
    /// connectivity — so lazy implementations answer with two Dijkstras
    /// instead of `n`.
    fn is_strongly_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let v0 = NodeId(0);
        self.row(v0).iter().all(|&d| d != INFINITY)
            && self.rev_row(v0).iter().all(|&d| d != INFINITY)
    }

    /// An upper bound on the roundtrip diameter `RTDiam(G)`, tight enough to
    /// terminate scale hierarchies.
    ///
    /// For any probe `x` the triangle inequality gives
    /// `r(u, v) ≤ r(u, x) + r(x, v) ≤ 2·ecc(x)` where
    /// `ecc(x) = max_w r(x, w)`, so `2·ecc(x)` is an upper bound for every
    /// probe and the *minimum* over probes is the one to keep.  The quality
    /// of the bound therefore hinges on probing a node near the metric's
    /// *center* (where `ecc ≈ RTDiam/2` on path-like metrics), not its
    /// periphery.  The default runs a double sweep to find two far-apart
    /// peripheral nodes `a, b`, then probes the **midpoint** node minimizing
    /// `max(r(a, w), r(b, w))` — four roundtrip rows (eight Dijkstras)
    /// instead of one row.  On low-ply metrics (grids, rings with chords,
    /// geometric graphs) the midpoint probe usually recovers the exact
    /// `⌈log₂ RTDiam⌉`, so lazy-oracle `DoubleTreeCover` builds stop minting
    /// a redundant top level; the worst case stays at most `2·RTDiam` (every
    /// `ecc(x) ≤ RTDiam`), exactly as the old single-probe estimate.  Dense
    /// oracles override this with the exact diameter.
    fn roundtrip_diameter_bound(&self) -> Distance {
        if self.node_count() == 0 {
            return 0;
        }
        // max_by_key ties break toward the smaller index for determinism.
        let farthest = |row: &[Distance]| -> (NodeId, Distance) {
            row.iter()
                .enumerate()
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .map(|(i, &d)| (NodeId::from_index(i), d))
                .unwrap_or((NodeId(0), 0))
        };
        let row0 = self.roundtrip_row(NodeId(0));
        let (far0, ecc0) = farthest(&row0);
        if ecc0 == INFINITY {
            return INFINITY;
        }
        if ecc0 == 0 {
            return 0; // single node (or an all-zero metric)
        }
        let row_a = self.roundtrip_row(far0);
        let (far_a, ecc_a) = farthest(&row_a);
        let row_b = self.roundtrip_row(far_a);
        let (_, ecc_b) = farthest(&row_b);
        let mid = row_a
            .iter()
            .zip(&row_b)
            .map(|(&da, &db)| da.max(db))
            .enumerate()
            .min_by_key(|&(i, d)| (d, i))
            .map(|(i, _)| NodeId::from_index(i))
            .unwrap_or(NodeId(0));
        let (_, ecc_mid) = farthest(&self.roundtrip_row(mid));
        ecc0.min(ecc_a).min(ecc_b).min(ecc_mid).saturating_mul(2)
    }

    /// Stretch of a measured roundtrip length against `r(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or the pair is unreachable.
    fn roundtrip_stretch(&self, u: NodeId, v: NodeId, measured: Distance) -> f64 {
        assert_ne!(u, v, "roundtrip stretch undefined for identical endpoints");
        let r = self.roundtrip(u, v);
        assert!(r != INFINITY && r > 0, "pair ({u},{v}) unreachable");
        measured as f64 / r as f64
    }

    /// Verifies `measured ≤ bound_num/bound_den · r(u, v)` in exact integer
    /// arithmetic — how the test-suite asserts the paper's stretch bounds.
    fn within_stretch(
        &self,
        u: NodeId,
        v: NodeId,
        measured: Distance,
        bound_num: u64,
        bound_den: u64,
    ) -> bool {
        let r = self.roundtrip(u, v);
        if r == INFINITY {
            return false;
        }
        (measured as u128) * (bound_den as u128) <= (bound_num as u128) * (r as u128)
    }
}

/// Sources per [`DistanceOracle::prefetch_rows`] batch in
/// [`sweep_rows_prefetched`] (each source is two rows; lazy oracles clamp
/// their own batches to the cache capacity on top of this).
pub const PREFETCH_WINDOW: usize = 16;

/// Sweeps `sources` sequentially, prefetching each window's rows before
/// consuming it — the canonical loop for row-granular consumers (orders,
/// landmark extraction, cover balls) on oracles where
/// [`DistanceOracle::prefers_row_prefetch`] is true.  The oracle overlaps
/// the window's Dijkstras on its worker pool while `f` drains finished rows
/// on this thread; on a dense oracle the prefetch is a no-op and the loop
/// degenerates to a plain sequential sweep.
pub fn sweep_rows_prefetched<O, F>(m: &O, sources: &[NodeId], mut f: F)
where
    O: DistanceOracle + ?Sized,
    F: FnMut(NodeId),
{
    for window in sources.chunks(PREFETCH_WINDOW) {
        m.prefetch_rows(window);
        for &v in window {
            f(v);
        }
    }
}

/// Visits the roundtrip row of every node in `destinations`, in order,
/// prefetching each [`PREFETCH_WINDOW`]-sized window's rows before consuming
/// it — the batched-row lookup shared by every destination-grouped metric
/// consumer: the engine's verification plane flushes its per-worker
/// destination buckets through it, and the serve-summary stretch sweep
/// answers its strided sample with it.
///
/// On a lazy oracle each window's forward + reverse Dijkstras overlap on the
/// oracle's worker pool while `f` drains finished rows on this thread; on a
/// dense oracle the prefetch is a no-op and the loop degenerates to plain
/// row reads.  The total row cost is two Dijkstras per **distinct**
/// destination in the batch (modulo cache hits), never per consumer item —
/// which is what makes destination-grouped verification cheap under skew.
pub fn roundtrip_rows_batched<O, F>(m: &O, destinations: &[NodeId], mut f: F)
where
    O: DistanceOracle + ?Sized,
    F: FnMut(NodeId, &[Distance]),
{
    // One canonical prefetch-window loop: ride sweep_rows_prefetched so a
    // future change to the window policy applies to both sweeps.
    sweep_rows_prefetched(m, destinations, |d| f(d, &m.roundtrip_row(d)));
}

/// Visits the roundtrip rows of several shards' destination lists in **one**
/// shared prefetch-windowed sweep — the shard-aware sibling of
/// [`roundtrip_rows_batched`].  `shards[s]` is shard `s`'s destination list;
/// `f(s, d, row)` is called for every destination of every shard, shards in
/// slice order, destinations in per-shard order.  Prefetch windows span shard
/// boundaries, so a worker that owns several small shards still fills
/// [`PREFETCH_WINDOW`]-sized oracle batches instead of issuing one
/// under-filled batch per shard.
///
/// Row cost is identical to concatenating the lists into a single
/// [`roundtrip_rows_batched`] call: two Dijkstras per distinct destination
/// across all shards (modulo cache hits).  When destination lists are
/// shard-disjoint — as the engine's per-shard verification buckets are —
/// no row is ever fetched for more than one shard.
pub fn roundtrip_rows_sharded<O, F>(m: &O, shards: &[&[NodeId]], mut f: F)
where
    O: DistanceOracle + ?Sized,
    F: FnMut(usize, NodeId, &[Distance]),
{
    let tagged: Vec<(usize, NodeId)> = shards
        .iter()
        .enumerate()
        .flat_map(|(s, dests)| dests.iter().map(move |&d| (s, d)))
        .collect();
    let flat: Vec<NodeId> = tagged.iter().map(|&(_, d)| d).collect();
    let mut at = 0;
    sweep_rows_prefetched(m, &flat, |d| {
        let (shard, _) = tagged[at];
        at += 1;
        f(shard, d, &m.roundtrip_row(d));
    });
}

/// Blanket impl so `&O` and `&dyn DistanceOracle` satisfy oracle bounds too.
impl<O: DistanceOracle + ?Sized> DistanceOracle for &O {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        (**self).distance(u, v)
    }
    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        (**self).roundtrip(u, v)
    }
    fn row(&self, u: NodeId) -> Vec<Distance> {
        (**self).row(u)
    }
    fn rev_row(&self, u: NodeId) -> Vec<Distance> {
        (**self).rev_row(u)
    }
    fn roundtrip_row(&self, u: NodeId) -> Vec<Distance> {
        (**self).roundtrip_row(u)
    }
    fn is_strongly_connected(&self) -> bool {
        (**self).is_strongly_connected()
    }
    fn roundtrip_diameter_bound(&self) -> Distance {
        (**self).roundtrip_diameter_bound()
    }
    fn prefetch_rows(&self, sources: &[NodeId]) {
        (**self).prefetch_rows(sources)
    }
    fn prefers_row_prefetch(&self) -> bool {
        (**self).prefers_row_prefetch()
    }
}

impl DistanceOracle for DistanceMatrix {
    fn node_count(&self) -> usize {
        DistanceMatrix::node_count(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        DistanceMatrix::distance(self, u, v)
    }

    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        DistanceMatrix::roundtrip(self, u, v)
    }

    fn row(&self, u: NodeId) -> Vec<Distance> {
        self.row_slice(u).to_vec()
    }

    fn rev_row(&self, u: NodeId) -> Vec<Distance> {
        (0..self.node_count())
            .map(|v| DistanceMatrix::distance(self, NodeId::from_index(v), u))
            .collect()
    }

    fn is_strongly_connected(&self) -> bool {
        self.all_finite()
    }

    fn roundtrip_diameter_bound(&self) -> Distance {
        // The matrix already holds everything: return the exact diameter.
        self.roundtrip_diameter()
    }
}

/// Usage counters of a caching oracle, exposed for the memory-proxy
/// accounting of the `large_sparse` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Dijkstra runs performed (each materialises one row, forward or
    /// reverse, counted over the oracle's lifetime — recomputations after an
    /// eviction count again).
    pub rows_computed: usize,
    /// Row requests answered from the cache.
    pub cache_hits: usize,
    /// Largest number of rows resident in the cache at any moment — the peak
    /// memory proxy (each resident row is `n` distances).
    pub peak_resident_rows: usize,
    /// Rows currently resident.
    pub resident_rows: usize,
    /// Rows evicted by the LRU policy over the oracle's lifetime (always 0
    /// for unbounded caches).
    pub evictions: usize,
}

/// Key of one cached row: direction + source.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum RowKey {
    Fwd(u32),
    Rev(u32),
}

/// The shared caching machinery of the two lazy oracles.
struct RowCache {
    /// Resident rows; the `u64` is a monotonically increasing use stamp
    /// driving LRU eviction.
    rows: HashMap<RowKey, (Arc<Vec<Distance>>, u64)>,
    clock: u64,
    /// Maximum resident rows; `usize::MAX` disables eviction.
    capacity: usize,
    /// Rows evicted over the cache's lifetime.
    evictions: usize,
}

impl RowCache {
    fn new(capacity: usize) -> Self {
        RowCache { rows: HashMap::new(), clock: 0, capacity, evictions: 0 }
    }

    fn get(&mut self, key: RowKey) -> Option<Arc<Vec<Distance>>> {
        self.clock += 1;
        let clock = self.clock;
        self.rows.get_mut(&key).map(|(row, stamp)| {
            *stamp = clock;
            Arc::clone(row)
        })
    }

    /// Inserts `row`, returning `true` when the insertion evicted a victim.
    fn insert(&mut self, key: RowKey, row: Arc<Vec<Distance>>) -> bool {
        self.clock += 1;
        self.rows.insert(key, (row, self.clock));
        if self.rows.len() > self.capacity {
            // Evict the least recently used row. A linear scan is fine: it is
            // dwarfed by the Dijkstra that preceded every insertion.
            if let Some(&victim) =
                self.rows.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k)
            {
                self.rows.remove(&victim);
                self.evictions += 1;
                return true;
            }
        }
        false
    }
}

/// Registry handles of one telemetry-scoped oracle, created once at scope
/// assignment so the hot path never touches the registry's name maps.
#[derive(Clone)]
struct OracleTelemetry {
    rows_computed: Counter,
    cache_hits: Counter,
    evictions: Counter,
    prefetch_batches: Counter,
    prefetch_rows: Counter,
    prefetch_batch_rows: Gauge,
}

impl OracleTelemetry {
    /// Handles under the `oracle.<scope>.*` vocabulary.
    fn for_scope(scope: &str) -> Self {
        OracleTelemetry {
            rows_computed: rtr_telemetry::counter(&format!("oracle.{scope}.rows_computed")),
            cache_hits: rtr_telemetry::counter(&format!("oracle.{scope}.cache_hits")),
            evictions: rtr_telemetry::counter(&format!("oracle.{scope}.evictions")),
            prefetch_batches: rtr_telemetry::counter(&format!("oracle.{scope}.prefetch_batches")),
            prefetch_rows: rtr_telemetry::counter(&format!("oracle.{scope}.prefetch_rows")),
            prefetch_batch_rows: rtr_telemetry::gauge(&format!(
                "oracle.{scope}.prefetch_batch_rows"
            )),
        }
    }
}

/// On-demand shortest-path oracle with a bounded LRU row cache.
///
/// Designed for large sparse graphs where the dense `n²` matrix does not fit:
/// no work happens at construction, each row is a single-source Dijkstra on
/// first touch, and at most `capacity` rows (forward and reverse counted
/// separately) stay resident.  The docs at the top of `oracle.rs` spell out
/// the trade-off against [`DistanceMatrix`] and [`CachedSubsetOracle`].
pub struct LazyDijkstraOracle<'g> {
    g: &'g DiGraph,
    cache: Mutex<RowCache>,
    rows_computed: AtomicUsize,
    cache_hits: AtomicUsize,
    peak_resident: AtomicUsize,
    telemetry: Option<OracleTelemetry>,
}

impl fmt::Debug for LazyDijkstraOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyDijkstraOracle")
            .field("n", &self.g.node_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'g> LazyDijkstraOracle<'g> {
    /// Creates the oracle over `g` keeping at most `capacity` rows resident.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(g: &'g DiGraph, capacity: usize) -> Self {
        assert!(capacity > 0, "row cache needs capacity >= 1");
        LazyDijkstraOracle {
            g,
            cache: Mutex::new(RowCache::new(capacity)),
            rows_computed: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            telemetry: None,
        }
    }

    /// Publishes this oracle's counters to the global telemetry registry
    /// under the `oracle.<scope>.*` vocabulary (`rows_computed`,
    /// `cache_hits`, `evictions`, `prefetch_batches`, `prefetch_rows`, plus
    /// the `prefetch_batch_rows` occupancy gauge).  Counting happens at the
    /// source — the same increments that feed [`stats`](Self::stats) — so an
    /// exported telemetry counter can never drift from the oracle's own
    /// accounting.
    pub fn with_telemetry_scope(mut self, scope: &str) -> Self {
        self.telemetry = Some(OracleTelemetry::for_scope(scope));
        self
    }

    /// Creates the oracle with a default capacity of `max(64, n/16)` rows —
    /// ~6% of the dense matrix's memory at large `n`.
    pub fn with_default_capacity(g: &'g DiGraph) -> Self {
        Self::new(g, (g.node_count() / 16).max(64))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DiGraph {
        self.g
    }

    /// Rebases a pre-fault oracle onto the mutated graph `g`: every cached
    /// row that `invalidation` proves still exact is carried over (as a
    /// shared `Arc`, no copy), dirty rows are dropped, and the usage
    /// counters restart at zero — so [`stats`](Self::stats) afterwards
    /// measures exactly the *incremental* row cost of post-fault repair and
    /// verification.
    ///
    /// The capacity (and the absence of a telemetry scope — re-attach one
    /// with [`with_telemetry_scope`](Self::with_telemetry_scope) if wanted)
    /// is inherited from `old`.
    ///
    /// # Panics
    ///
    /// Panics when `old`, `g` and `invalidation` disagree on the node count.
    pub fn rebased(
        old: &LazyDijkstraOracle<'_>,
        g: &'g DiGraph,
        invalidation: &RowInvalidation,
    ) -> LazyDijkstraOracle<'g> {
        assert_eq!(old.g.node_count(), g.node_count(), "rebasing across different node counts");
        assert_eq!(invalidation.node_count(), g.node_count(), "invalidation node count mismatch");
        let old_cache = old.cache.lock();
        let new = LazyDijkstraOracle::new(g, old_cache.capacity);
        let mut carried = 0usize;
        {
            let mut cache = new.cache.lock();
            for (&key, (row, _)) in old_cache.rows.iter() {
                let clean = match key {
                    RowKey::Fwd(s) => !invalidation.is_fwd_dirty(NodeId(s)),
                    RowKey::Rev(s) => !invalidation.is_rev_dirty(NodeId(s)),
                };
                if clean {
                    cache.insert(key, Arc::clone(row));
                    carried += 1;
                }
            }
        }
        new.peak_resident.store(carried, Ordering::Relaxed);
        new
    }

    /// Current usage counters.
    pub fn stats(&self) -> OracleStats {
        let (resident_rows, evictions) = {
            let cache = self.cache.lock();
            (cache.rows.len(), cache.evictions)
        };
        OracleStats {
            rows_computed: self.rows_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            peak_resident_rows: self.peak_resident.load(Ordering::Relaxed),
            resident_rows,
            evictions,
        }
    }

    /// Row requests answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Row requests (or prefetches on behalf of an upcoming sweep) that had
    /// to run a Dijkstra — one miss per row ever computed, recomputations
    /// after an eviction included.
    pub fn cache_misses(&self) -> usize {
        self.rows_computed.load(Ordering::Relaxed)
    }

    /// Rows evicted by the LRU policy over the oracle's lifetime.
    pub fn evictions(&self) -> usize {
        self.cache.lock().evictions
    }

    /// Fraction of row accesses served from the cache:
    /// `hits / (hits + misses)`, or 0 when nothing was accessed yet.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits() as f64;
        let total = hits + self.cache_misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    fn fetch(&self, key: RowKey) -> Arc<Vec<Distance>> {
        if let Some(row) = self.cache.lock().get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.cache_hits.inc();
            }
            return row;
        }
        // Compute outside the lock so concurrent misses on different rows
        // overlap; a racing duplicate computation is benign (same result).
        let row = Arc::new(compute_row(self.g, key));
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        let (resident, evicted) = {
            let mut cache = self.cache.lock();
            let evicted = cache.insert(key, Arc::clone(&row));
            (cache.rows.len(), evicted)
        };
        self.peak_resident.fetch_max(resident, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.rows_computed.inc();
            if evicted {
                t.evictions.inc();
            }
        }
        row
    }
}

fn compute_row(g: &DiGraph, key: RowKey) -> Vec<Distance> {
    match key {
        RowKey::Fwd(s) => dijkstra(g, NodeId(s)).dist,
        RowKey::Rev(s) => dijkstra_reverse(g, NodeId(s)).dist,
    }
}

impl DistanceOracle for LazyDijkstraOracle<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.fetch(RowKey::Fwd(u.0))[v.index()]
    }

    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        // Both terms come from rows of `u`, so a source-by-source sweep stays
        // cache-resident regardless of `v`.
        let out = self.fetch(RowKey::Fwd(u.0))[v.index()];
        let back = self.fetch(RowKey::Rev(u.0))[v.index()];
        saturating_dist_add(out, back)
    }

    fn row(&self, u: NodeId) -> Vec<Distance> {
        self.fetch(RowKey::Fwd(u.0)).as_ref().clone()
    }

    fn rev_row(&self, u: NodeId) -> Vec<Distance> {
        self.fetch(RowKey::Rev(u.0)).as_ref().clone()
    }

    /// Computes the missing forward + reverse rows of `sources` on a worker
    /// pool and installs them in the cache.  The batch of *missing* keys is
    /// clamped to the cache capacity — a larger batch would evict its own
    /// rows before the sweep reads them (already-cached keys don't count
    /// against the clamp, so a warm prefix never starves the cold tail).
    fn prefetch_rows(&self, sources: &[NodeId]) {
        let keys: Vec<RowKey> = {
            let cache = self.cache.lock();
            sources
                .iter()
                .flat_map(|&s| [RowKey::Fwd(s.0), RowKey::Rev(s.0)])
                .filter(|k| !cache.rows.contains_key(k))
                .take(cache.capacity.max(1))
                .collect()
        };
        // Prefetch-window occupancy: how many cold rows each batch actually
        // carried (an all-hit window shows up as an empty batch).
        if let Some(t) = &self.telemetry {
            t.prefetch_batches.inc();
            t.prefetch_rows.add(keys.len() as u64);
            t.prefetch_batch_rows.set(keys.len() as u64);
        }
        if keys.is_empty() {
            return;
        }
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(keys.len());
        let next = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                let (next, keys) = (&next, &keys);
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= keys.len() {
                        break;
                    }
                    let key = keys[i];
                    let row = Arc::new(compute_row(self.g, key));
                    self.rows_computed.fetch_add(1, Ordering::Relaxed);
                    let (resident, evicted) = {
                        let mut cache = self.cache.lock();
                        let evicted = cache.insert(key, row);
                        (cache.rows.len(), evicted)
                    };
                    self.peak_resident.fetch_max(resident, Ordering::Relaxed);
                    if let Some(t) = &self.telemetry {
                        t.rows_computed.inc();
                        if evicted {
                            t.evictions.inc();
                        }
                    }
                });
            }
        })
        .expect("prefetch worker panicked");
    }

    fn prefers_row_prefetch(&self) -> bool {
        true
    }
}

/// Memoising oracle that materialises only the rows actually touched, and
/// keeps them for the oracle's lifetime (no eviction).
///
/// The right choice for constructions that revisit a *subset* of sources many
/// times — e.g. a cover hierarchy repeatedly measuring the same seeds — where
/// LRU eviction would thrash and the dense matrix would waste the untouched
/// rows.  [`materialised_rows`](Self::materialised_rows) reports how much of
/// the `n²` table was ever needed.
pub struct CachedSubsetOracle<'g> {
    inner: LazyDijkstraOracle<'g>,
}

impl fmt::Debug for CachedSubsetOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachedSubsetOracle")
            .field("n", &self.inner.g.node_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'g> CachedSubsetOracle<'g> {
    /// Creates the oracle over `g`.
    pub fn new(g: &'g DiGraph) -> Self {
        CachedSubsetOracle { inner: LazyDijkstraOracle::new(g, usize::MAX) }
    }

    /// Publishes this oracle's counters under `oracle.<scope>.*` — see
    /// [`LazyDijkstraOracle::with_telemetry_scope`].
    pub fn with_telemetry_scope(mut self, scope: &str) -> Self {
        self.inner = self.inner.with_telemetry_scope(scope);
        self
    }

    /// Rebases a pre-fault subset oracle onto the mutated graph `g`,
    /// carrying every row `invalidation` proves clean and restarting the
    /// counters at zero — see [`LazyDijkstraOracle::rebased`]. With no
    /// eviction, [`materialised_rows`](Self::materialised_rows) afterwards
    /// is the exact number of rows the post-fault phase recomputed.
    ///
    /// # Panics
    ///
    /// Panics when `old`, `g` and `invalidation` disagree on the node count.
    pub fn rebased(
        old: &CachedSubsetOracle<'_>,
        g: &'g DiGraph,
        invalidation: &RowInvalidation,
    ) -> CachedSubsetOracle<'g> {
        CachedSubsetOracle { inner: LazyDijkstraOracle::rebased(&old.inner, g, invalidation) }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DiGraph {
        self.inner.graph()
    }

    /// Number of rows (forward + reverse) ever materialised.
    pub fn materialised_rows(&self) -> usize {
        self.inner.stats().rows_computed
    }

    /// Current usage counters.
    pub fn stats(&self) -> OracleStats {
        self.inner.stats()
    }
}

impl DistanceOracle for CachedSubsetOracle<'_> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.inner.distance(u, v)
    }

    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        self.inner.roundtrip(u, v)
    }

    fn row(&self, u: NodeId) -> Vec<Distance> {
        self.inner.row(u)
    }

    fn rev_row(&self, u: NodeId) -> Vec<Distance> {
        self.inner.rev_row(u)
    }

    fn prefetch_rows(&self, sources: &[NodeId]) {
        self.inner.prefetch_rows(sources)
    }

    fn prefers_row_prefetch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{strongly_connected_gnp, Family};

    /// Every oracle implementation must agree with the dense matrix on every
    /// pair, across all generator families and several seeds.
    #[test]
    fn oracles_agree_with_dense_matrix_across_families() {
        for family in Family::ALL {
            for seed in [1u64, 7, 23] {
                let g = family.generate(28, seed).unwrap();
                let dense = DistanceMatrix::build(&g);
                let lazy = LazyDijkstraOracle::new(&g, 4);
                let subset = CachedSubsetOracle::new(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        let d = DistanceOracle::distance(&dense, u, v);
                        assert_eq!(lazy.distance(u, v), d, "{} seed {seed}", family.name());
                        assert_eq!(subset.distance(u, v), d, "{} seed {seed}", family.name());
                        let r = DistanceOracle::roundtrip(&dense, u, v);
                        assert_eq!(lazy.roundtrip(u, v), r);
                        assert_eq!(subset.roundtrip(u, v), r);
                    }
                }
            }
        }
    }

    #[test]
    fn rows_agree_with_point_queries() {
        let g = strongly_connected_gnp(30, 0.12, 5).unwrap();
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 8);
        for u in g.nodes() {
            let fwd = lazy.row(u);
            let rev = lazy.rev_row(u);
            let rt = lazy.roundtrip_row(u);
            for v in g.nodes() {
                assert_eq!(fwd[v.index()], dense.distance(u, v));
                assert_eq!(rev[v.index()], dense.distance(v, u));
                assert_eq!(rt[v.index()], dense.roundtrip(u, v));
            }
        }
    }

    #[test]
    fn lru_capacity_bounds_resident_rows() {
        let g = strongly_connected_gnp(40, 0.1, 9).unwrap();
        let cap = 6;
        let lazy = LazyDijkstraOracle::new(&g, cap);
        for u in g.nodes() {
            let _ = lazy.roundtrip_row(u);
        }
        let stats = lazy.stats();
        assert!(
            stats.peak_resident_rows <= cap + 1,
            "peak {} > cap {cap}",
            stats.peak_resident_rows
        );
        assert!(stats.resident_rows <= cap + 1);
        // Every source needed a forward and a reverse row.
        assert!(stats.rows_computed >= 2 * g.node_count());
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let g = strongly_connected_gnp(20, 0.2, 3).unwrap();
        let lazy = LazyDijkstraOracle::new(&g, 64);
        let u = NodeId(4);
        let a = lazy.row(u);
        let before = lazy.stats().rows_computed;
        let b = lazy.row(u);
        assert_eq!(a, b);
        assert_eq!(lazy.stats().rows_computed, before, "second access recomputed the row");
        assert!(lazy.stats().cache_hits >= 1);
    }

    #[test]
    fn subset_oracle_materialises_only_touched_rows() {
        let g = strongly_connected_gnp(50, 0.08, 11).unwrap();
        let oracle = CachedSubsetOracle::new(&g);
        let _ = oracle.row(NodeId(0));
        let _ = oracle.row(NodeId(1));
        let _ = oracle.rev_row(NodeId(0));
        assert_eq!(oracle.materialised_rows(), 3);
        // Re-touching costs nothing.
        let _ = oracle.row(NodeId(0));
        assert_eq!(oracle.materialised_rows(), 3);
    }

    #[test]
    fn prefetch_fills_the_cache_and_never_changes_answers() {
        let g = strongly_connected_gnp(36, 0.1, 13).unwrap();
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 16);
        assert!(lazy.prefers_row_prefetch());
        assert!(!DistanceOracle::prefers_row_prefetch(&dense));
        let sources: Vec<NodeId> = g.nodes().take(6).collect();
        lazy.prefetch_rows(&sources);
        let computed = lazy.stats().rows_computed;
        assert_eq!(computed, 12, "six sources need six forward + six reverse rows");
        for &u in &sources {
            let rt = lazy.roundtrip_row(u);
            for v in g.nodes() {
                assert_eq!(rt[v.index()], dense.roundtrip(u, v));
            }
        }
        assert_eq!(lazy.stats().rows_computed, computed, "sweep after prefetch missed the cache");

        // Oversized batches are clamped to the capacity instead of evicting
        // their own rows before the sweep reads them.
        let all: Vec<NodeId> = g.nodes().collect();
        let small = LazyDijkstraOracle::new(&g, 4);
        small.prefetch_rows(&all);
        let stats = small.stats();
        assert!(stats.peak_resident_rows <= 5, "peak {}", stats.peak_resident_rows);
        assert!(stats.rows_computed <= 4, "clamp ignored: {} rows", stats.rows_computed);
    }

    #[test]
    fn batched_roundtrip_rows_agree_with_point_queries_on_every_oracle() {
        let g = strongly_connected_gnp(30, 0.12, 17).unwrap();
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 6);
        let subset = CachedSubsetOracle::new(&g);
        // Duplicates and arbitrary order are allowed: callers pass whatever
        // destination grouping their buckets produced.
        let dests: Vec<NodeId> = [3u32, 0, 29, 3, 17, 17, 8].iter().map(|&i| NodeId(i)).collect();
        for oracle in [&dense as &dyn DistanceOracle, &lazy, &subset] {
            let mut seen = Vec::new();
            roundtrip_rows_batched(oracle, &dests, |d, row| {
                assert_eq!(row.len(), 30);
                for v in g.nodes() {
                    assert_eq!(row[v.index()], dense.roundtrip(d, v));
                }
                seen.push(d);
            });
            assert_eq!(seen, dests);
        }
        // The lazy oracle answered from whole rows, not per-pair Dijkstras.
        assert!(lazy.stats().rows_computed <= 2 * dests.len());
    }

    #[test]
    fn sharded_roundtrip_rows_match_per_shard_batches_and_share_windows() {
        let g = strongly_connected_gnp(30, 0.12, 19).unwrap();
        let dense = DistanceMatrix::build(&g);
        // Three disjoint shard lists plus one deliberately empty shard — the
        // shape the engine's per-shard verification buckets hand over.
        let a: Vec<NodeId> = [2u32, 7, 11].iter().map(|&i| NodeId(i)).collect();
        let b: Vec<NodeId> = [0u32, 29].iter().map(|&i| NodeId(i)).collect();
        let c: Vec<NodeId> = [5u32, 6, 8, 9].iter().map(|&i| NodeId(i)).collect();
        let shards: Vec<&[NodeId]> = vec![&a, &[], &b, &c];
        let lazy = LazyDijkstraOracle::new(&g, 30);
        let mut seen: Vec<(usize, NodeId)> = Vec::new();
        roundtrip_rows_sharded(&lazy, &shards, |s, d, row| {
            for v in g.nodes() {
                assert_eq!(row[v.index()], dense.roundtrip(d, v));
            }
            seen.push((s, d));
        });
        let expected: Vec<(usize, NodeId)> = shards
            .iter()
            .enumerate()
            .flat_map(|(s, dests)| dests.iter().map(move |&d| (s, d)))
            .collect();
        assert_eq!(seen, expected, "shards in order, destinations in per-shard order");
        // One shared sweep: 9 distinct destinations cost exactly 2 rows each
        // even though the per-shard lists are all smaller than a window.
        assert_eq!(lazy.stats().rows_computed, 2 * 9);
    }

    #[test]
    fn accessors_and_telemetry_count_at_the_source() {
        let g = strongly_connected_gnp(30, 0.12, 21).unwrap();
        let lazy = LazyDijkstraOracle::new(&g, 4).with_telemetry_scope("test_oracle");
        for u in g.nodes() {
            let _ = lazy.roundtrip_row(u);
        }
        // The last source's rows are still resident: guaranteed hits.
        let _ = lazy.roundtrip_row(NodeId(29));
        let stats = lazy.stats();
        assert_eq!(lazy.cache_misses(), stats.rows_computed);
        assert_eq!(lazy.cache_hits(), stats.cache_hits);
        assert_eq!(lazy.evictions(), stats.evictions);
        assert!(stats.evictions > 0, "a 4-row cache sweeping 60 rows must evict");
        assert!(stats.cache_hits >= 2);
        assert!(lazy.hit_rate() > 0.0 && lazy.hit_rate() < 1.0);
        // The telemetry counters are incremented by the same code paths that
        // feed stats(), so they can never drift.
        let reg = rtr_telemetry::registry();
        assert_eq!(
            reg.counter_value("oracle.test_oracle.rows_computed"),
            stats.rows_computed as u64
        );
        assert_eq!(reg.counter_value("oracle.test_oracle.cache_hits"), stats.cache_hits as u64);
        assert_eq!(reg.counter_value("oracle.test_oracle.evictions"), stats.evictions as u64);
    }

    #[test]
    fn strong_connectivity_check_agrees_with_graph() {
        let g = strongly_connected_gnp(25, 0.1, 2).unwrap();
        let lazy = LazyDijkstraOracle::with_default_capacity(&g);
        assert!(lazy.is_strongly_connected());

        let mut b = rtr_graph::DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        let g = b.build().unwrap();
        assert!(!LazyDijkstraOracle::with_default_capacity(&g).is_strongly_connected());
    }

    #[test]
    fn diameter_bound_is_a_true_upper_bound() {
        for seed in [1u64, 4, 9] {
            let g = strongly_connected_gnp(32, 0.1, seed).unwrap();
            let dense = DistanceMatrix::build(&g);
            let lazy = LazyDijkstraOracle::with_default_capacity(&g);
            let exact = dense.roundtrip_diameter();
            assert!(lazy.roundtrip_diameter_bound() >= exact);
            assert!(lazy.roundtrip_diameter_bound() <= exact.saturating_mul(2));
            assert_eq!(DistanceOracle::roundtrip_diameter_bound(&dense), exact);
        }
    }

    #[test]
    fn double_sweep_bound_never_worse_than_single_probe() {
        // The old estimate was 2·ecc(0); the sweep takes a min over probes
        // that includes node 0, so it can only tighten.
        let mut improved = 0usize;
        for seed in 0..12u64 {
            for family in Family::ALL {
                let g = family.generate(40, seed).unwrap();
                let dense = DistanceMatrix::build(&g);
                let lazy = LazyDijkstraOracle::with_default_capacity(&g);
                let single_probe =
                    lazy.roundtrip_row(NodeId(0)).into_iter().max().unwrap().saturating_mul(2);
                let sweep = lazy.roundtrip_diameter_bound();
                assert!(sweep <= single_probe, "{} seed {seed}", family.name());
                assert!(sweep >= dense.roundtrip_diameter(), "{} seed {seed}", family.name());
                if sweep.next_power_of_two() < single_probe.next_power_of_two() {
                    improved += 1;
                }
            }
        }
        // The point of the sweep: on a healthy fraction of instances the
        // power-of-two ceiling (= cover level count) actually drops.
        assert!(improved > 0, "double sweep never tightened the level count");
    }
}
