//! The broadcast row-sweep pipeline: ONE pass over the oracle's forward and
//! reverse rows, fanned out to every registered consumer.
//!
//! Before this module existed, each row-granular construction — the roundtrip
//! orders, landmark extraction, cover ball collection, the polynomial scheme's
//! dictionary pass — swept the metric independently, so a full scheme-suite
//! build fetched every source's rows about five times over (~10n Dijkstras on
//! a lazy oracle).  [`broadcast_rows`] inverts that: the *sweep* is the shared
//! resource and the constructions are [`RowSweepConsumer`]s registered on it.
//! Each source is visited exactly once; its forward row, reverse row and
//! roundtrip row are materialised once and every consumer reads the same
//! borrowed slices.
//!
//! The sweep respects [`DistanceOracle::prefers_row_prefetch`]:
//!
//! * **lazy oracles** are swept sequentially over
//!   [`PREFETCH_WINDOW`](crate::PREFETCH_WINDOW)-sized windows — the oracle
//!   overlaps the window's
//!   Dijkstras on its worker pool while this thread drains finished rows into
//!   the consumers (the same loop [`sweep_rows_prefetched`] runs, now
//!   amortised over all consumers);
//! * **dense oracles** have every row already, so the sweep fans the sources
//!   out over worker threads that call every consumer for their own disjoint
//!   source blocks.
//!
//! Consumers therefore must accept concurrent `consume` calls for *distinct*
//! sources.  The intended pattern is one independent output slot per source
//! ([`SweepSlots`]) plus order-independent aggregates; under that discipline
//! the results are bit-identical across oracles and thread counts, which the
//! suite-level property tests assert.
//!
//! [`sweep_rows_prefetched`]: crate::sweep_rows_prefetched

use crate::oracle::DistanceOracle;
use parking_lot::Mutex;
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{Distance, NodeId};
use std::fmt;

/// The three row views of one source, borrowed for the duration of a
/// [`RowSweepConsumer::consume`] call.
#[derive(Debug)]
pub struct SweepRows<'a> {
    /// Forward row: `fwd[v] = d(source, v)`.
    pub fwd: &'a [Distance],
    /// Reverse row: `rev[v] = d(v, source)`.
    pub rev: &'a [Distance],
    /// Roundtrip row: `roundtrip[v] = r(source, v)` (the saturating sum of
    /// the other two, precomputed once for all consumers).
    pub roundtrip: &'a [Distance],
}

/// A construction that consumes one source's rows at a time.
///
/// [`broadcast_rows`] calls [`consume`](Self::consume) exactly once per
/// source.  On dense oracles distinct sources are processed concurrently from
/// worker threads, so implementations take `&self` and must route per-source
/// output through independently writable slots (see [`SweepSlots`]) and
/// shared aggregates through order-independent reductions (max, sum, …).
pub trait RowSweepConsumer: Sync {
    /// Processes the rows of `source`.  Must not assume any particular call
    /// order across sources.
    fn consume(&self, source: NodeId, rows: &SweepRows<'_>);
}

/// Runs one shared sweep over every source of `m`, feeding each source's rows
/// to every consumer.
///
/// Equivalent to running each consumer's private sweep back to back — the
/// rows are deterministic, every consumer sees all of them — but the oracle
/// materialises each row **once** instead of once per consumer, which is the
/// difference between ~10n and ~4n Dijkstras for a full sparse-suite build.
pub fn broadcast_rows<O: DistanceOracle + ?Sized>(m: &O, consumers: &[&dyn RowSweepConsumer]) {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    broadcast_rows_with_threads(m, consumers, threads);
}

/// [`broadcast_rows`] with an explicit worker count for the dense
/// (block-parallel) path — the lazy path is sequential by design and ignores
/// `threads`.  Exposed so determinism tests can pin the thread count.
pub fn broadcast_rows_with_threads<O: DistanceOracle + ?Sized>(
    m: &O,
    consumers: &[&dyn RowSweepConsumer],
    threads: usize,
) {
    let n = m.node_count();
    if n == 0 || consumers.is_empty() {
        return;
    }
    let _span = rtr_telemetry::span!("metric.broadcast_rows", format_args!("n={n}"));
    let deliver = |v: NodeId| {
        let fwd = m.row(v);
        let rev = m.rev_row(v);
        let roundtrip: Vec<Distance> =
            fwd.iter().zip(&rev).map(|(&a, &b)| saturating_dist_add(a, b)).collect();
        let rows = SweepRows { fwd: &fwd, rev: &rev, roundtrip: &roundtrip };
        for consumer in consumers {
            consumer.consume(v, &rows);
        }
    };
    if m.prefers_row_prefetch() {
        // Lazy oracle: the per-source cost is the two Dijkstras behind the
        // row miss.  Sweep sequentially over prefetch windows so the oracle
        // overlaps the Dijkstras on its pool while this thread consumes.
        let sources: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        crate::oracle::sweep_rows_prefetched(m, &sources, deliver);
        return;
    }
    // Dense oracle: rows are free, parallelise the consumption over workers
    // owning disjoint source blocks.
    let threads = threads.clamp(1, n);
    if threads == 1 {
        for v in (0..n).map(NodeId::from_index) {
            deliver(v);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let result = crossbeam::scope(|scope| {
        for start in (0..n).step_by(chunk) {
            let deliver = &deliver;
            scope.spawn(move |_| {
                for vi in start..(start + chunk).min(n) {
                    deliver(NodeId::from_index(vi));
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Per-source output slots, independently writable from concurrent
/// [`RowSweepConsumer::consume`] calls.
///
/// One mutex per slot: sweeps write each slot exactly once from whichever
/// worker owns the source, so the locks are never contended — they exist to
/// keep the consumers inside safe Rust (the whole workspace forbids
/// `unsafe`).
pub struct SweepSlots<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> SweepSlots<T> {
    /// Creates `n` empty slots.
    pub fn new(n: usize) -> Self {
        SweepSlots { slots: (0..n).map(|_| Mutex::new(None)).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Fills slot `index` (intended to be called once per slot).
    pub fn put(&self, index: usize, value: T) {
        *self.slots[index].lock() = Some(value);
    }

    /// Consumes the slots into a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if any slot was never filled — a sweep that skipped a source is
    /// a bug, not a recoverable condition.
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| panic!("sweep never filled slot {i}"))
            })
            .collect()
    }
}

impl<T> fmt::Debug for SweepSlots<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepSlots").field("len", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, LazyDijkstraOracle, PREFETCH_WINDOW};
    use rtr_graph::generators::strongly_connected_gnp;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Records every row it sees; also counts calls.
    struct Recorder {
        slots: SweepSlots<(Vec<Distance>, Vec<Distance>, Vec<Distance>)>,
        calls: AtomicUsize,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder { slots: SweepSlots::new(n), calls: AtomicUsize::new(0) }
        }
    }

    impl RowSweepConsumer for Recorder {
        fn consume(&self, source: NodeId, rows: &SweepRows<'_>) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.slots.put(
                source.index(),
                (rows.fwd.to_vec(), rows.rev.to_vec(), rows.roundtrip.to_vec()),
            );
        }
    }

    #[test]
    fn every_consumer_sees_every_source_once_with_correct_rows() {
        let g = strongly_connected_gnp(30, 0.12, 3).unwrap();
        let dense = DistanceMatrix::build(&g);
        let a = Recorder::new(30);
        let b = Recorder::new(30);
        broadcast_rows(&dense, &[&a, &b]);
        for rec in [a, b] {
            assert_eq!(rec.calls.load(Ordering::Relaxed), 30);
            let rows = rec.slots.into_vec();
            for (vi, (fwd, rev, rt)) in rows.iter().enumerate() {
                let v = NodeId::from_index(vi);
                for w in g.nodes() {
                    assert_eq!(fwd[w.index()], dense.distance(v, w));
                    assert_eq!(rev[w.index()], dense.distance(w, v));
                    assert_eq!(rt[w.index()], dense.roundtrip(v, w));
                }
            }
        }
    }

    #[test]
    fn lazy_sweep_computes_each_row_once_and_matches_dense() {
        let g = strongly_connected_gnp(40, 0.1, 7).unwrap();
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 2 * PREFETCH_WINDOW + 4);
        let a = Recorder::new(40);
        let b = Recorder::new(40);
        broadcast_rows(&lazy, &[&a, &b]);
        // Two consumers, one sweep: every source still costs exactly one
        // forward + one reverse Dijkstra.
        assert_eq!(lazy.stats().rows_computed, 80);
        let rows_a = a.slots.into_vec();
        let rows_b = b.slots.into_vec();
        for vi in 0..40 {
            assert_eq!(rows_a[vi], rows_b[vi]);
            let v = NodeId::from_index(vi);
            for w in g.nodes() {
                assert_eq!(rows_a[vi].2[w.index()], dense.roundtrip(v, w));
            }
        }
    }

    #[test]
    fn dense_sweep_is_thread_count_invariant() {
        let g = strongly_connected_gnp(33, 0.15, 11).unwrap();
        let dense = DistanceMatrix::build(&g);
        let reference = {
            let r = Recorder::new(33);
            broadcast_rows_with_threads(&dense, &[&r], 1);
            r.slots.into_vec()
        };
        for threads in [2usize, 5, 64] {
            let r = Recorder::new(33);
            broadcast_rows_with_threads(&dense, &[&r], threads);
            assert_eq!(r.slots.into_vec(), reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_consumer_list_is_a_noop() {
        let g = strongly_connected_gnp(12, 0.3, 1).unwrap();
        let lazy = LazyDijkstraOracle::new(&g, 4);
        broadcast_rows(&lazy, &[]);
        assert_eq!(lazy.stats().rows_computed, 0, "a consumer-less sweep touched the oracle");
    }

    #[test]
    #[should_panic(expected = "never filled slot")]
    fn unfilled_slots_are_detected() {
        let slots: SweepSlots<u32> = SweepSlots::new(3);
        slots.put(0, 7);
        slots.put(2, 9);
        let _ = slots.into_vec();
    }
}
