//! All-pairs distance matrix and roundtrip distances.

use rtr_graph::algo::dijkstra::dijkstra;
use rtr_graph::types::saturating_dist_add;
use rtr_graph::{DiGraph, Distance, NodeId, INFINITY};

/// Dense all-pairs shortest-path distances for a graph, with roundtrip
/// helpers.
///
/// Construction runs one forward Dijkstra per source, distributed over worker
/// threads. Each worker owns a disjoint block of matrix rows obtained through
/// `chunks_mut`, so the build is lock-free: no worker ever touches another
/// worker's rows, and the result is identical for any thread count. For graph
/// sizes up to a few thousand nodes the dense `n²` representation is the
/// right trade-off: every later stage (orders, neighborhoods, covers, scheme
/// construction, stretch accounting) performs millions of random distance
/// lookups. Beyond that, use [`crate::LazyDijkstraOracle`] — every consumer
/// is generic over [`crate::DistanceOracle`].
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n`: `dist[u * n + v] = d(u, v)`.
    dist: Vec<Distance>,
}

impl DistanceMatrix {
    /// Builds the matrix with one Dijkstra per source, in parallel.
    pub fn build(g: &DiGraph) -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self::build_with_threads(g, threads)
    }

    /// Builds the matrix using at most `threads` worker threads.
    ///
    /// Rows are handed to workers as contiguous `chunks_mut` blocks — each
    /// worker writes only rows it exclusively owns, so no synchronisation is
    /// needed and single- and multi-threaded builds are bit-for-bit
    /// identical.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn build_with_threads(g: &DiGraph, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let n = g.node_count();
        if n == 0 {
            return DistanceMatrix { n, dist: Vec::new() };
        }
        let mut dist = vec![INFINITY; n * n];
        let threads = threads.min(n);
        let rows_per_chunk = n.div_ceil(threads);

        crossbeam::scope(|scope| {
            for (chunk_index, chunk) in dist.chunks_mut(rows_per_chunk * n).enumerate() {
                scope.spawn(move |_| {
                    for (offset, row) in chunk.chunks_mut(n).enumerate() {
                        let s = chunk_index * rows_per_chunk + offset;
                        let tree = dijkstra(g, NodeId::from_index(s));
                        row.copy_from_slice(&tree.dist);
                    }
                });
            }
        })
        .expect("distance-matrix worker panicked");

        DistanceMatrix { n, dist }
    }

    /// The forward row `d(u, ·)` as a borrowed slice (the zero-copy
    /// counterpart of [`crate::DistanceOracle::row`]).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn row_slice(&self, u: NodeId) -> &[Distance] {
        &self.dist[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// One-way distance `d(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Roundtrip distance `r(u, v) = d(u, v) + d(v, u)` (paper §1.1).
    #[inline]
    pub fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        saturating_dist_add(self.distance(u, v), self.distance(v, u))
    }

    /// True when every ordered pair is reachable (graph strongly connected).
    pub fn all_finite(&self) -> bool {
        self.dist.iter().all(|&d| d != INFINITY)
    }

    /// The roundtrip diameter `RTDiam(G) = max_{u,v} r(u, v)`.
    pub fn roundtrip_diameter(&self) -> Distance {
        let mut best = 0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let r = self.roundtrip(NodeId::from_index(u), NodeId::from_index(v));
                if r == INFINITY {
                    return INFINITY;
                }
                best = best.max(r);
            }
        }
        best
    }

    /// The (one-way) diameter `max_{u≠v} d(u, v)`.
    pub fn diameter(&self) -> Distance {
        let mut best = 0;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v {
                    let d = self.dist[u * self.n + v];
                    if d == INFINITY {
                        return INFINITY;
                    }
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Stretch of a measured roundtrip path length against `r(u, v)`, as an
    /// exact rational comparison helper: returns `measured as f64 / r(u,v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (roundtrip stretch is undefined for a node and
    /// itself) or the pair is unreachable.
    pub fn roundtrip_stretch(&self, u: NodeId, v: NodeId, measured: Distance) -> f64 {
        assert_ne!(u, v, "roundtrip stretch undefined for identical endpoints");
        let r = self.roundtrip(u, v);
        assert!(r != INFINITY && r > 0, "pair ({u},{v}) unreachable");
        measured as f64 / r as f64
    }

    /// Verifies `measured ≤ bound_num/bound_den · r(u,v)` using only integer
    /// arithmetic (no floating point), which is how the test-suite asserts the
    /// paper's hard stretch bounds.
    pub fn within_stretch(
        &self,
        u: NodeId,
        v: NodeId,
        measured: Distance,
        bound_num: u64,
        bound_den: u64,
    ) -> bool {
        let r = self.roundtrip(u, v);
        if r == INFINITY {
            return false;
        }
        (measured as u128) * (bound_den as u128) <= (bound_num as u128) * (r as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::algo::floyd::floyd_warshall;
    use rtr_graph::generators::{directed_ring, strongly_connected_gnp};
    use rtr_graph::DiGraphBuilder;

    #[test]
    fn matches_floyd_warshall() {
        let g = strongly_connected_gnp(40, 0.1, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        let fw = floyd_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.distance(u, v), fw[u.index()][v.index()]);
            }
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let g = strongly_connected_gnp(30, 0.15, 9).unwrap();
        let a = DistanceMatrix::build_with_threads(&g, 1);
        let b = DistanceMatrix::build_with_threads(&g, 8);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.distance(u, v), b.distance(u, v));
            }
        }
    }

    #[test]
    fn roundtrip_is_symmetric_and_zero_on_diagonal() {
        let g = strongly_connected_gnp(25, 0.2, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            assert_eq!(m.roundtrip(u, u), 0);
            for v in g.nodes() {
                assert_eq!(m.roundtrip(u, v), m.roundtrip(v, u));
            }
        }
    }

    #[test]
    fn roundtrip_triangle_inequality() {
        // r is a metric: r(u,w) ≤ r(u,v) + r(v,w).
        let g = strongly_connected_gnp(20, 0.25, 12).unwrap();
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                for w in g.nodes() {
                    assert!(m.roundtrip(u, w) <= m.roundtrip(u, v) + m.roundtrip(v, w));
                }
            }
        }
    }

    #[test]
    fn ring_roundtrip_is_cycle_length() {
        let g = directed_ring(10, 0).unwrap();
        let m = DistanceMatrix::build(&g);
        let total: u64 = g.nodes().map(|u| g.out_edges(u)[0].weight).sum();
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    assert_eq!(m.roundtrip(u, v), total);
                }
            }
        }
        assert_eq!(m.roundtrip_diameter(), total);
    }

    #[test]
    fn all_finite_detects_strong_connectivity() {
        let g = strongly_connected_gnp(16, 0.1, 1).unwrap();
        assert!(DistanceMatrix::build(&g).all_finite());

        let mut b = DiGraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        let g = b.build().unwrap();
        assert!(!DistanceMatrix::build(&g).all_finite());
    }

    #[test]
    fn diameters_relate() {
        let g = strongly_connected_gnp(30, 0.1, 7).unwrap();
        let m = DistanceMatrix::build(&g);
        assert!(m.roundtrip_diameter() >= m.diameter());
        assert!(m.roundtrip_diameter() <= 2 * m.diameter());
    }

    #[test]
    fn within_stretch_integer_check() {
        let g = directed_ring(6, 0).unwrap();
        let m = DistanceMatrix::build(&g);
        let (u, v) = (NodeId(0), NodeId(1));
        let r = m.roundtrip(u, v);
        assert!(m.within_stretch(u, v, r, 1, 1));
        assert!(m.within_stretch(u, v, 6 * r, 6, 1));
        assert!(!m.within_stretch(u, v, 6 * r + 1, 6, 1));
    }

    #[test]
    fn stretch_ratio_matches_division() {
        let g = strongly_connected_gnp(12, 0.3, 2).unwrap();
        let m = DistanceMatrix::build(&g);
        let (u, v) = (NodeId(0), NodeId(1));
        let r = m.roundtrip(u, v);
        let s = m.roundtrip_stretch(u, v, 3 * r);
        assert!((s - 3.0).abs() < 1e-12);
    }
}
