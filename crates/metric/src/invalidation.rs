//! Conservative shortest-path row invalidation after graph faults.
//!
//! After a batch of edge removals / weight inflations, most Dijkstra rows of
//! the pre-fault metric are still exact on the mutated graph: a removed or
//! inflated edge can only change `d(s, ·)` if it was **tight** from `s` —
//! i.e. it lay on some shortest path out of `s` — and symmetrically for
//! reverse rows. [`RowInvalidation::analyze`] marks exactly those rows,
//! reading four *old*-metric rows per fault (the forward and reverse rows of
//! the two endpoints), so post-fault repair and verification recompute only
//! the touched slice of the metric instead of all `2n` rows.
//!
//! The tightness test is an over-approximation (a tight edge with an
//! equal-weight alternative path marks the row dirty even though the
//! distance survives), which is the safe direction: a clean row is
//! **guaranteed** bit-identical on the mutated graph. The analysis is only
//! sound for faults that never shrink a distance — edge removals and weight
//! increases. Node outages and weight decreases must use
//! [`RowInvalidation::all_dirty`]; [`RowInvalidation::for_application`]
//! dispatches automatically from a
//! [`FaultApplication`](rtr_graph::FaultApplication).

use crate::oracle::DistanceOracle;
use rtr_graph::{EdgeFault, FaultApplication, NodeId, INFINITY};

/// Which rows of a pre-fault metric are still exact on the mutated graph.
///
/// Forward row `s` holds `d(s, ·)`; reverse row `t` holds `d(·, t)`. A node
/// is *dirty* when either of its rows is — its roundtrip row (the sum of the
/// two) can no longer be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowInvalidation {
    dirty_fwd: Vec<bool>,
    dirty_rev: Vec<bool>,
}

impl RowInvalidation {
    /// Marks the rows invalidated by `faults`, reading the **pre-fault**
    /// metric `m` (four endpoint rows per fault; repeated endpoints hit the
    /// oracle's cache).
    ///
    /// Each fault's [`weight`](EdgeFault::weight) must be the edge's
    /// pre-fault weight, and no fault may have decreased a weight — use
    /// [`all_dirty`](Self::all_dirty) for metric-shrinking mutations.
    ///
    /// # Panics
    ///
    /// Panics when a fault records a decreased weight (`new_weight <
    /// weight`), for which tightness analysis is unsound.
    pub fn analyze<O: DistanceOracle + ?Sized>(m: &O, faults: &[EdgeFault]) -> RowInvalidation {
        let n = m.node_count();
        let mut inv = RowInvalidation { dirty_fwd: vec![false; n], dirty_rev: vec![false; n] };
        for fault in faults {
            if let Some(new) = fault.new_weight {
                assert!(
                    new >= fault.weight,
                    "row invalidation is unsound for weight decreases; use all_dirty"
                );
                if new == fault.weight {
                    continue; // a no-op perturbation invalidates nothing
                }
            }
            let (a, b, w) = (fault.from, fault.to, fault.weight);
            // d(s, a) + w == d(s, b)  ⇔  (a, b) tight from s  ⇒  row Fwd(s)
            // may change.  d(s, a) is reverse row of a, indexed at s.
            let rev_a = m.rev_row(a);
            let rev_b = m.rev_row(b);
            for s in 0..n {
                let to_a = rev_a[s];
                if to_a < INFINITY && to_a.checked_add(w) == Some(rev_b[s]) {
                    inv.dirty_fwd[s] = true;
                }
            }
            // w + d(b, t) == d(a, t)  ⇔  (a, b) tight towards t  ⇒  row
            // Rev(t) may change.  d(b, t) is forward row of b, indexed at t.
            let fwd_a = m.row(a);
            let fwd_b = m.row(b);
            for t in 0..n {
                let from_b = fwd_b[t];
                if from_b < INFINITY && from_b.checked_add(w) == Some(fwd_a[t]) {
                    inv.dirty_rev[t] = true;
                }
            }
        }
        inv
    }

    /// Marks the rows invalidated by an applied fault plan: tightness
    /// analysis when every fault was a removal or increase, [`all_dirty`]
    /// (total invalidation) when the application flagged a node outage or a
    /// weight decrease.
    ///
    /// [`all_dirty`]: Self::all_dirty
    pub fn for_application<O: DistanceOracle + ?Sized>(
        m: &O,
        application: &FaultApplication,
    ) -> RowInvalidation {
        if application.all_rows_dirty {
            RowInvalidation::all_dirty(m.node_count())
        } else {
            RowInvalidation::analyze(m, &application.faults)
        }
    }

    /// Total invalidation: every row of an `n`-node metric is dirty.
    pub fn all_dirty(n: usize) -> RowInvalidation {
        RowInvalidation { dirty_fwd: vec![true; n], dirty_rev: vec![true; n] }
    }

    /// No invalidation at all (the identity fault plan).
    pub fn clean(n: usize) -> RowInvalidation {
        RowInvalidation { dirty_fwd: vec![false; n], dirty_rev: vec![false; n] }
    }

    /// Number of nodes of the underlying metric.
    pub fn node_count(&self) -> usize {
        self.dirty_fwd.len()
    }

    /// True when forward row `d(s, ·)` may differ on the mutated graph.
    pub fn is_fwd_dirty(&self, s: NodeId) -> bool {
        self.dirty_fwd[s.index()]
    }

    /// True when reverse row `d(·, t)` may differ on the mutated graph.
    pub fn is_rev_dirty(&self, t: NodeId) -> bool {
        self.dirty_rev[t.index()]
    }

    /// True when either row of `u` is dirty — `u`'s roundtrip row must be
    /// recomputed.
    pub fn is_node_dirty(&self, u: NodeId) -> bool {
        self.dirty_fwd[u.index()] || self.dirty_rev[u.index()]
    }

    /// The dirty nodes, ascending.
    pub fn dirty_nodes(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32).map(NodeId).filter(|&u| self.is_node_dirty(u)).collect()
    }

    /// Number of dirty forward rows.
    pub fn dirty_fwd_rows(&self) -> usize {
        self.dirty_fwd.iter().filter(|&&d| d).count()
    }

    /// Number of dirty reverse rows.
    pub fn dirty_rev_rows(&self) -> usize {
        self.dirty_rev.iter().filter(|&&d| d).count()
    }

    /// Number of dirty nodes (either row dirty).
    pub fn dirty_node_count(&self) -> usize {
        (0..self.node_count() as u32).filter(|&u| self.is_node_dirty(NodeId(u))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CachedSubsetOracle, DistanceMatrix};
    use rtr_graph::generators::strongly_connected_gnp;
    use rtr_graph::{FaultPlan, GraphDelta};

    /// Clean rows really are bit-identical on the mutated graph, across many
    /// seeded removal/inflation plans.
    #[test]
    fn clean_rows_survive_faults_exactly() {
        for seed in 0..12u64 {
            let g0 = strongly_connected_gnp(26, 0.18, seed).unwrap();
            let candidates: Vec<(NodeId, NodeId)> =
                g0.nodes().flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to))).collect();
            let plan = FaultPlan::mixed_from_candidates(&candidates, 5, 3, 4, seed ^ 0xfa);
            let mut g1 = g0.clone();
            let applied = plan.apply(&mut g1);
            if !g1.is_strongly_connected() {
                continue; // removal disconnected the graph; skip this seed
            }
            let m0 = CachedSubsetOracle::new(&g0);
            let inv = RowInvalidation::for_application(&m0, &applied);
            let m1 = DistanceMatrix::build(&g1);
            for u in g0.nodes() {
                if !inv.is_fwd_dirty(u) {
                    assert_eq!(m0.row(u), DistanceOracle::row(&m1, u), "fwd {u} seed {seed}");
                }
                if !inv.is_rev_dirty(u) {
                    assert_eq!(
                        m0.rev_row(u),
                        DistanceOracle::rev_row(&m1, u),
                        "rev {u} seed {seed}"
                    );
                }
            }
        }
    }

    /// Removing a tight edge marks its tail's forward row and its head's
    /// reverse row (at minimum) dirty.
    #[test]
    fn tight_removal_marks_endpoint_rows() {
        let g0 = strongly_connected_gnp(20, 0.2, 3).unwrap();
        // Any edge is tight from its own tail (it is the shortest path
        // candidate d(a, b) <= w; tight iff d(a,b) == w).
        let m0 = CachedSubsetOracle::new(&g0);
        let (a, e) = g0
            .nodes()
            .find_map(|u| {
                g0.out_edges(u).iter().find(|e| m0.distance(u, e.to) == e.weight).map(|e| (u, *e))
            })
            .expect("some edge realises the distance between its endpoints");
        let mut g1 = g0.clone();
        let plan = FaultPlan::new(vec![GraphDelta::RemoveEdge { from: a, to: e.to }], 0);
        let applied = plan.apply(&mut g1);
        let inv = RowInvalidation::for_application(&m0, &applied);
        assert!(inv.is_fwd_dirty(a));
        assert!(inv.is_rev_dirty(e.to));
        assert!(inv.dirty_node_count() >= 2);
    }

    #[test]
    fn node_outage_dirties_everything() {
        let g0 = strongly_connected_gnp(16, 0.25, 9).unwrap();
        let mut g1 = g0.clone();
        let plan = FaultPlan::new(vec![GraphDelta::IsolateNode { node: NodeId(2) }], 0);
        let applied = plan.apply(&mut g1);
        let m0 = CachedSubsetOracle::new(&g0);
        let inv = RowInvalidation::for_application(&m0, &applied);
        assert_eq!(inv.dirty_node_count(), g0.node_count());
    }
}
