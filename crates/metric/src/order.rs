//! The total order `≺_v` and the neighborhood balls `N_i(u)` of paper §2/§3.

use crate::oracle::{sweep_rows_prefetched, DistanceOracle};
use rtr_graph::types::saturating_dist_add;
use rtr_graph::NodeId;
use std::cmp::Ordering;

/// Compares `a` and `b` from the point of view of `v` by the paper's
/// three-level rule (§2):
///
/// 1. smaller roundtrip distance `r(v, ·)` first,
/// 2. ties broken by smaller `d(·, v)` (distance *to* `v`),
/// 3. remaining ties broken by node id.
///
/// The result is a strict total order for every fixed `v`.
pub fn roundtrip_closer<O: DistanceOracle + ?Sized>(
    m: &O,
    v: NodeId,
    a: NodeId,
    b: NodeId,
) -> Ordering {
    let key = |x: NodeId| (m.roundtrip(v, x), m.distance(x, v), x.0);
    key(a).cmp(&key(b))
}

/// The order `Init_v` for every node `v`, plus prefix ("neighborhood ball")
/// queries.
///
/// `Init_v` starts with `v` itself (its roundtrip distance to itself is 0) and
/// lists all other nodes in `≺_v` order. The §2 scheme uses the first `√n`
/// entries as `N(v)`; the §3 scheme uses the first `n^{i/k}` entries as
/// `N_i(v)`.
///
/// Two build modes exist:
///
/// * [`build`](Self::build) stores the **full** order for every node plus a
///   dense inverse permutation — `O(n²)` memory, `O(1)` rank queries; right
///   for moderate `n` and for consumers that need deep prefixes.
/// * [`build_truncated`](Self::build_truncated) stores only the first `cap`
///   entries per node — `O(n·cap)` memory. The stored prefix is *identical*
///   to the full order's prefix (same sort keys), so any consumer whose
///   neighborhood queries stay within `cap` gets bit-identical results. This
///   is what lets the schemes run at `n = 10⁴⁺` through a lazy oracle without
///   ever holding an `n²` structure.
///
/// Either way, construction consumes the oracle row-wise — two rows (forward
/// and reverse) per source, swept source by source, in parallel across
/// worker threads that each own a disjoint chunk of sources.
#[derive(Debug, Clone)]
pub struct RoundtripOrder {
    n: usize,
    stored: usize,
    /// `orders[v][rank] = rank`-th closest node to `v` (rank 0 is `v`),
    /// truncated to `stored` entries.
    orders: Vec<Vec<NodeId>>,
    /// `rank_of[v][u] = rank of u in Init_v` (dense inverse permutation);
    /// present only for full builds.
    rank_of: Option<Vec<Vec<u32>>>,
}

impl RoundtripOrder {
    /// Computes the full `Init_v` for every `v` from a distance oracle.
    pub fn build<O: DistanceOracle + ?Sized>(m: &O) -> Self {
        let n = m.node_count();
        let mut order = Self::build_truncated(m, n);
        // Dense inverse permutation for O(1) rank queries.
        let mut rank_of = vec![vec![0u32; n]; n];
        for (vi, init) in order.orders.iter().enumerate() {
            for (rank, &u) in init.iter().enumerate() {
                rank_of[vi][u.index()] = rank as u32;
            }
        }
        order.rank_of = Some(rank_of);
        order
    }

    /// Computes only the first `cap` entries of `Init_v` for every `v`
    /// (clamped to `n`). Memory is `O(n · cap)`; neighborhood queries beyond
    /// `cap` panic — pick `cap` as the largest level size the consumer uses
    /// (`level_size(n, k−1, k)` covers every dictionary lookup of a
    /// parameter-`k` scheme).
    ///
    /// On a dense oracle the per-source work is the selection itself, so the
    /// sweep fans out over worker threads owning disjoint source blocks.  On
    /// a lazy oracle the per-source cost is the two Dijkstras behind the row
    /// miss, so the sweep instead runs sequentially over prefetch windows —
    /// [`DistanceOracle::prefetch_rows`] overlaps the Dijkstras on the
    /// oracle's worker pool while this thread consumes finished rows.  Both
    /// paths produce bit-identical orders.
    pub fn build_truncated<O: DistanceOracle + ?Sized>(m: &O, cap: usize) -> Self {
        let n = m.node_count();
        let cap = cap.min(n).max(1.min(n));
        let mut orders: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        if n == 0 {
            return RoundtripOrder { n, stored: 0, orders, rank_of: None };
        }
        if m.prefers_row_prefetch() {
            let sources: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
            sweep_rows_prefetched(m, &sources, |v| {
                orders[v.index()] = prefix_for_source(m, v, cap);
            });
            return RoundtripOrder { n, stored: cap, orders, rank_of: None };
        }
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
        let chunk = n.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (ci, block) in orders.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    for (offset, slot) in block.iter_mut().enumerate() {
                        let v = NodeId::from_index(ci * chunk + offset);
                        *slot = prefix_for_source(m, v, cap);
                    }
                });
            }
        })
        .expect("roundtrip-order worker panicked");
        RoundtripOrder { n, stored: cap, orders, rank_of: None }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// How many entries of each `Init_v` are stored (`n` for full builds).
    pub fn stored_prefix(&self) -> usize {
        self.stored
    }

    /// The stored prefix of `Init_v` (the full sequence for full builds).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn init(&self, v: NodeId) -> &[NodeId] {
        &self.orders[v.index()]
    }

    /// The neighborhood `N(v)` consisting of the first `size` nodes of
    /// `Init_v` (including `v` itself). `size` is clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if the clamped `size` exceeds the stored prefix of a truncated
    /// build.
    pub fn neighborhood(&self, v: NodeId, size: usize) -> &[NodeId] {
        let k = size.min(self.n);
        assert!(
            k <= self.stored,
            "neighborhood size {k} exceeds the stored prefix {} of a truncated order",
            self.stored
        );
        &self.orders[v.index()][..k]
    }

    /// The rank of `u` in `Init_v` (0 for `u == v`).
    ///
    /// # Panics
    ///
    /// On a truncated build, panics if `u` lies beyond the stored prefix of
    /// `Init_v`.
    pub fn rank(&self, v: NodeId, u: NodeId) -> usize {
        match &self.rank_of {
            Some(dense) => dense[v.index()][u.index()] as usize,
            None => self.orders[v.index()]
                .iter()
                .position(|&x| x == u)
                .expect("rank query beyond the stored prefix of a truncated order"),
        }
    }

    /// Whether `u` lies in the first `size` entries of `Init_v`.
    pub fn in_neighborhood(&self, v: NodeId, u: NodeId, size: usize) -> bool {
        let size = size.min(self.n);
        match &self.rank_of {
            Some(dense) => (dense[v.index()][u.index()] as usize) < size,
            None => self.neighborhood(v, size).contains(&u),
        }
    }

    /// The size of the `i`-th level neighborhood `N_i(v) = first ⌈n^{i/k}⌉`
    /// entries (paper §3.1). Level 0 has size 1 (just `v`), level `k` is all
    /// of `V`.
    pub fn level_size(n: usize, i: u32, k: u32) -> usize {
        assert!(k >= 1 && i <= k);
        if i == 0 {
            return 1;
        }
        if i == k {
            return n;
        }
        let size = (n as f64).powf(i as f64 / k as f64).ceil() as usize;
        size.clamp(1, n)
    }

    /// The level-`i` neighborhood `N_i(v)` for parameter `k`.
    pub fn level_neighborhood(&self, v: NodeId, i: u32, k: u32) -> &[NodeId] {
        let size = Self::level_size(self.node_count(), i, k);
        self.neighborhood(v, size)
    }
}

/// The first `cap` entries of `Init_v`, computed from the forward and reverse
/// rows of `v` alone.
fn prefix_for_source<O: DistanceOracle + ?Sized>(m: &O, v: NodeId, cap: usize) -> Vec<NodeId> {
    let fwd = m.row(v);
    let rev = m.rev_row(v);
    let key = |x: u32| {
        let xi = x as usize;
        (saturating_dist_add(fwd[xi], rev[xi]), rev[xi], x)
    };
    let mut nodes: Vec<u32> = (0..fwd.len() as u32).collect();
    if cap < nodes.len() {
        nodes.select_nth_unstable_by_key(cap, |&x| key(x));
        nodes.truncate(cap);
    }
    nodes.sort_unstable_by_key(|&x| key(x));
    nodes.into_iter().map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, LazyDijkstraOracle};
    use rtr_graph::generators::{directed_ring, strongly_connected_gnp};

    fn setup(n: usize, seed: u64) -> (rtr_graph::DiGraph, DistanceMatrix, RoundtripOrder) {
        let g = strongly_connected_gnp(n, 0.15, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        (g, m, o)
    }

    #[test]
    fn self_is_always_first() {
        let (g, _m, o) = setup(30, 1);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
            assert_eq!(o.rank(v, v), 0);
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (g, _m, o) = setup(25, 2);
        for v in g.nodes() {
            let mut seq: Vec<NodeId> = o.init(v).to_vec();
            seq.sort_unstable();
            assert_eq!(seq, g.nodes().collect::<Vec<_>>());
        }
    }

    #[test]
    fn order_is_sorted_by_roundtrip_distance() {
        let (g, m, o) = setup(25, 3);
        for v in g.nodes() {
            let seq = o.init(v);
            for w in seq.windows(2) {
                let ra = m.roundtrip(v, w[0]);
                let rb = m.roundtrip(v, w[1]);
                assert!(ra <= rb, "Init_{v} not sorted by roundtrip distance");
                if ra == rb {
                    let da = m.distance(w[0], v);
                    let db = m.distance(w[1], v);
                    assert!(da <= db);
                    if da == db {
                        assert!(w[0].0 < w[1].0);
                    }
                }
            }
        }
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let (g, _m, o) = setup(20, 4);
        for v in g.nodes() {
            for (rank, &u) in o.init(v).iter().enumerate() {
                assert_eq!(o.rank(v, u), rank);
            }
        }
    }

    #[test]
    fn neighborhood_prefix_and_membership_agree() {
        let (g, _m, o) = setup(36, 5);
        let size = 6;
        for v in g.nodes() {
            let nb = o.neighborhood(v, size);
            assert_eq!(nb.len(), size);
            for u in g.nodes() {
                assert_eq!(nb.contains(&u), o.in_neighborhood(v, u, size));
            }
        }
    }

    #[test]
    fn neighborhood_clamps_to_n() {
        let (_g, _m, o) = setup(10, 6);
        assert_eq!(o.neighborhood(NodeId(0), 999).len(), 10);
    }

    #[test]
    fn truncated_build_matches_full_prefix() {
        let (g, m, full) = setup(32, 11);
        for cap in [1usize, 5, 13, 32] {
            let truncated = RoundtripOrder::build_truncated(&m, cap);
            assert_eq!(truncated.stored_prefix(), cap.min(32));
            for v in g.nodes() {
                assert_eq!(truncated.init(v), &full.init(v)[..cap.min(32)]);
                assert_eq!(truncated.neighborhood(v, cap), full.neighborhood(v, cap));
            }
        }
    }

    #[test]
    fn truncated_build_through_lazy_oracle_matches_dense() {
        let g = strongly_connected_gnp(28, 0.15, 21).unwrap();
        let m = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 4);
        let dense_order = RoundtripOrder::build_truncated(&m, 8);
        let lazy_order = RoundtripOrder::build_truncated(&lazy, 8);
        for v in g.nodes() {
            assert_eq!(dense_order.init(v), lazy_order.init(v));
        }
        // The order build swept rows source by source; the bounded cache must
        // never have held more than its capacity.
        assert!(lazy.stats().peak_resident_rows <= 5);
    }

    #[test]
    #[should_panic(expected = "stored prefix")]
    fn truncated_rejects_oversized_neighborhood_queries() {
        let (_g, m, _o) = setup(20, 8);
        let truncated = RoundtripOrder::build_truncated(&m, 4);
        truncated.neighborhood(NodeId(0), 10);
    }

    #[test]
    fn comparator_is_total_and_antisymmetric() {
        let (g, m, _o) = setup(15, 7);
        for v in g.nodes() {
            for a in g.nodes() {
                for b in g.nodes() {
                    let ab = roundtrip_closer(&m, v, a, b);
                    let ba = roundtrip_closer(&m, v, b, a);
                    if a == b {
                        assert_eq!(ab, Ordering::Equal);
                    } else {
                        assert_ne!(ab, Ordering::Equal);
                        assert_eq!(ab, ba.reverse());
                    }
                }
            }
        }
    }

    #[test]
    fn level_sizes_are_monotone_and_bounded() {
        let n = 4096;
        for k in 2..=6u32 {
            let mut prev = 0;
            for i in 0..=k {
                let s = RoundtripOrder::level_size(n, i, k);
                assert!(s >= prev);
                assert!(s <= n);
                prev = s;
            }
            assert_eq!(RoundtripOrder::level_size(n, 0, k), 1);
            assert_eq!(RoundtripOrder::level_size(n, k, k), n);
        }
    }

    #[test]
    fn level_size_matches_sqrt_for_k2() {
        assert_eq!(RoundtripOrder::level_size(1024, 1, 2), 32);
        assert_eq!(RoundtripOrder::level_size(100, 1, 2), 10);
    }

    #[test]
    fn ring_neighborhood_is_everything_at_equal_roundtrip() {
        // On a unit-weight directed ring every pair has the same roundtrip
        // distance n, so Init_v is sorted by the tie-breakers; v itself is
        // still first because r(v,v) = 0.
        let g = directed_ring(8, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
        }
    }
}
