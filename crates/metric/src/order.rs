//! The total order `≺_v` and the neighborhood balls `N_i(u)` of paper §2/§3.

use crate::oracle::DistanceOracle;
use crate::sweep::{broadcast_rows, RowSweepConsumer, SweepRows, SweepSlots};
use rtr_graph::{Distance, NodeId};
use std::cmp::Ordering;

/// Compares `a` and `b` from the point of view of `v` by the paper's
/// three-level rule (§2):
///
/// 1. smaller roundtrip distance `r(v, ·)` first,
/// 2. ties broken by smaller `d(·, v)` (distance *to* `v`),
/// 3. remaining ties broken by node id.
///
/// The result is a strict total order for every fixed `v`.
pub fn roundtrip_closer<O: DistanceOracle + ?Sized>(
    m: &O,
    v: NodeId,
    a: NodeId,
    b: NodeId,
) -> Ordering {
    let key = |x: NodeId| (m.roundtrip(v, x), m.distance(x, v), x.0);
    key(a).cmp(&key(b))
}

/// The order `Init_v` for every node `v`, plus prefix ("neighborhood ball")
/// queries.
///
/// `Init_v` starts with `v` itself (its roundtrip distance to itself is 0) and
/// lists all other nodes in `≺_v` order. The §2 scheme uses the first `√n`
/// entries as `N(v)`; the §3 scheme uses the first `n^{i/k}` entries as
/// `N_i(v)`.
///
/// Two build modes exist:
///
/// * [`build`](Self::build) stores the **full** order for every node —
///   `O(n²)` ids; right for moderate `n` and for consumers that need deep
///   prefixes. (The dense inverse-permutation rank table this mode used to
///   carry is gone: every remaining rank/membership query is answered from
///   the stored prefix itself.)
/// * [`build_truncated`](Self::build_truncated) stores only the first `cap`
///   entries per node — `O(n·cap)` memory. The stored prefix is *identical*
///   to the full order's prefix (same sort keys), so any consumer whose
///   neighborhood queries stay within `cap` gets bit-identical results. This
///   is what lets the schemes run at `n = 10⁴⁺` through a lazy oracle without
///   ever holding an `n²` structure.
///
/// Either way, construction consumes the oracle row-wise through the
/// [broadcast sweep](crate::broadcast_rows): [`TruncatedOrderSweep`] is the
/// row consumer, and several orders (or other row consumers) can share one
/// pass over the metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundtripOrder {
    n: usize,
    stored: usize,
    /// `orders[v][rank] = rank`-th closest node to `v` (rank 0 is `v`),
    /// truncated to `stored` entries.
    orders: Vec<Vec<NodeId>>,
}

/// Row consumer collecting the first `cap` entries of every `Init_v` — the
/// [`RoundtripOrder::build_truncated`] construction, exposed as a
/// [`RowSweepConsumer`] so several orders can ride one shared
/// [`broadcast_rows`] pass together with other row consumers.
#[derive(Debug)]
pub struct TruncatedOrderSweep {
    n: usize,
    cap: usize,
    slots: SweepSlots<Vec<NodeId>>,
}

impl TruncatedOrderSweep {
    /// Prepares a sweep over `n` sources storing the first `cap` entries per
    /// source (clamped exactly like [`RoundtripOrder::build_truncated`]).
    pub fn new(n: usize, cap: usize) -> Self {
        let cap = cap.min(n).max(1.min(n));
        TruncatedOrderSweep { n, cap, slots: SweepSlots::new(n) }
    }

    /// The clamped stored-prefix length this sweep collects.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Assembles the collected prefixes into a [`RoundtripOrder`].
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not visited every source yet.
    pub fn finish(self) -> RoundtripOrder {
        RoundtripOrder { n: self.n, stored: self.cap, orders: self.slots.into_vec() }
    }
}

impl RowSweepConsumer for TruncatedOrderSweep {
    fn consume(&self, source: NodeId, rows: &SweepRows<'_>) {
        self.slots.put(source.index(), prefix_from_rows(rows.roundtrip, rows.rev, self.cap));
    }
}

impl RoundtripOrder {
    /// Computes the full `Init_v` for every `v` from a distance oracle.
    pub fn build<O: DistanceOracle + ?Sized>(m: &O) -> Self {
        Self::build_truncated(m, m.node_count())
    }

    /// Computes only the first `cap` entries of `Init_v` for every `v`
    /// (clamped to `n`). Memory is `O(n · cap)`; neighborhood queries beyond
    /// `cap` panic — pick `cap` as the largest level size the consumer uses
    /// (`level_size(n, k−1, k)` covers every dictionary lookup of a
    /// parameter-`k` scheme).
    ///
    /// Runs a solo [`broadcast_rows`] pass with a [`TruncatedOrderSweep`]
    /// consumer: block-parallel consumption on dense oracles, a sequential
    /// prefetch-windowed sweep on lazy ones — bit-identical orders either
    /// way. Callers building several row structures should register the
    /// sweep on a shared broadcast instead.
    pub fn build_truncated<O: DistanceOracle + ?Sized>(m: &O, cap: usize) -> Self {
        let sweep = TruncatedOrderSweep::new(m.node_count(), cap);
        broadcast_rows(m, &[&sweep]);
        sweep.finish()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// How many entries of each `Init_v` are stored (`n` for full builds).
    pub fn stored_prefix(&self) -> usize {
        self.stored
    }

    /// The stored prefix of `Init_v` (the full sequence for full builds).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn init(&self, v: NodeId) -> &[NodeId] {
        &self.orders[v.index()]
    }

    /// The neighborhood `N(v)` consisting of the first `size` nodes of
    /// `Init_v` (including `v` itself). `size` is clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if the clamped `size` exceeds the stored prefix of a truncated
    /// build.
    pub fn neighborhood(&self, v: NodeId, size: usize) -> &[NodeId] {
        let k = size.min(self.n);
        assert!(
            k <= self.stored,
            "neighborhood size {k} exceeds the stored prefix {} of a truncated order",
            self.stored
        );
        &self.orders[v.index()][..k]
    }

    /// The rank of `u` in `Init_v` (0 for `u == v`), by scanning the stored
    /// prefix — the callers that needed `O(1)` ranks over a dense `n²`
    /// inverse permutation are gone, so the table is too.
    ///
    /// # Panics
    ///
    /// On a truncated build, panics if `u` lies beyond the stored prefix of
    /// `Init_v`.
    pub fn rank(&self, v: NodeId, u: NodeId) -> usize {
        self.orders[v.index()]
            .iter()
            .position(|&x| x == u)
            .expect("rank query beyond the stored prefix of a truncated order")
    }

    /// Whether `u` lies in the first `size` entries of `Init_v`.
    pub fn in_neighborhood(&self, v: NodeId, u: NodeId, size: usize) -> bool {
        let size = size.min(self.n);
        self.neighborhood(v, size).contains(&u)
    }

    /// The size of the `i`-th level neighborhood `N_i(v) = first ⌈n^{i/k}⌉`
    /// entries (paper §3.1). Level 0 has size 1 (just `v`), level `k` is all
    /// of `V`.
    pub fn level_size(n: usize, i: u32, k: u32) -> usize {
        assert!(k >= 1 && i <= k);
        if i == 0 {
            return 1;
        }
        if i == k {
            return n;
        }
        let size = (n as f64).powf(i as f64 / k as f64).ceil() as usize;
        size.clamp(1, n)
    }

    /// The level-`i` neighborhood `N_i(v)` for parameter `k`.
    pub fn level_neighborhood(&self, v: NodeId, i: u32, k: u32) -> &[NodeId] {
        let size = Self::level_size(self.node_count(), i, k);
        self.neighborhood(v, size)
    }

    /// Incrementally repairs the order after graph faults: each stored
    /// prefix is a pure function of its node's roundtrip and reverse rows,
    /// so only the prefixes of nodes the
    /// [`RowInvalidation`](crate::RowInvalidation) marks dirty are
    /// recomputed (two oracle rows each against the post-fault metric `m`);
    /// clean prefixes are carried over unchanged.
    ///
    /// With `m` the mutated graph's metric (e.g. a
    /// [rebased](crate::LazyDijkstraOracle::rebased) oracle), the result is
    /// **bit-identical** to [`build_truncated`](Self::build_truncated) from
    /// scratch on the mutated graph — clean rows are unchanged by
    /// construction, so clean prefixes are too.
    ///
    /// # Panics
    ///
    /// Panics when `m` or `invalidation` disagree with this order's node
    /// count.
    pub fn repair<O: DistanceOracle + ?Sized>(
        &self,
        m: &O,
        invalidation: &crate::RowInvalidation,
    ) -> RoundtripOrder {
        assert_eq!(m.node_count(), self.n, "repair metric node count mismatch");
        assert_eq!(invalidation.node_count(), self.n, "invalidation node count mismatch");
        let orders = (0..self.n as u32)
            .map(NodeId)
            .map(|v| {
                if invalidation.is_node_dirty(v) {
                    let roundtrip = m.roundtrip_row(v);
                    let rev = m.rev_row(v);
                    prefix_from_rows(&roundtrip, &rev, self.stored)
                } else {
                    self.orders[v.index()].clone()
                }
            })
            .collect();
        RoundtripOrder { n: self.n, stored: self.stored, orders }
    }
}

/// The first `cap` entries of `Init_v`, computed from the roundtrip and
/// reverse rows of `v` alone.
fn prefix_from_rows(roundtrip: &[Distance], rev: &[Distance], cap: usize) -> Vec<NodeId> {
    let key = |x: u32| {
        let xi = x as usize;
        (roundtrip[xi], rev[xi], x)
    };
    let mut nodes: Vec<u32> = (0..roundtrip.len() as u32).collect();
    if cap < nodes.len() {
        nodes.select_nth_unstable_by_key(cap, |&x| key(x));
        nodes.truncate(cap);
    }
    nodes.sort_unstable_by_key(|&x| key(x));
    nodes.into_iter().map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, LazyDijkstraOracle};
    use rtr_graph::generators::{directed_ring, strongly_connected_gnp};

    fn setup(n: usize, seed: u64) -> (rtr_graph::DiGraph, DistanceMatrix, RoundtripOrder) {
        let g = strongly_connected_gnp(n, 0.15, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        (g, m, o)
    }

    #[test]
    fn self_is_always_first() {
        let (g, _m, o) = setup(30, 1);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
            assert_eq!(o.rank(v, v), 0);
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (g, _m, o) = setup(25, 2);
        for v in g.nodes() {
            let mut seq: Vec<NodeId> = o.init(v).to_vec();
            seq.sort_unstable();
            assert_eq!(seq, g.nodes().collect::<Vec<_>>());
        }
    }

    #[test]
    fn order_is_sorted_by_roundtrip_distance() {
        let (g, m, o) = setup(25, 3);
        for v in g.nodes() {
            let seq = o.init(v);
            for w in seq.windows(2) {
                let ra = m.roundtrip(v, w[0]);
                let rb = m.roundtrip(v, w[1]);
                assert!(ra <= rb, "Init_{v} not sorted by roundtrip distance");
                if ra == rb {
                    let da = m.distance(w[0], v);
                    let db = m.distance(w[1], v);
                    assert!(da <= db);
                    if da == db {
                        assert!(w[0].0 < w[1].0);
                    }
                }
            }
        }
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let (g, _m, o) = setup(20, 4);
        for v in g.nodes() {
            for (rank, &u) in o.init(v).iter().enumerate() {
                assert_eq!(o.rank(v, u), rank);
            }
        }
    }

    #[test]
    fn neighborhood_prefix_and_membership_agree() {
        let (g, _m, o) = setup(36, 5);
        let size = 6;
        for v in g.nodes() {
            let nb = o.neighborhood(v, size);
            assert_eq!(nb.len(), size);
            for u in g.nodes() {
                assert_eq!(nb.contains(&u), o.in_neighborhood(v, u, size));
            }
        }
    }

    #[test]
    fn neighborhood_clamps_to_n() {
        let (_g, _m, o) = setup(10, 6);
        assert_eq!(o.neighborhood(NodeId(0), 999).len(), 10);
    }

    #[test]
    fn truncated_build_matches_full_prefix() {
        let (g, m, full) = setup(32, 11);
        for cap in [1usize, 5, 13, 32] {
            let truncated = RoundtripOrder::build_truncated(&m, cap);
            assert_eq!(truncated.stored_prefix(), cap.min(32));
            for v in g.nodes() {
                assert_eq!(truncated.init(v), &full.init(v)[..cap.min(32)]);
                assert_eq!(truncated.neighborhood(v, cap), full.neighborhood(v, cap));
            }
        }
    }

    #[test]
    fn truncated_build_through_lazy_oracle_matches_dense() {
        let g = strongly_connected_gnp(28, 0.15, 21).unwrap();
        let m = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 4);
        let dense_order = RoundtripOrder::build_truncated(&m, 8);
        let lazy_order = RoundtripOrder::build_truncated(&lazy, 8);
        for v in g.nodes() {
            assert_eq!(dense_order.init(v), lazy_order.init(v));
        }
        // The order build swept rows source by source; the bounded cache must
        // never have held more than its capacity.
        assert!(lazy.stats().peak_resident_rows <= 5);
    }

    #[test]
    #[should_panic(expected = "stored prefix")]
    fn truncated_rejects_oversized_neighborhood_queries() {
        let (_g, m, _o) = setup(20, 8);
        let truncated = RoundtripOrder::build_truncated(&m, 4);
        truncated.neighborhood(NodeId(0), 10);
    }

    #[test]
    fn comparator_is_total_and_antisymmetric() {
        let (g, m, _o) = setup(15, 7);
        for v in g.nodes() {
            for a in g.nodes() {
                for b in g.nodes() {
                    let ab = roundtrip_closer(&m, v, a, b);
                    let ba = roundtrip_closer(&m, v, b, a);
                    if a == b {
                        assert_eq!(ab, Ordering::Equal);
                    } else {
                        assert_ne!(ab, Ordering::Equal);
                        assert_eq!(ab, ba.reverse());
                    }
                }
            }
        }
    }

    #[test]
    fn level_sizes_are_monotone_and_bounded() {
        let n = 4096;
        for k in 2..=6u32 {
            let mut prev = 0;
            for i in 0..=k {
                let s = RoundtripOrder::level_size(n, i, k);
                assert!(s >= prev);
                assert!(s <= n);
                prev = s;
            }
            assert_eq!(RoundtripOrder::level_size(n, 0, k), 1);
            assert_eq!(RoundtripOrder::level_size(n, k, k), n);
        }
    }

    #[test]
    fn level_size_matches_sqrt_for_k2() {
        assert_eq!(RoundtripOrder::level_size(1024, 1, 2), 32);
        assert_eq!(RoundtripOrder::level_size(100, 1, 2), 10);
    }

    #[test]
    fn repaired_order_matches_fresh_build_on_mutated_graph() {
        use crate::{CachedSubsetOracle, RowInvalidation};
        use rtr_graph::FaultPlan;
        for seed in 0..8u64 {
            let g0 = strongly_connected_gnp(30, 0.18, seed).unwrap();
            let m0 = CachedSubsetOracle::new(&g0);
            let order0 = RoundtripOrder::build_truncated(&m0, 9);
            let candidates: Vec<(NodeId, NodeId)> =
                g0.nodes().flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to))).collect();
            let plan = FaultPlan::mixed_from_candidates(&candidates, 4, 2, 3, seed ^ 0xc4a0);
            let mut g1 = g0.clone();
            let applied = plan.apply(&mut g1);
            if !g1.is_strongly_connected() {
                continue;
            }
            let inv = RowInvalidation::for_application(&m0, &applied);
            let rebased = CachedSubsetOracle::rebased(&m0, &g1, &inv);
            let repaired = order0.repair(&rebased, &inv);
            let fresh = RoundtripOrder::build_truncated(&DistanceMatrix::build(&g1), 9);
            for v in g1.nodes() {
                assert_eq!(repaired.init(v), fresh.init(v), "node {v} seed {seed}");
            }
            // Repair only ever touched the dirty nodes' two rows.
            assert!(rebased.materialised_rows() <= 2 * inv.dirty_node_count());
        }
    }

    #[test]
    fn ring_neighborhood_is_everything_at_equal_roundtrip() {
        // On a unit-weight directed ring every pair has the same roundtrip
        // distance n, so Init_v is sorted by the tie-breakers; v itself is
        // still first because r(v,v) = 0.
        let g = directed_ring(8, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
        }
    }
}
