//! The total order `≺_v` and the neighborhood balls `N_i(u)` of paper §2/§3.

use crate::matrix::DistanceMatrix;
use rtr_graph::NodeId;
use std::cmp::Ordering;

/// Compares `a` and `b` from the point of view of `v` by the paper's
/// three-level rule (§2):
///
/// 1. smaller roundtrip distance `r(v, ·)` first,
/// 2. ties broken by smaller `d(·, v)` (distance *to* `v`),
/// 3. remaining ties broken by node id.
///
/// The result is a strict total order for every fixed `v`.
pub fn roundtrip_closer(m: &DistanceMatrix, v: NodeId, a: NodeId, b: NodeId) -> Ordering {
    let key = |x: NodeId| (m.roundtrip(v, x), m.distance(x, v), x.0);
    key(a).cmp(&key(b))
}

/// The full order `Init_v` for every node `v`, plus prefix ("neighborhood
/// ball") queries.
///
/// `Init_v` starts with `v` itself (its roundtrip distance to itself is 0) and
/// lists all other nodes in `≺_v` order. The §2 scheme uses the first `√n`
/// entries as `N(v)`; the §3 scheme uses the first `n^{i/k}` entries as
/// `N_i(v)`.
#[derive(Debug, Clone)]
pub struct RoundtripOrder {
    /// `orders[v][rank] = rank`-th closest node to `v` (rank 0 is `v`).
    orders: Vec<Vec<NodeId>>,
    /// `rank_of[v][u] = rank of u in Init_v` (inverse permutation).
    rank_of: Vec<Vec<u32>>,
}

impl RoundtripOrder {
    /// Computes `Init_v` for every `v` from a distance matrix.
    pub fn build(m: &DistanceMatrix) -> Self {
        let n = m.node_count();
        let mut orders = Vec::with_capacity(n);
        let mut rank_of = vec![vec![0u32; n]; n];
        for vi in 0..n {
            let v = NodeId::from_index(vi);
            let mut nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
            nodes.sort_by(|&a, &b| roundtrip_closer(m, v, a, b));
            for (rank, &u) in nodes.iter().enumerate() {
                rank_of[vi][u.index()] = rank as u32;
            }
            orders.push(nodes);
        }
        RoundtripOrder { orders, rank_of }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.orders.len()
    }

    /// The full sequence `Init_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn init(&self, v: NodeId) -> &[NodeId] {
        &self.orders[v.index()]
    }

    /// The neighborhood `N(v)` consisting of the first `size` nodes of
    /// `Init_v` (including `v` itself). `size` is clamped to `n`.
    pub fn neighborhood(&self, v: NodeId, size: usize) -> &[NodeId] {
        let k = size.min(self.orders[v.index()].len());
        &self.orders[v.index()][..k]
    }

    /// The rank of `u` in `Init_v` (0 for `u == v`).
    pub fn rank(&self, v: NodeId, u: NodeId) -> usize {
        self.rank_of[v.index()][u.index()] as usize
    }

    /// Whether `u` lies in the first `size` entries of `Init_v`.
    pub fn in_neighborhood(&self, v: NodeId, u: NodeId, size: usize) -> bool {
        self.rank(v, u) < size
    }

    /// The size of the `i`-th level neighborhood `N_i(v) = first ⌈n^{i/k}⌉`
    /// entries (paper §3.1). Level 0 has size 1 (just `v`), level `k` is all
    /// of `V`.
    pub fn level_size(n: usize, i: u32, k: u32) -> usize {
        assert!(k >= 1 && i <= k);
        if i == 0 {
            return 1;
        }
        if i == k {
            return n;
        }
        let size = (n as f64).powf(i as f64 / k as f64).ceil() as usize;
        size.clamp(1, n)
    }

    /// The level-`i` neighborhood `N_i(v)` for parameter `k`.
    pub fn level_neighborhood(&self, v: NodeId, i: u32, k: u32) -> &[NodeId] {
        let size = Self::level_size(self.node_count(), i, k);
        self.neighborhood(v, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{directed_ring, strongly_connected_gnp};

    fn setup(n: usize, seed: u64) -> (rtr_graph::DiGraph, DistanceMatrix, RoundtripOrder) {
        let g = strongly_connected_gnp(n, 0.15, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        (g, m, o)
    }

    #[test]
    fn self_is_always_first() {
        let (g, _m, o) = setup(30, 1);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
            assert_eq!(o.rank(v, v), 0);
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (g, _m, o) = setup(25, 2);
        for v in g.nodes() {
            let mut seq: Vec<NodeId> = o.init(v).to_vec();
            seq.sort_unstable();
            assert_eq!(seq, g.nodes().collect::<Vec<_>>());
        }
    }

    #[test]
    fn order_is_sorted_by_roundtrip_distance() {
        let (g, m, o) = setup(25, 3);
        for v in g.nodes() {
            let seq = o.init(v);
            for w in seq.windows(2) {
                let ra = m.roundtrip(v, w[0]);
                let rb = m.roundtrip(v, w[1]);
                assert!(ra <= rb, "Init_{v} not sorted by roundtrip distance");
                if ra == rb {
                    let da = m.distance(w[0], v);
                    let db = m.distance(w[1], v);
                    assert!(da <= db);
                    if da == db {
                        assert!(w[0].0 < w[1].0);
                    }
                }
            }
        }
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let (g, _m, o) = setup(20, 4);
        for v in g.nodes() {
            for (rank, &u) in o.init(v).iter().enumerate() {
                assert_eq!(o.rank(v, u), rank);
            }
        }
    }

    #[test]
    fn neighborhood_prefix_and_membership_agree() {
        let (g, _m, o) = setup(36, 5);
        let size = 6;
        for v in g.nodes() {
            let nb = o.neighborhood(v, size);
            assert_eq!(nb.len(), size);
            for u in g.nodes() {
                assert_eq!(nb.contains(&u), o.in_neighborhood(v, u, size));
            }
        }
    }

    #[test]
    fn neighborhood_clamps_to_n() {
        let (_g, _m, o) = setup(10, 6);
        assert_eq!(o.neighborhood(NodeId(0), 999).len(), 10);
    }

    #[test]
    fn comparator_is_total_and_antisymmetric() {
        let (g, m, _o) = setup(15, 7);
        for v in g.nodes() {
            for a in g.nodes() {
                for b in g.nodes() {
                    let ab = roundtrip_closer(&m, v, a, b);
                    let ba = roundtrip_closer(&m, v, b, a);
                    if a == b {
                        assert_eq!(ab, Ordering::Equal);
                    } else {
                        assert_ne!(ab, Ordering::Equal);
                        assert_eq!(ab, ba.reverse());
                    }
                }
            }
        }
    }

    #[test]
    fn level_sizes_are_monotone_and_bounded() {
        let n = 4096;
        for k in 2..=6u32 {
            let mut prev = 0;
            for i in 0..=k {
                let s = RoundtripOrder::level_size(n, i, k);
                assert!(s >= prev);
                assert!(s <= n);
                prev = s;
            }
            assert_eq!(RoundtripOrder::level_size(n, 0, k), 1);
            assert_eq!(RoundtripOrder::level_size(n, k, k), n);
        }
    }

    #[test]
    fn level_size_matches_sqrt_for_k2() {
        assert_eq!(RoundtripOrder::level_size(1024, 1, 2), 32);
        assert_eq!(RoundtripOrder::level_size(100, 1, 2), 10);
    }

    #[test]
    fn ring_neighborhood_is_everything_at_equal_roundtrip() {
        // On a unit-weight directed ring every pair has the same roundtrip
        // distance n, so Init_v is sorted by the tie-breakers; v itself is
        // still first because r(v,v) = 0.
        let g = directed_ring(8, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let o = RoundtripOrder::build(&m);
        for v in g.nodes() {
            assert_eq!(o.init(v)[0], v);
        }
    }
}
