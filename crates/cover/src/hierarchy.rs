//! The hierarchical double-tree cover of Theorem 13 (one cover per scale).

use crate::nodeset::NodeSet;
use crate::partial::{cover_from_balls, BallCover};
use rtr_graph::{DiGraph, Distance, NodeId};
use rtr_metric::{broadcast_rows, DistanceOracle, RowSweepConsumer, SweepRows, SweepSlots};
use rtr_trees::{DoubleTree, TreeRouter};

/// Peak transient ball bits held per level group during
/// [`DoubleTreeCover::build`] (≈ 8 GB of bitsets).  Small instances keep
/// every level in one group — one row sweep, exactly the PR 2 behavior —
/// while n = 10⁵ splits into ⌈levels / ⌊budget / n²⌋⌉ groups instead of
/// materialising `levels · n²` bits at once.
const BALL_GROUP_BUDGET_BITS: u128 = 1 << 36;

/// Globally unique identifier of a double-tree inside a [`DoubleTreeCover`]:
/// the level (scale index) and the tree's index within that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeId {
    /// Level index (0 = smallest scale).
    pub level: u16,
    /// Index of the tree within its level.
    pub index: u32,
}

impl TreeId {
    /// Number of bits needed to write a tree id in a packet header or table,
    /// given the number of levels and the maximum number of trees per level.
    pub fn bits(levels: usize, max_trees: usize) -> usize {
        let lb = usize::BITS as usize - levels.max(2).leading_zeros() as usize;
        let tb = usize::BITS as usize - max_trees.max(2).leading_zeros() as usize;
        lb + tb
    }
}

/// One level of the hierarchy: the sparse cover at scale `2^i`, a double tree
/// per cluster (rooted at the cluster's seed node), and a compact tree router
/// per double tree.
#[derive(Debug, PartialEq, Eq)]
pub struct LevelCover {
    /// The scale `2^i` this level covers.
    pub scale: Distance,
    /// The underlying ball cover (Theorem 10 at radius `scale`).
    pub cover: BallCover,
    /// One double tree per cluster, in cluster order.
    pub trees: Vec<DoubleTree>,
    /// Compact root-to-member routing for each tree's out-component.
    pub routers: Vec<TreeRouter>,
}

impl LevelCover {
    fn from_balls(g: &DiGraph, balls: Vec<NodeSet>, k: u32, scale: Distance) -> Self {
        let cover = cover_from_balls(balls, k, scale);
        let (trees, routers) = Self::build_trees(g, &cover);
        LevelCover { scale, cover, trees, routers }
    }

    /// Builds one double tree + compact router per cluster, fanning the
    /// per-cluster work out over worker threads. Each worker owns a disjoint
    /// `chunks_mut` slice of the output, so the construction is lock-free and
    /// bit-identical for any thread count.
    fn build_trees(g: &DiGraph, cover: &BallCover) -> (Vec<DoubleTree>, Vec<TreeRouter>) {
        let count = cover.clusters.len();
        let mut slots: Vec<Option<(DoubleTree, TreeRouter)>> = (0..count).map(|_| None).collect();
        if count > 0 {
            let threads =
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(count);
            let chunk = count.div_ceil(threads);
            crossbeam::scope(|scope| {
                for (ci, block) in slots.chunks_mut(chunk).enumerate() {
                    scope.spawn(move |_| {
                        for (offset, slot) in block.iter_mut().enumerate() {
                            let cluster_index = ci * chunk + offset;
                            let root = cover.seeds[cluster_index];
                            let dt =
                                DoubleTree::build(g, root, Some(&cover.clusters[cluster_index]));
                            let router = TreeRouter::build(dt.out_tree());
                            *slot = Some((dt, router));
                        }
                    });
                }
            })
            .expect("level-cover tree worker panicked");
        }
        slots.into_iter().map(|s| s.expect("every cluster was built")).unzip()
    }

    /// The home double-tree index of `v` at this level (guaranteed to span
    /// `v`'s whole roundtrip ball of radius `scale`).
    pub fn home(&self, v: NodeId) -> usize {
        self.cover.home[v.index()]
    }

    /// The indices of every double tree containing `v` at this level.
    pub fn membership(&self, v: NodeId) -> &[usize] {
        &self.cover.membership[v.index()]
    }

    /// Largest per-node membership at this level.
    pub fn max_membership(&self) -> usize {
        self.cover.max_membership()
    }
}

/// The full hierarchy of Theorem 13: levels at scales `2, 4, 8, …` up to (and
/// including) the first power of two ≥ `RTDiam(G)`.
///
/// At the top level every node's ball is the whole vertex set, so each node's
/// home tree there spans all of `V` — which is what guarantees that the §4
/// routing scheme and the handshake substrate always terminate.
#[derive(Debug, PartialEq, Eq)]
pub struct DoubleTreeCover {
    k: u32,
    levels: Vec<LevelCover>,
}

/// The precomputed shape of a [`DoubleTreeCover`] build: the doubling scales
/// up to the oracle's diameter bound, chunked into sweep groups by the
/// transient-bit budget.
///
/// Splitting the plan off from the build lets a caller register the **first
/// group's** [`CoverBallSweep`] on a shared [`broadcast_rows`] pass together
/// with other row consumers (orders, landmark extraction) — the suite's
/// single-sweep construction — and run any remaining groups on their own
/// sweeps afterwards.  [`DoubleTreeCover::build`] is exactly that loop with
/// no co-registered consumers.
#[derive(Debug, Clone)]
pub struct CoverSweepPlan {
    k: u32,
    n: usize,
    scales: Vec<Distance>,
    group: usize,
}

impl CoverSweepPlan {
    /// Probes the oracle's diameter bound and lays out the scales and sweep
    /// groups for a sparseness-`k` hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the graph is not strongly connected.
    pub fn new<O: DistanceOracle + ?Sized>(m: &O, k: u32) -> Self {
        assert!(k >= 2, "DoubleTreeCover requires k >= 2");
        assert!(m.is_strongly_connected(), "DoubleTreeCover requires a strongly connected graph");
        let diam = m.roundtrip_diameter_bound().max(1);
        let mut scales: Vec<Distance> = vec![2];
        while *scales.last().expect("nonempty") < diam {
            scales.push(scales.last().expect("nonempty").saturating_mul(2));
        }
        // Every scale's ball of a node is a prefix of the same roundtrip row,
        // so one row sweep collects the balls of a whole *group* of levels at
        // once.  Levels are chunked into groups bounded by a transient-bit
        // budget: collecting all levels in one sweep held `levels · n²` ball
        // bits — tens of gigabytes at n = 10⁵ — while per-group collection
        // caps the peak at `group · n²` bits and pays one extra row sweep per
        // additional group.  Small instances keep every level in a single
        // group, and within a group the result is bit-identical to per-level
        // collection either way.
        let n = m.node_count();
        let group = if n == 0 {
            scales.len().max(1)
        } else {
            ((BALL_GROUP_BUDGET_BITS / (n as u128 * n as u128)).max(1) as usize)
                .min(scales.len().max(1))
        };
        CoverSweepPlan { k, n, scales, group }
    }

    /// The sparseness parameter the plan was laid out for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The scale groups, each the unit of one row sweep.
    pub fn scale_groups(&self) -> std::slice::Chunks<'_, Distance> {
        self.scales.chunks(self.group)
    }

    /// Creates the ball-collecting row consumer for one scale group.
    pub fn ball_sweep(&self, group_scales: &[Distance]) -> CoverBallSweep {
        CoverBallSweep { n: self.n, scales: group_scales.to_vec(), slots: SweepSlots::new(self.n) }
    }
}

/// Row consumer collecting, for one group of scales, every node's roundtrip
/// balls (`{w : r(v, w) ≤ scale}` as bitsets) from the node's roundtrip row.
///
/// Register it on a [`broadcast_rows`] pass (alone or together with other
/// consumers), then turn the collected balls into built levels with
/// [`finish_levels`](Self::finish_levels).
#[derive(Debug)]
pub struct CoverBallSweep {
    n: usize,
    scales: Vec<Distance>,
    slots: SweepSlots<Vec<NodeSet>>,
}

impl CoverBallSweep {
    /// Builds the group's levels (cover, double trees, routers per scale)
    /// from the collected balls.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not visited every source yet.
    pub fn finish_levels(self, g: &DiGraph, k: u32) -> Vec<LevelCover> {
        let _span = rtr_telemetry::span!(
            "cover.finish_levels",
            format_args!("levels={}", self.scales.len())
        );
        let by_node = self.slots.into_vec();
        // Transpose node-major → level-major (moves only).
        let mut by_level: Vec<Vec<NodeSet>> =
            self.scales.iter().map(|_| Vec::with_capacity(self.n)).collect();
        for balls in by_node {
            for (gi, ball) in balls.into_iter().enumerate() {
                by_level[gi].push(ball);
            }
        }
        self.scales
            .iter()
            .zip(by_level)
            .map(|(&scale, balls)| LevelCover::from_balls(g, balls, k, scale))
            .collect()
    }
}

impl RowSweepConsumer for CoverBallSweep {
    fn consume(&self, source: NodeId, rows: &SweepRows<'_>) {
        let balls: Vec<NodeSet> = self
            .scales
            .iter()
            .map(|&d| {
                NodeSet::from_nodes(
                    self.n,
                    rows.roundtrip
                        .iter()
                        .enumerate()
                        .filter(|&(_, &r)| r <= d)
                        .map(|(w, _)| NodeId::from_index(w)),
                )
            })
            .collect();
        self.slots.put(source.index(), balls);
    }
}

impl DoubleTreeCover {
    /// Builds the hierarchy for sparseness parameter `k ≥ 2`.
    ///
    /// Generic over the distance oracle: a dense [`rtr_metric::DistanceMatrix`]
    /// yields exactly the paper's `⌈log₂ RTDiam⌉` levels, while a lazy oracle
    /// uses its (at most 2×) diameter bound, which can add one extra doubling
    /// level at the top — harmless, since a top level whose scale exceeds the
    /// diameter is the full cover either way.
    ///
    /// One [`broadcast_rows`] pass per [`CoverSweepPlan`] scale group
    /// collects the balls; callers sharing the sweep with other consumers
    /// drive the same plan/sweep pieces themselves.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the graph is not strongly connected.
    pub fn build<O: DistanceOracle + ?Sized>(g: &DiGraph, m: &O, k: u32) -> Self {
        let plan = CoverSweepPlan::new(m, k);
        let mut levels: Vec<LevelCover> = Vec::new();
        for (group_index, group_scales) in plan.scale_groups().enumerate() {
            let _span = rtr_telemetry::span!("cover.scale_group", group_index);
            let sweep = plan.ball_sweep(group_scales);
            broadcast_rows(m, &[&sweep]);
            levels.extend(sweep.finish_levels(g, k));
        }
        Self::from_levels(k, levels)
    }

    /// Assembles a hierarchy from already-built levels (the shared-sweep
    /// suite path: levels come out of [`CoverBallSweep::finish_levels`]).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn from_levels(k: u32, levels: Vec<LevelCover>) -> Self {
        assert!(k >= 2, "DoubleTreeCover requires k >= 2");
        DoubleTreeCover { k, levels }
    }

    /// The sparseness parameter.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The levels, smallest scale first.
    pub fn levels(&self) -> &[LevelCover] {
        &self.levels
    }

    /// Number of levels (`⌈log₂ RTDiam(G)⌉`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The double tree identified by `id`.
    pub fn tree(&self, id: TreeId) -> &DoubleTree {
        &self.levels[id.level as usize].trees[id.index as usize]
    }

    /// The compact router of the out-component of tree `id`.
    pub fn router(&self, id: TreeId) -> &TreeRouter {
        &self.levels[id.level as usize].routers[id.index as usize]
    }

    /// The home tree of `v` at `level`.
    pub fn home_tree_id(&self, v: NodeId, level: usize) -> TreeId {
        TreeId { level: level as u16, index: self.levels[level].home(v) as u32 }
    }

    /// Every tree (over all levels) containing `v`.
    pub fn trees_containing(&self, v: NodeId) -> Vec<TreeId> {
        let mut out = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for &ti in level.membership(v) {
                out.push(TreeId { level: li as u16, index: ti as u32 });
            }
        }
        out
    }

    /// Total number of tree memberships of `v` across all levels — the
    /// quantity bounded by `2k·n^{1/k}·⌈log RTDiam⌉` in the paper's storage
    /// analysis.
    pub fn membership_count(&self, v: NodeId) -> usize {
        self.levels.iter().map(|l| l.membership(v).len()).sum()
    }

    /// The best (lowest-level, hence smallest-height) tree containing both `u`
    /// and `v`, together with the cost of routing `u → root → v` inside it.
    ///
    /// This is the "handshake" information `R2(u, v)` of §3.2: the name of the
    /// most convenient double tree for the pair plus the topology-dependent
    /// addresses inside it. Returns `None` only if no common tree exists,
    /// which cannot happen for a strongly connected graph because the top
    /// level's home tree of `u` spans every node.
    pub fn best_common_tree(&self, u: NodeId, v: NodeId) -> Option<(TreeId, Distance)> {
        let mut best: Option<(TreeId, Distance)> = None;
        for (li, level) in self.levels.iter().enumerate() {
            for &ti in level.membership(u) {
                let dt = &level.trees[ti];
                if dt.contains(v) && dt.contains(u) {
                    let cost = dt
                        .route_cost_through_root(u, v)
                        .saturating_add(dt.route_cost_through_root(v, u));
                    let id = TreeId { level: li as u16, index: ti as u32 };
                    if best.is_none_or(|(_, c)| cost < c) {
                        best = Some((id, cost));
                    }
                }
            }
            if best.is_some() {
                // Lower levels have smaller height bounds; once a common tree
                // is found at the smallest possible level, higher levels can
                // only be worse by the (2k-1)·2^i height guarantee, but we
                // still scan one extra level to smooth out seed-choice noise.
                if li + 1 < self.levels.len()
                    && best.is_some_and(|(id, _)| (id.level as usize) < li)
                {
                    break;
                }
            }
        }
        best
    }

    /// The maximum per-node membership over all levels and nodes.
    pub fn max_membership_per_level(&self) -> usize {
        self.levels.iter().map(LevelCover::max_membership).max().unwrap_or(0)
    }

    /// Rebuilds every level's double trees and compact routers on `g`,
    /// keeping the covers themselves — clusters, seeds, home and membership
    /// tables — **anchored** to the metric they were originally built from.
    ///
    /// This is the reference semantics of post-fault degraded serving (and
    /// of [`repair_clusters`](Self::repair_clusters), which must be
    /// bit-identical to it): under edge removals and weight increases every
    /// roundtrip ball can only shrink, so an anchored home cluster still
    /// contains its owner's ball and the covering property survives; what
    /// degrades is the per-tree `RTHeight` (restricted distances grow), which
    /// the verified serving plane measures rather than assumes.
    pub fn rebuild_all_trees(&self, g: &DiGraph) -> DoubleTreeCover {
        let levels = self
            .levels
            .iter()
            .map(|level| {
                let (trees, routers) = LevelCover::build_trees(g, &level.cover);
                LevelCover { scale: level.scale, cover: level.cover.clone(), trees, routers }
            })
            .collect();
        DoubleTreeCover { k: self.k, levels }
    }

    /// Incrementally re-anchors the hierarchy on a mutated graph: rebuilds
    /// the double tree and router of exactly the clusters containing a node
    /// in `touched`, cloning every other cluster's tree verbatim.
    ///
    /// `touched` must include **both endpoints of every fault** applied to
    /// `g` (a superset is fine — extra nodes only cost extra rebuilds). A
    /// cluster containing no touched node induces the same subgraph before
    /// and after the faults, and tree construction is deterministic, so the
    /// result is bit-identical to the full
    /// [`rebuild_all_trees`](Self::rebuild_all_trees) on `g`.
    ///
    /// Returns the repaired hierarchy and the number of cluster trees that
    /// were actually rebuilt (summed over levels).
    pub fn repair_clusters(&self, g: &DiGraph, touched: &[NodeId]) -> (DoubleTreeCover, usize) {
        let _span = rtr_telemetry::span!("cover.repair", format_args!("touched={}", touched.len()));
        let mut reanchored = 0usize;
        let levels = self
            .levels
            .iter()
            .map(|level| {
                let mut hit = vec![false; level.cover.clusters.len()];
                for &v in touched {
                    for &ci in level.membership(v) {
                        hit[ci] = true;
                    }
                }
                let (trees, routers) = level
                    .trees
                    .iter()
                    .zip(&level.routers)
                    .enumerate()
                    .map(|(ci, (tree, router))| {
                        if hit[ci] {
                            reanchored += 1;
                            let dt = DoubleTree::build(
                                g,
                                level.cover.seeds[ci],
                                Some(&level.cover.clusters[ci]),
                            );
                            let router = TreeRouter::build(dt.out_tree());
                            (dt, router)
                        } else {
                            (tree.clone(), router.clone())
                        }
                    })
                    .unzip();
                LevelCover { scale: level.scale, cover: level.cover.clone(), trees, routers }
            })
            .collect();
        (DoubleTreeCover { k: self.k, levels }, reanchored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::roundtrip_ball;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};
    use rtr_metric::DistanceMatrix;

    fn build(n: usize, seed: u64, k: u32) -> (DiGraph, DistanceMatrix, DoubleTreeCover) {
        let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
        let m = DistanceMatrix::build(&g);
        let c = DoubleTreeCover::build(&g, &m, k);
        (g, m, c)
    }

    #[test]
    fn top_level_home_tree_spans_everything() {
        let (g, _m, c) = build(40, 1, 2);
        let top = c.level_count() - 1;
        for v in g.nodes() {
            let id = c.home_tree_id(v, top);
            let tree = c.tree(id);
            assert_eq!(tree.len(), g.node_count(), "top home tree of {v} does not span V");
        }
    }

    #[test]
    fn theorem_13_property_1_home_tree_contains_ball() {
        let (g, m, c) = build(36, 2, 2);
        for (li, level) in c.levels().iter().enumerate() {
            for v in g.nodes() {
                let ball = roundtrip_ball(&m, v, level.scale);
                let id = c.home_tree_id(v, li);
                let tree = c.tree(id);
                for w in ball.iter() {
                    assert!(
                        tree.contains(w),
                        "level {li}: home tree of {v} misses {w} from its ball"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_13_property_2_rt_height_bound() {
        let (_g, _m, c) = build(36, 3, 2);
        let k = 2u64;
        for level in c.levels() {
            for tree in &level.trees {
                assert!(
                    tree.rt_height() <= (2 * k - 1) * level.scale,
                    "RTHeight {} exceeds (2k-1)*scale = {}",
                    tree.rt_height(),
                    (2 * k - 1) * level.scale
                );
            }
        }
    }

    #[test]
    fn theorem_13_property_3_membership_bound() {
        let (g, _m, c) = build(48, 4, 2);
        let n = g.node_count() as f64;
        let bound = (2.0 * 2.0 * n.powf(0.5)).ceil() as usize;
        for level in c.levels() {
            for v in g.nodes() {
                assert!(level.membership(v).len() <= bound);
            }
        }
    }

    #[test]
    fn home_tree_contains_owner_at_every_level() {
        let (g, _m, c) = build(30, 5, 3);
        for li in 0..c.level_count() {
            for v in g.nodes() {
                let id = c.home_tree_id(v, li);
                assert!(c.tree(id).contains(v));
            }
        }
    }

    #[test]
    fn best_common_tree_exists_and_cost_bounded_by_heights() {
        let (g, m, c) = build(32, 6, 2);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let (id, cost) = c.best_common_tree(u, v).expect("common tree must exist");
                let tree = c.tree(id);
                assert!(tree.contains(u) && tree.contains(v));
                assert!(cost <= 4 * tree.rt_height());
                // The handshake cost bounds a real roundtrip, so it is at
                // least the true roundtrip distance.
                assert!(cost >= m.roundtrip(u, v));
            }
        }
    }

    #[test]
    fn scales_double_and_reach_the_diameter() {
        let (_g, m, c) = build(40, 7, 2);
        let scales: Vec<Distance> = c.levels().iter().map(|l| l.scale).collect();
        for w in scales.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert!(*scales.last().unwrap() >= m.roundtrip_diameter());
        assert_eq!(scales[0], 2);
    }

    #[test]
    fn storage_accounting_is_polylog_times_sqrt_n_for_k2() {
        // Experiment E7's headline: total memberships per node is
        // O(k n^{1/k} log RTDiam). Check the explicit bound.
        let (g, m, c) = build(64, 8, 2);
        let n = g.node_count() as f64;
        let levels = (m.roundtrip_diameter() as f64).log2().ceil() as usize + 1;
        let bound = (2.0 * 2.0 * n.sqrt()).ceil() as usize * levels;
        for v in g.nodes() {
            assert!(c.membership_count(v) <= bound);
        }
    }

    #[test]
    fn works_on_grid_graphs() {
        let g = bidirected_grid(5, 5, 9).unwrap();
        let m = DistanceMatrix::build(&g);
        let c = DoubleTreeCover::build(&g, &m, 2);
        assert!(c.level_count() >= 2);
        let top = c.level_count() - 1;
        for v in g.nodes() {
            assert_eq!(c.tree(c.home_tree_id(v, top)).len(), g.node_count());
        }
    }

    #[test]
    fn repair_clusters_is_bit_identical_to_anchored_rebuild() {
        use rtr_graph::FaultPlan;
        let mut exercised = 0usize;
        for seed in 0..6u64 {
            let (g0, _m, c0) = build(36, seed + 20, 2);
            let candidates: Vec<(NodeId, NodeId)> =
                g0.nodes().flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to))).collect();
            let plan = FaultPlan::mixed_from_candidates(&candidates, 4, 2, 3, seed ^ 0x51c3);
            let mut g1 = g0.clone();
            let applied = plan.apply(&mut g1);
            if !g1.is_strongly_connected() {
                continue;
            }
            let touched: Vec<NodeId> = applied.faults.iter().flat_map(|f| [f.from, f.to]).collect();
            let (repaired, reanchored) = c0.repair_clusters(&g1, &touched);
            let reference = c0.rebuild_all_trees(&g1);
            assert_eq!(repaired, reference, "seed {seed}: repair diverged from anchored rebuild");
            let total: usize = c0.levels().iter().map(|l| l.trees.len()).sum();
            assert!(reanchored <= total);
            assert!(
                reanchored > 0,
                "seed {seed}: no cluster was hit by {} faults",
                applied.faults.len()
            );
            exercised += 1;
        }
        assert!(exercised > 0, "every seeded plan disconnected the graph");
    }

    #[test]
    fn tree_id_bit_accounting() {
        assert!(TreeId::bits(16, 1024) <= 16);
        assert!(TreeId::bits(1, 1) >= 2);
    }
}
