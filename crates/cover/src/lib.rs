//! # rtr-cover — sparse roundtrip covers and double-tree covers
//!
//! Implements the cover machinery of paper §4:
//!
//! * [`partial_cover`] — Algorithm *PartialCover(R, k)* (Fig. 7), the
//!   Awerbuch–Peleg partial-cover subroutine generalized to an arbitrary
//!   distance metric over a directed graph.
//! * [`cover_balls`] — Algorithm *Cover(G, k, d)* (Fig. 8): repeatedly calls
//!   `PartialCover` until every ball `N̂ᵈ(v)` is subsumed by some output
//!   cluster, yielding the guarantees of **Theorem 10**: every ball is
//!   contained in a cluster, cluster radius ≤ (2k−1)·d, and every vertex is in
//!   at most 2k·n^{1/k} clusters.
//! * [`DoubleTreeCover`] — the hierarchy of **Theorem 13**: one cover per
//!   scale `2^i` for `i = 1 … ⌈log RTDiam(G)⌉`, a [`rtr_trees::DoubleTree`]
//!   per cluster, a *home double-tree* per node and level, and per-tree
//!   compact tree routers.
//! * [`CoverStats`] — the measured quantities (per-node membership, radius
//!   blow-up) that experiment E7 compares against the theorem's bounds.
//!
//! All constructions are deterministic given the input graph.
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is a mid-pipeline substrate: its hierarchies back
//! the §3/§4 schemes in `rtr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hierarchy;
mod nodeset;
mod partial;
mod stats;

pub use hierarchy::{CoverBallSweep, CoverSweepPlan, DoubleTreeCover, LevelCover, TreeId};
pub use nodeset::NodeSet;
pub use partial::{cover_balls, cover_from_balls, partial_cover, BallCover, PartialCoverOutput};
pub use stats::CoverStats;
