//! A compact bitset over node ids, used heavily by the cover constructions.

use rtr_graph::NodeId;

/// A fixed-universe set of [`NodeId`]s backed by a bit vector.
///
/// The cover algorithms of §4 repeatedly intersect and merge clusters; doing
/// this on sorted vectors would dominate the construction time, so clusters
/// are manipulated as bitsets and only converted to sorted vectors at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    n: usize,
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet { n, words: vec![0; n.div_ceil(64)], len: 0 }
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(n: usize, nodes: I) -> Self {
        let mut s = NodeSet::new(n);
        for v in nodes {
            s.insert(v);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        assert!(v.index() < self.n, "node outside universe");
        self.words[v.index() / 64] & (1u64 << (v.index() % 64)) != 0
    }

    /// Inserts `v`; returns true if it was newly added.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        assert!(v.index() < self.n, "node outside universe");
        let w = &mut self.words[v.index() / 64];
        let mask = 1u64 << (v.index() % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        assert!(v.index() < self.n, "node outside universe");
        let w = &mut self.words[v.index() / 64];
        let mask = 1u64 << (v.index() % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// True when the two sets share at least one member.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True when every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(NodeId::from_index(wi * 64 + b))
                }
            })
        })
    }

    /// Members as a sorted vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(5)));
        assert!(!s.insert(NodeId(5)));
        assert!(s.contains(NodeId(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId(5)));
        assert!(!s.remove(NodeId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let nodes = [3u32, 64, 65, 99, 0, 17];
        let s = NodeSet::from_nodes(100, nodes.iter().map(|&i| NodeId(i)));
        let got = s.to_vec();
        let mut want: Vec<NodeId> = nodes.iter().map(|&i| NodeId(i)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn intersection_and_subset() {
        let a = NodeSet::from_nodes(200, [NodeId(1), NodeId(100), NodeId(150)]);
        let b = NodeSet::from_nodes(200, [NodeId(2), NodeId(100)]);
        let c = NodeSet::from_nodes(200, [NodeId(100)]);
        assert!(a.intersects(&b));
        assert!(c.is_subset_of(&a));
        assert!(c.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        let d = NodeSet::from_nodes(200, [NodeId(7)]);
        assert!(!a.intersects(&d));
    }

    #[test]
    fn union_counts_correctly() {
        let mut a = NodeSet::from_nodes(128, [NodeId(0), NodeId(64)]);
        let b = NodeSet::from_nodes(128, [NodeId(64), NodeId(127)]);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(NodeId(127)));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let s = NodeSet::new(10);
        s.contains(NodeId(10));
    }
}
