//! Algorithms *PartialCover* (Fig. 7) and *Cover* (Fig. 8), generalized to the
//! roundtrip metric (Theorem 10).

use crate::nodeset::NodeSet;
use rtr_graph::{Distance, NodeId};
use rtr_metric::DistanceOracle;

/// Output of one invocation of [`partial_cover`].
#[derive(Debug, Clone)]
pub struct PartialCoverOutput {
    /// The merged clusters `DT`. For each: the merged node set `Y̅`, the
    /// indices (into the input collection) of the clusters it subsumes
    /// (`𝒴`, which join `DR`), and the index of the *seed* cluster `S₀`
    /// whose center certifies the radius bound of Lemma 11(4).
    pub merged: Vec<MergedCluster>,
    /// Indices of all input clusters placed into `DR` (the union of the
    /// per-cluster `subsumed` lists).
    pub covered: Vec<usize>,
    /// Indices of all input clusters removed from `U` during this invocation
    /// (the union of the `𝒵` sets). A superset of `covered`: clusters in
    /// `removed \ covered` stay in `R` for the next *Cover* iteration.
    pub removed: Vec<usize>,
}

/// One merged cluster produced by [`partial_cover`].
#[derive(Debug, Clone)]
pub struct MergedCluster {
    /// The merged node set `Y̅ = ⋃_{S ∈ 𝒴} S`.
    pub nodes: NodeSet,
    /// Indices of the input clusters whose union forms this cluster (`𝒴`).
    pub subsumed: Vec<usize>,
    /// Index of the seed cluster `S₀` selected on line 3 of Fig. 7.
    pub seed: usize,
}

/// Algorithm *PartialCover(R, k)* of Fig. 7.
///
/// `r` is the current collection of clusters (bitsets over the node universe);
/// `total_r` is `|R|` as used in the termination condition of line 9 — the
/// size of the collection handed to *this* invocation (callers pass
/// `r.len()`; it is a parameter so tests can exercise the condition
/// explicitly). `k > 1` is the sparseness parameter.
///
/// The three properties of Lemma 11 hold for the output:
/// 1. every cluster placed in `DR` is contained in some merged cluster,
/// 2. merged clusters are pairwise disjoint,
/// 3. `|DR| ≥ |R|^{1−1/k}` (at least when `R` is nonempty), and
/// 4. the radius of each merged cluster, measured from the center of its seed
///    cluster, grows by at most a factor `2k − 1`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn partial_cover(r: &[NodeSet], total_r: usize, k: u32) -> PartialCoverOutput {
    assert!(k >= 2, "PartialCover requires k >= 2");
    let threshold_base = (total_r.max(1) as f64).powf(1.0 / k as f64);

    // Inverted node → cluster index.  Each growth round below only touches
    // the clusters that actually intersect the nodes the seed set gained last
    // round, instead of re-scanning every alive cluster; and because removing
    // a merged set kills *every* cluster containing each of its nodes, each
    // node's cluster list is scanned at most once per invocation.  Total work
    // is linear in Σ|S| where the old scan was quadratic in |R| — the
    // difference between minutes and milliseconds on the small-scale levels
    // (mostly singleton balls) of a large hierarchy.
    let universe = r.first().map(NodeSet::universe).unwrap_or(0);
    let mut by_node: Vec<Vec<u32>> = vec![Vec::new(); universe];
    for (i, s) in r.iter().enumerate() {
        for v in s.iter() {
            by_node[v.index()].push(i as u32);
        }
    }

    let mut alive: Vec<bool> = vec![true; r.len()];
    let mut in_z: Vec<bool> = vec![false; r.len()];
    let mut merged = Vec::new();
    let mut covered = Vec::new();
    let mut removed = Vec::new();

    // Line 3 of each round selects an arbitrary cluster S0 ∈ U (smallest
    // alive index for determinism).  Seeds are consumed in ascending order —
    // everything below the cursor is dead — so the scan resumes at the
    // cursor instead of restarting from zero.
    let mut seed = 0usize;
    while seed < r.len() {
        if !alive[seed] {
            seed += 1;
            continue;
        }

        // Lines 4-9: grow Z until |Z| ≤ |R|^{1/k} |Y|.  Z is monotone round
        // over round (Y̅ only gains nodes and U is fixed during the growth),
        // so each round extends the previous Z by scanning only the cluster
        // lists of the nodes Y̅ gained last round; `z_list[..y_len]` is
        // always the previous round's Z.
        let mut z_list: Vec<usize> = vec![seed];
        in_z[seed] = true;
        let mut z_bar: NodeSet = r[seed].clone();
        let mut frontier: Vec<_> = r[seed].iter().collect();
        let (y_len, y_bar) = loop {
            let y_len = z_list.len();
            let y_bar = z_bar.clone();
            // Z ← {S ∈ U | S ∩ Y̅ ≠ ∅}: every new member contains one of the
            // frontier nodes.
            for v in std::mem::take(&mut frontier) {
                for &ci in &by_node[v.index()] {
                    let ci = ci as usize;
                    if alive[ci] && !in_z[ci] {
                        in_z[ci] = true;
                        z_list.push(ci);
                        for w in r[ci].iter() {
                            if z_bar.insert(w) {
                                frontier.push(w);
                            }
                        }
                    }
                }
            }
            if (z_list.len() as f64) <= threshold_base * (y_len as f64) {
                break (y_len, y_bar);
            }
        };

        // Lines 10-12: U ← U \ Z; DT ← DT ∪ {Y̅}; DR ← DR ∪ 𝒴.
        let mut y_script = z_list[..y_len].to_vec();
        y_script.sort_unstable();
        for &i in &z_list {
            alive[i] = false;
            in_z[i] = false;
            removed.push(i);
        }
        covered.extend(y_script.iter().copied());
        merged.push(MergedCluster { nodes: y_bar, subsumed: y_script, seed });
    }

    covered.sort_unstable();
    removed.sort_unstable();
    PartialCoverOutput { merged, covered, removed }
}

/// A sparse cover of all roundtrip balls of radius `d` (Theorem 10 with the
/// roundtrip metric), produced by [`cover_balls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallCover {
    /// Ball radius `d` the cover was built for.
    pub radius: Distance,
    /// Sparseness parameter `k`.
    pub k: u32,
    /// The output clusters (each a sorted node list).
    pub clusters: Vec<Vec<NodeId>>,
    /// For each cluster, the node whose seed ball certifies the radius bound;
    /// used as the cluster's double-tree root.
    pub seeds: Vec<NodeId>,
    /// `home[v]`: index of a cluster that contains the whole ball `N̂ᵈ(v)`.
    pub home: Vec<usize>,
    /// `membership[v]`: indices of every cluster containing `v`.
    pub membership: Vec<Vec<usize>>,
}

impl BallCover {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Largest number of clusters any single vertex belongs to.
    pub fn max_membership(&self) -> usize {
        self.membership.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The cluster that is `v`'s home.
    pub fn home_cluster(&self, v: NodeId) -> &[NodeId] {
        &self.clusters[self.home[v.index()]]
    }
}

/// The roundtrip ball `N̂ᵈ(v) = {w | r(v, w) ≤ d}`.
///
/// Consumes one roundtrip row of the oracle (two Dijkstras on a lazy oracle,
/// a slice read on the dense matrix).
pub fn roundtrip_ball<O: DistanceOracle + ?Sized>(m: &O, v: NodeId, d: Distance) -> NodeSet {
    let n = m.node_count();
    let row = m.roundtrip_row(v);
    NodeSet::from_nodes(n, (0..n).map(NodeId::from_index).filter(|&w| row[w.index()] <= d))
}

/// Algorithm *Cover(G, k, d)* of Fig. 8 instantiated with the roundtrip
/// metric: starts from `R = {N̂ᵈ(v) | v ∈ V}` and repeatedly applies
/// [`partial_cover`] until every ball is subsumed.
///
/// The output satisfies Theorem 10: every node's ball is contained in its
/// `home` cluster; the cluster radius (from the seed node, within the induced
/// subgraph) is at most `(2k − 1)·d`; and no vertex appears in more than
/// `2k·n^{1/k}` clusters.
///
/// # Panics
///
/// Panics if `k < 2` or the graph underlying `m` is not strongly connected
/// (some roundtrip distance is infinite).
pub fn cover_balls<O: DistanceOracle + ?Sized>(m: &O, k: u32, d: Distance) -> BallCover {
    assert!(k >= 2, "Cover requires k >= 2");
    assert!(m.is_strongly_connected(), "Cover requires a strongly connected graph");
    let n = m.node_count();

    // R ← {N̂ᵈ(v) | v ∈ V}. Each ball costs one roundtrip row — the dominant
    // cost on a lazy oracle — so the collection fans out over worker threads
    // owning disjoint node blocks (deterministic: every ball depends only on
    // its own row, and caching oracles are internally synchronised).
    let mut slots: Vec<Option<NodeSet>> = (0..n).map(|_| None).collect();
    rtr_graph::par::par_blocks_mut(&mut slots, |start, block| {
        for (offset, slot) in block.iter_mut().enumerate() {
            let v = NodeId::from_index(start + offset);
            *slot = Some(roundtrip_ball(m, v, d));
        }
    });
    let balls = slots.into_iter().map(|s| s.expect("every ball was collected")).collect();
    cover_from_balls(balls, k, d)
}

/// *Cover* from precomputed balls: `balls[i]` must be the roundtrip ball
/// `N̂ᵈ(vᵢ)` of node `i` at radius `d`.
///
/// This is the entry point `DoubleTreeCover` uses to build **every level from
/// one row sweep**: all scales' balls of a node derive from the same
/// roundtrip row, so fetching the row once and slicing it per scale replaces
/// one sweep per level — the difference between `O(levels · n)` and `O(n)`
/// Dijkstra pairs on a lazy oracle.
///
/// # Panics
///
/// Panics if `k < 2` or some ball does not contain its own node (which a
/// strongly connected roundtrip metric guarantees).
pub fn cover_from_balls(balls: Vec<NodeSet>, k: u32, d: Distance) -> BallCover {
    assert!(k >= 2, "Cover requires k >= 2");
    let n = balls.len();
    // Owners and ball sets kept as two parallel vectors so each *Cover*
    // iteration can hand `partial_cover` the alive sets directly — the old
    // tupled layout re-cloned every alive ball (up to n·n bits) per
    // iteration just to produce a borrowable slice.
    let mut alive_owners: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut alive_balls: Vec<NodeSet> = balls;
    for (v, b) in alive_owners.iter().zip(&alive_balls) {
        assert!(b.contains(*v), "ball of {v} does not contain its owner");
    }

    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut seeds: Vec<NodeId> = Vec::new();
    let mut home: Vec<usize> = vec![usize::MAX; n];

    // while R ≠ ∅: (DR, DT) ← PartialCover(R, k); R ← R \ DR; T ← T ∪ DT.
    while !alive_balls.is_empty() {
        let out = partial_cover(&alive_balls, alive_balls.len(), k);
        debug_assert!(!out.covered.is_empty(), "PartialCover must make progress");

        for mc in &out.merged {
            let cluster_id = clusters.len();
            clusters.push(mc.nodes.to_vec());
            seeds.push(alive_owners[mc.seed]);
            for &li in &mc.subsumed {
                let owner = alive_owners[li];
                home[owner.index()] = cluster_id;
            }
        }

        let covered: std::collections::HashSet<usize> = out.covered.iter().copied().collect();
        let mut next_owners = Vec::with_capacity(alive_owners.len() - covered.len());
        let mut next_balls = Vec::with_capacity(alive_owners.len() - covered.len());
        for (i, (owner, ball)) in alive_owners.into_iter().zip(alive_balls).enumerate() {
            if !covered.contains(&i) {
                next_owners.push(owner);
                next_balls.push(ball);
            }
        }
        alive_owners = next_owners;
        alive_balls = next_balls;
    }

    let mut membership: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, cluster) in clusters.iter().enumerate() {
        for &v in cluster {
            membership[v.index()].push(ci);
        }
    }

    debug_assert!(home.iter().all(|&h| h != usize::MAX));
    BallCover { radius: d, k, clusters, seeds, home, membership }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{bidirected_grid, directed_ring, strongly_connected_gnp, Family};
    use rtr_metric::ClusterMetric;
    use rtr_metric::DistanceMatrix;

    fn check_theorem_10(g: &rtr_graph::DiGraph, m: &DistanceMatrix, k: u32, d: Distance) {
        let cover = cover_balls(m, k, d);
        let n = m.node_count();

        // Property 1: the home cluster contains the whole ball.
        for v in g.nodes() {
            let ball = roundtrip_ball(m, v, d);
            let home = NodeSet::from_nodes(n, cover.home_cluster(v).iter().copied());
            assert!(ball.is_subset_of(&home), "ball of {v} not inside its home cluster");
        }

        // Property 2: cluster radius from the seed, in the induced subgraph,
        // is at most (2k-1) d.
        for (ci, cluster) in cover.clusters.iter().enumerate() {
            let cm = ClusterMetric::build(g, cluster);
            assert!(cm.is_strongly_connected(), "cluster {ci} not strongly connected");
            let seed = cover.seeds[ci];
            let rad = cm.rt_radius_of(seed);
            assert!(
                rad <= (2 * k as u64 - 1) * d,
                "cluster {ci}: radius {rad} exceeds (2k-1)d = {}",
                (2 * k as u64 - 1) * d
            );
        }

        // Property 3: membership bound 2k n^{1/k}.
        let bound = (2.0 * k as f64 * (n as f64).powf(1.0 / k as f64)).ceil() as usize;
        assert!(
            cover.max_membership() <= bound,
            "membership {} exceeds 2k n^(1/k) = {}",
            cover.max_membership(),
            bound
        );
    }

    #[test]
    fn theorem_10_on_random_digraphs() {
        for seed in 0..3 {
            let g = strongly_connected_gnp(48, 0.08, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let diam = m.roundtrip_diameter();
            for k in [2u32, 3] {
                for d in [1, diam / 4 + 1, diam / 2 + 1, diam] {
                    check_theorem_10(&g, &m, k, d);
                }
            }
        }
    }

    #[test]
    fn theorem_10_on_grid_and_ring() {
        let g = bidirected_grid(6, 6, 1).unwrap();
        let m = DistanceMatrix::build(&g);
        check_theorem_10(&g, &m, 2, m.roundtrip_diameter() / 3 + 1);

        let g = directed_ring(24, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        // On a ring every ball of radius < cycle length is a singleton and the
        // full-diameter ball is everything.
        check_theorem_10(&g, &m, 2, 1);
        check_theorem_10(&g, &m, 2, m.roundtrip_diameter());
    }

    #[test]
    fn theorem_10_across_families() {
        for family in Family::ALL {
            let g = family.generate(36, 7).unwrap();
            let m = DistanceMatrix::build(&g);
            let d = m.roundtrip_diameter() / 4 + 1;
            check_theorem_10(&g, &m, 2, d);
        }
    }

    #[test]
    fn partial_cover_merged_clusters_are_disjoint() {
        let g = strongly_connected_gnp(40, 0.1, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let d = m.roundtrip_diameter() / 3 + 1;
        let balls: Vec<NodeSet> = g.nodes().map(|v| roundtrip_ball(&m, v, d)).collect();
        let out = partial_cover(&balls, balls.len(), 2);
        for (i, a) in out.merged.iter().enumerate() {
            for b in &out.merged[i + 1..] {
                assert!(!a.nodes.intersects(&b.nodes), "merged clusters overlap");
            }
        }
    }

    #[test]
    fn partial_cover_subsumed_clusters_are_contained() {
        let g = strongly_connected_gnp(30, 0.12, 9).unwrap();
        let m = DistanceMatrix::build(&g);
        let d = m.roundtrip_diameter() / 2;
        let balls: Vec<NodeSet> = g.nodes().map(|v| roundtrip_ball(&m, v, d)).collect();
        let out = partial_cover(&balls, balls.len(), 3);
        for mc in &out.merged {
            for &i in &mc.subsumed {
                assert!(balls[i].is_subset_of(&mc.nodes));
            }
            assert!(mc.subsumed.contains(&mc.seed));
        }
    }

    #[test]
    fn partial_cover_covers_enough_clusters() {
        // Lemma 11 property 3: |DR| ≥ |R|^{1 - 1/k}.
        let g = strongly_connected_gnp(50, 0.07, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        let d = m.roundtrip_diameter() / 4 + 1;
        let balls: Vec<NodeSet> = g.nodes().map(|v| roundtrip_ball(&m, v, d)).collect();
        for k in [2u32, 3, 4] {
            let out = partial_cover(&balls, balls.len(), k);
            let lower = (balls.len() as f64).powf(1.0 - 1.0 / k as f64).floor() as usize;
            assert!(
                out.covered.len() >= lower,
                "covered {} < |R|^(1-1/k) = {lower}",
                out.covered.len()
            );
        }
    }

    #[test]
    fn cover_iteration_count_is_bounded() {
        // Theorem 10's proof bounds the number of Cover iterations by
        // 2k n^{1/k}; since each iteration produces at least one cluster per
        // node at most once, the per-node membership check in
        // `check_theorem_10` covers this; here we simply check the total
        // cluster count is sane (≤ n, since every cluster subsumes ≥ 1 ball
        // and each ball is subsumed exactly once... clusters ≤ n).
        let g = strongly_connected_gnp(40, 0.1, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        let cover = cover_balls(&m, 2, m.roundtrip_diameter() / 2);
        assert!(cover.cluster_count() <= g.node_count());
    }

    #[test]
    fn roundtrip_ball_contains_owner_and_respects_radius() {
        let g = strongly_connected_gnp(25, 0.15, 6).unwrap();
        let m = DistanceMatrix::build(&g);
        for v in g.nodes() {
            let ball = roundtrip_ball(&m, v, 7);
            assert!(ball.contains(v));
            for w in ball.iter() {
                assert!(m.roundtrip(v, w) <= 7);
            }
            for w in g.nodes() {
                if m.roundtrip(v, w) <= 7 {
                    assert!(ball.contains(w));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn cover_rejects_k1() {
        let g = strongly_connected_gnp(10, 0.3, 1).unwrap();
        let m = DistanceMatrix::build(&g);
        cover_balls(&m, 1, 5);
    }
}
