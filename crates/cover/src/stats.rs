//! Measured cover statistics, reported by experiment E7 against the bounds of
//! Theorems 10 and 13.

use crate::hierarchy::DoubleTreeCover;
use rtr_graph::NodeId;

/// Aggregate measurements of a [`DoubleTreeCover`].
#[derive(Debug, Clone)]
pub struct CoverStats {
    /// Number of nodes of the underlying graph.
    pub n: usize,
    /// Sparseness parameter `k`.
    pub k: u32,
    /// Number of levels (scales).
    pub levels: usize,
    /// Largest per-node, per-level tree membership (bounded by `2k·n^{1/k}`).
    pub max_membership_per_level: usize,
    /// Average per-node, per-level membership.
    pub avg_membership_per_level: f64,
    /// Largest total membership per node across all levels.
    pub max_total_membership: usize,
    /// Largest ratio `RTHeight(tree) / scale` over all trees and levels
    /// (bounded by `2k − 1`).
    pub max_height_blowup: f64,
    /// Total number of trees over all levels.
    pub total_trees: usize,
}

impl CoverStats {
    /// Measures `cover` over a graph with `n` nodes.
    pub fn measure(cover: &DoubleTreeCover, n: usize) -> Self {
        let levels = cover.level_count();
        let mut max_membership_per_level = 0usize;
        let mut membership_sum = 0usize;
        let mut membership_samples = 0usize;
        let mut max_total = 0usize;
        let mut max_blowup = 0.0f64;
        let mut total_trees = 0usize;

        for level in cover.levels() {
            total_trees += level.trees.len();
            for vi in 0..n {
                let v = NodeId::from_index(vi);
                let m = level.membership(v).len();
                max_membership_per_level = max_membership_per_level.max(m);
                membership_sum += m;
                membership_samples += 1;
            }
            for tree in &level.trees {
                if level.scale > 0 {
                    let blowup = tree.rt_height() as f64 / level.scale as f64;
                    max_blowup = max_blowup.max(blowup);
                }
            }
        }
        for vi in 0..n {
            let v = NodeId::from_index(vi);
            max_total = max_total.max(cover.membership_count(v));
        }

        CoverStats {
            n,
            k: cover.k(),
            levels,
            max_membership_per_level,
            avg_membership_per_level: membership_sum as f64 / membership_samples.max(1) as f64,
            max_total_membership: max_total,
            max_height_blowup: max_blowup,
            total_trees,
        }
    }

    /// The theoretical per-level membership bound `2k·n^{1/k}`.
    pub fn membership_bound(&self) -> f64 {
        2.0 * self.k as f64 * (self.n as f64).powf(1.0 / self.k as f64)
    }

    /// The theoretical height blow-up bound `2k − 1`.
    pub fn height_blowup_bound(&self) -> f64 {
        2.0 * self.k as f64 - 1.0
    }

    /// True when every measured quantity respects its theoretical bound.
    pub fn within_bounds(&self) -> bool {
        (self.max_membership_per_level as f64) <= self.membership_bound().ceil()
            && self.max_height_blowup <= self.height_blowup_bound() + 1e-9
    }

    /// Renders the stats as a JSON object for experiment output files
    /// (hand-rolled; the workspace vendors no serialization crate).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"k\":{},\"levels\":{},\"max_membership_per_level\":{},\
             \"avg_membership_per_level\":{},\"max_total_membership\":{},\
             \"max_height_blowup\":{},\"total_trees\":{}}}",
            self.n,
            self.k,
            self.levels,
            self.max_membership_per_level,
            self.avg_membership_per_level,
            self.max_total_membership,
            self.max_height_blowup,
            self.total_trees
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::strongly_connected_gnp;
    use rtr_metric::DistanceMatrix;

    #[test]
    fn stats_respect_theoretical_bounds() {
        for (n, k, seed) in [(32, 2u32, 1u64), (48, 3, 2), (40, 2, 3)] {
            let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let cover = DoubleTreeCover::build(&g, &m, k);
            let stats = CoverStats::measure(&cover, n);
            assert!(stats.within_bounds(), "bounds violated: {stats:?}");
            assert_eq!(stats.levels, cover.level_count());
            assert!(stats.avg_membership_per_level <= stats.max_membership_per_level as f64);
            assert!(stats.total_trees > 0);
        }
    }

    #[test]
    fn stats_serialize_for_experiment_output() {
        let g = strongly_connected_gnp(20, 0.2, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        let cover = DoubleTreeCover::build(&g, &m, 2);
        let stats = CoverStats::measure(&cover, 20);
        let json = stats.to_json();
        assert!(json.contains("max_height_blowup"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
