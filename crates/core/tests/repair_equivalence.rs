//! Property test: incremental repair ≡ full rebuild, bit for bit.
//!
//! After a seeded fault plan mutates the graph, a [`SparseRepairKit::repair`]
//! — which recomputes only dirty rows, dirty prefixes and hit clusters —
//! must produce exactly the kit that [`SparseRepairKit::rebuild_reference`]
//! builds the expensive way, and the schemes minted from both kits must
//! agree on every table stat and every all-pairs simulator report (including
//! which pairs *fail* on the degraded substrate). Small `n`, many seeds.

use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseRepairKit, SparseSuiteParams};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::{FaultPlan, NodeId};
use rtr_metric::{CachedSubsetOracle, RowInvalidation};
use rtr_sim::{RoundtripRouting, Simulator};

fn all_edges(g: &rtr_graph::DiGraph) -> Vec<(NodeId, NodeId)> {
    g.nodes().flat_map(|u| g.out_edges(u).iter().map(move |e| (u, e.to))).collect()
}

#[test]
fn repaired_kit_is_bit_identical_to_reference_rebuild() {
    let mut exercised = 0usize;
    for seed in 0..10u64 {
        let g0 = strongly_connected_gnp(34, 0.14, seed).unwrap();
        let m0 = CachedSubsetOracle::new(&g0);
        let params = SparseSuiteParams::default();
        let kit0 = SparseRepairKit::build(&g0, &m0, params);

        let plan = FaultPlan::mixed_from_candidates(&all_edges(&g0), 5, 2, 3, seed ^ 0xbeef);
        let mut g1 = g0.clone();
        let applied = plan.apply(&mut g1);
        if !g1.is_strongly_connected() {
            continue; // this plan severed the graph; chaos serving needs SC
        }
        let inv = RowInvalidation::for_application(&m0, &applied);
        let m1 = CachedSubsetOracle::rebased(&m0, &g1, &inv);
        let (kit1, stats) = kit0.repair(&g1, &m1, &inv, &applied);

        // The repair touched only the dirty nodes' rows…
        assert_eq!(stats.dirty_nodes, inv.dirty_node_count());
        assert!(
            stats.rows_recomputed <= 2 * inv.dirty_node_count() as u64,
            "seed {seed}: repair computed {} rows for {} dirty nodes",
            stats.rows_recomputed,
            inv.dirty_node_count()
        );

        // …and still matches the from-scratch reference exactly.
        let m1_fresh = CachedSubsetOracle::new(&g1);
        let reference = kit0.rebuild_reference(&g1, &m1_fresh);
        assert_eq!(kit1.landmark(), reference.landmark(), "seed {seed}: landmark diverged");
        assert_eq!(kit1.cover(), reference.cover(), "seed {seed}: cover diverged");
        assert_eq!(kit1.order6(), reference.order6(), "seed {seed}: §2 order diverged");
        assert_eq!(kit1.orderx(), reference.orderx(), "seed {seed}: §3 order diverged");

        // Schemes minted from both kits agree on every table stat and every
        // all-pairs simulator verdict — successes and degraded failures
        // alike.
        let names = NamingAssignment::random(g1.node_count(), seed);
        let (s6a, sxa) = kit1.schemes(&g1, &m1, &names);
        let (s6b, sxb) = reference.schemes(&g1, &m1_fresh, &names);
        let sim = Simulator::new(&g1);
        for u in g1.nodes() {
            assert_eq!(s6a.table_stats(u), s6b.table_stats(u));
            assert_eq!(sxa.table_stats(u), sxb.table_stats(u));
            for v in g1.nodes() {
                if u == v {
                    continue;
                }
                let a = sim.roundtrip_brief(&s6a, u, v, names.name_of(v));
                let b = sim.roundtrip_brief(&s6b, u, v, names.name_of(v));
                assert_eq!(a, b, "seed {seed}: stretch6 report ({u},{v}) diverged");
                let c = sim.roundtrip_brief(&sxa, u, v, names.name_of(v));
                let d = sim.roundtrip_brief(&sxb, u, v, names.name_of(v));
                assert_eq!(c, d, "seed {seed}: exstretch report ({u},{v}) diverged");
            }
        }
        exercised += 1;
    }
    assert!(exercised >= 3, "only {exercised} seeded plans kept the graph strongly connected");
}

#[test]
fn identity_repair_is_free_and_changes_nothing() {
    let g = strongly_connected_gnp(30, 0.15, 77).unwrap();
    let m = CachedSubsetOracle::new(&g);
    let kit = SparseRepairKit::build(&g, &m, SparseSuiteParams::default());
    let inv = RowInvalidation::clean(g.node_count());
    let rebased = CachedSubsetOracle::rebased(&m, &g, &inv);
    let (kit1, stats) = kit.repair(&g, &rebased, &inv, &Default::default());
    assert_eq!(stats.dirty_nodes, 0);
    assert_eq!(stats.rows_recomputed, 0);
    assert_eq!(stats.balls_repaired, 0);
    assert_eq!(stats.clusters_reanchored, 0);
    assert_eq!(kit1.landmark(), kit.landmark());
    assert_eq!(kit1.cover(), kit.cover());
    assert_eq!(kit1.order6(), kit.order6());
    assert_eq!(kit1.orderx(), kit.orderx());
}
