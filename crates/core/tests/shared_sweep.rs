//! Property tests for the broadcast row-sweep pipeline: the shared-sweep
//! suite build must be **bit-identical** to building every consumer from its
//! own private sweep, on dense and lazy oracles and for any worker count.
//!
//! "Bit-identical" is asserted through every observable surface the schemes
//! expose: per-node table stats (entry and bit counts), label sizes, and the
//! exact hop-by-hop roundtrip reports of the simulator for all pairs (hops,
//! weight, header bits — equal tables produce equal routes).

use rtr_core::naming::NamingAssignment;
use rtr_core::{ExStretch, PolynomialStretch, SparseSchemeSuite, SparseSuiteParams, StretchSix};
use rtr_cover::{CoverSweepPlan, DoubleTreeCover};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::DiGraph;
use rtr_metric::{
    broadcast_rows_with_threads, CachedSubsetOracle, DistanceMatrix, DistanceOracle,
    LazyDijkstraOracle, RoundtripOrder, RowSweepConsumer, TruncatedOrderSweep,
};
use rtr_namedep::{LandmarkBallScheme, TreeCoverScheme};
use rtr_sim::{RoundtripRouting, Simulator};

/// The reference build: every row consumer runs its own private sweep, using
/// the standalone constructors exactly as the pre-shared-sweep suite did.
fn reference_suite<O: DistanceOracle + ?Sized>(
    g: &DiGraph,
    m: &O,
    names: &NamingAssignment,
    params: SparseSuiteParams,
) -> SparseSchemeSuite {
    let landmark = LandmarkBallScheme::build(g, m, params.landmarks);
    let cover = DoubleTreeCover::build(g, m, params.poly.cover_k);
    let treecover = TreeCoverScheme::from_cover(g, m, &cover);
    SparseSchemeSuite {
        stretch6: StretchSix::build(g, m, names, landmark, params.stretch6),
        exstretch: ExStretch::build(g, m, names, treecover, params.exstretch),
        poly: PolynomialStretch::build_with_cover(g, m, names, &cover, params.poly),
    }
}

/// Asserts both suites produce identical tables and identical all-pairs
/// roundtrip behaviour for all three schemes.
fn assert_suites_identical(
    g: &DiGraph,
    names: &NamingAssignment,
    a: &SparseSchemeSuite,
    b: &SparseSchemeSuite,
    label: &str,
) {
    for v in g.nodes() {
        assert_eq!(
            a.stretch6.table_stats(v),
            b.stretch6.table_stats(v),
            "{label}: stretch6 table at {v} differs"
        );
        assert_eq!(
            a.exstretch.table_stats(v),
            b.exstretch.table_stats(v),
            "{label}: exstretch table at {v} differs"
        );
        assert_eq!(
            a.poly.table_stats(v),
            b.poly.table_stats(v),
            "{label}: polystretch table at {v} differs"
        );
    }
    let sim = Simulator::new(g);
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t {
                continue;
            }
            let name = names.name_of(t);
            let ra = sim.roundtrip(&a.stretch6, s, t, name).unwrap();
            let rb = sim.roundtrip(&b.stretch6, s, t, name).unwrap();
            assert_eq!(
                (ra.total_weight(), ra.total_hops(), ra.max_header_bits()),
                (rb.total_weight(), rb.total_hops(), rb.max_header_bits()),
                "{label}: stretch6 route ({s},{t}) differs"
            );
            let ra = sim.roundtrip(&a.exstretch, s, t, name).unwrap();
            let rb = sim.roundtrip(&b.exstretch, s, t, name).unwrap();
            assert_eq!(
                (ra.total_weight(), ra.total_hops(), ra.max_header_bits()),
                (rb.total_weight(), rb.total_hops(), rb.max_header_bits()),
                "{label}: exstretch route ({s},{t}) differs"
            );
            let ra = sim.roundtrip(&a.poly, s, t, name).unwrap();
            let rb = sim.roundtrip(&b.poly, s, t, name).unwrap();
            assert_eq!(
                (ra.total_weight(), ra.total_hops(), ra.max_header_bits()),
                (rb.total_weight(), rb.total_hops(), rb.max_header_bits()),
                "{label}: polystretch route ({s},{t}) differs"
            );
        }
    }
}

#[test]
fn shared_sweep_suite_is_bit_identical_to_per_consumer_sweeps() {
    for seed in [11u64, 29] {
        let g = strongly_connected_gnp(40, 0.1, seed).unwrap();
        let names = NamingAssignment::random(40, seed ^ 0xbeef);
        let params = SparseSuiteParams::default();

        // Dense oracle: the broadcast fans consumption out over worker
        // blocks.  (The reference must use the same oracle kind: a lazy
        // oracle's 2×-bounded diameter estimate can legitimately add one
        // cover level versus the dense exact diameter, so dense-vs-lazy
        // suites are equivalent but not bit-identical.)
        let dense = DistanceMatrix::build(&g);
        let reference = reference_suite(&g, &dense, &names, params);
        let shared = SparseSchemeSuite::build(&g, &dense, &names, params);
        assert_suites_identical(&g, &names, &reference, &shared, "dense");

        // Lazy oracle (tiny cache): the broadcast runs the sequential
        // prefetch-windowed path — the other consumption mode.
        let lazy_reference = LazyDijkstraOracle::new(&g, 8);
        let reference = reference_suite(&g, &lazy_reference, &names, params);
        let lazy = LazyDijkstraOracle::new(&g, 8);
        let via_lazy = SparseSchemeSuite::build(&g, &lazy, &names, params);
        assert_suites_identical(&g, &names, &reference, &via_lazy, "lazy");
        assert!(lazy.stats().peak_resident_rows <= 9, "cache bound violated");

        // Memoising subset oracle, same sequential path, unbounded cache.
        let subset_reference = CachedSubsetOracle::new(&g);
        let reference = reference_suite(&g, &subset_reference, &names, params);
        let subset = CachedSubsetOracle::new(&g);
        let via_subset = SparseSchemeSuite::build(&g, &subset, &names, params);
        assert_suites_identical(&g, &names, &reference, &via_subset, "subset");
    }
}

#[test]
fn shared_sweep_halves_the_lazy_oracle_rows() {
    // The acceptance criterion of the shared sweep, at test scale: the suite
    // build through a lazy oracle must compute at most half the rows the
    // per-consumer reference build fetches.
    let g = strongly_connected_gnp(60, 0.08, 5).unwrap();
    let names = NamingAssignment::random(60, 17);
    let params = SparseSuiteParams::default();

    let reference_oracle = LazyDijkstraOracle::new(&g, 8);
    let _ = reference_suite(&g, &reference_oracle, &names, params);
    let reference_rows = reference_oracle.stats().rows_computed;

    let shared_oracle = LazyDijkstraOracle::new(&g, 8);
    let _ = SparseSchemeSuite::build(&g, &shared_oracle, &names, params);
    let shared_rows = shared_oracle.stats().rows_computed;

    assert!(
        2 * shared_rows <= reference_rows,
        "shared sweep computed {shared_rows} rows, reference {reference_rows} — not halved"
    );
}

#[test]
fn broadcast_consumers_are_thread_count_invariant() {
    // Pin the dense broadcast's worker count and check that every consumer
    // kind — both truncated orders, the landmark sweep, the cover ball
    // sweep — produces identical structures at 1, 2 and 7 workers.
    let g = strongly_connected_gnp(48, 0.1, 23).unwrap();
    let dense = DistanceMatrix::build(&g);
    let params = SparseSuiteParams::default();
    let n = g.node_count();
    let kx = params.exstretch.k;

    let build_all = |threads: usize| {
        let landmark_sweep = LandmarkBallScheme::sweep(&g, params.landmarks);
        let plan = CoverSweepPlan::new(&dense, params.poly.cover_k);
        let mut groups = plan.scale_groups();
        let cover_sweep = plan.ball_sweep(groups.next().unwrap());
        assert!(groups.next().is_none(), "test instance should fit one scale group");
        let order6 = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, 1, 2));
        let orderx = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, kx - 1, kx));
        let consumers: [&dyn RowSweepConsumer; 4] =
            [&landmark_sweep, &cover_sweep, &order6, &orderx];
        broadcast_rows_with_threads(&dense, &consumers, threads);
        (
            landmark_sweep.finish(),
            DoubleTreeCover::from_levels(plan.k(), cover_sweep.finish_levels(&g, plan.k())),
            order6.finish(),
            orderx.finish(),
        )
    };

    let (landmark1, cover1, order6_1, orderx_1) = build_all(1);
    for threads in [2usize, 7] {
        let (landmark, cover, order6, orderx) = build_all(threads);
        use rtr_namedep::NameDependentSubstrate;
        for v in g.nodes() {
            assert_eq!(
                landmark.table_stats(v),
                landmark1.table_stats(v),
                "landmark table at {v}, threads = {threads}"
            );
            assert_eq!(landmark.nearest_landmark(v), landmark1.nearest_landmark(v));
            assert_eq!(order6.init(v), order6_1.init(v), "order6 at {v}, threads = {threads}");
            assert_eq!(orderx.init(v), orderx_1.init(v), "orderx at {v}, threads = {threads}");
            assert_eq!(cover.membership_count(v), cover1.membership_count(v));
            assert_eq!(cover.trees_containing(v), cover1.trees_containing(v));
        }
        assert_eq!(landmark.landmarks(), landmark1.landmarks());
        assert_eq!(cover.level_count(), cover1.level_count());
        for (la, lb) in cover.levels().iter().zip(cover1.levels()) {
            assert_eq!(la.scale, lb.scale);
            assert_eq!(la.trees.len(), lb.trees.len());
        }
    }
}
