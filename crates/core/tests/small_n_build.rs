//! Regression coverage for the small-n sparse-suite panic ("Lemma 1
//! guarantees a holder in every neighborhood" in `StretchSix::build_with_order`
//! at e.g. n = 300, seed 7): a rounded-up address space (`q^k > n`) has
//! blocks with no existing member, and the block-distribution repair pass
//! used to skip their prefixes — leaving unlucky small, density-1.0
//! instances without a holder and panicking the build.  The repair pass now
//! walks the unfiltered prefix set, so sparse suites must build (and route)
//! at any small n × seed.

use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseSchemeSuite, SparseSuiteParams};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::NodeId;
use rtr_metric::LazyDijkstraOracle;
use rtr_sim::Simulator;

#[test]
fn sparse_suite_builds_and_routes_at_small_n_with_empty_blocks() {
    // n = 30 (q = 6, block 5 empty) and n = 40 (q = 7, block 6 empty):
    // rounded-up spaces whose last block holds no name — the configuration
    // the Lemma 1 lookup used to panic on.  Several seeds so the randomized
    // phase can't mask a repair-pass gap.
    for n in [30usize, 40] {
        for seed in [7u64, 11, 23] {
            let g = strongly_connected_gnp(n, 0.2, seed).unwrap();
            let oracle = LazyDijkstraOracle::new(&g, 16);
            let names = NamingAssignment::random(n, seed ^ 0x517e);
            let suite = SparseSchemeSuite::build(&g, &oracle, &names, SparseSuiteParams::default());
            let node_names = names.to_names();
            let sim = Simulator::new(&g);
            for src in 0..n {
                let dst = (src + 1 + seed as usize) % n;
                let (src, dst) = (NodeId::from_index(src), NodeId::from_index(dst));
                sim.roundtrip(&suite.stretch6, src, dst, node_names[dst.index()])
                    .unwrap_or_else(|e| panic!("n={n} seed={seed} {src}->{dst}: {e}"));
            }
        }
    }
}
