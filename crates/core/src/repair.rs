//! Incremental substrate repair after seeded graph faults (the chaos plane).
//!
//! [`SparseRepairKit`] is the sparse suite's build pipeline with the
//! intermediate row artifacts — landmark substrate, Theorem 13 hierarchy,
//! both truncated orders — **retained** instead of consumed, so that after a
//! [`rtr_graph::FaultPlan`] mutates the graph the suite can be re-anchored by
//! recomputing only what the faults actually touched:
//!
//! * the landmark balls and nearest-landmark choices of the nodes whose
//!   metric rows a [`RowInvalidation`] marks dirty
//!   ([`LandmarkBallScheme::repair_balls`]);
//! * the truncated order prefixes of the same dirty nodes
//!   ([`RoundtripOrder::repair`]);
//! * the double trees of exactly the cover clusters containing a fault
//!   endpoint ([`DoubleTreeCover::repair_clusters`]) — the covers themselves
//!   stay anchored, which is sound under removals and weight increases
//!   because roundtrip balls only shrink.
//!
//! Every clean artifact is carried verbatim and every recomputed one goes
//! through the same code path as a fresh build, so the repaired kit is
//! **bit-identical** to [`rebuild_reference`](SparseRepairKit::rebuild_reference)
//! on the mutated graph (property-tested in `tests/repair_equivalence.rs`).
//! On a rebased [`CachedSubsetOracle`] the whole repair reads at most two
//! rows per dirty node, versus `2n` for a from-scratch rebuild — the ratio
//! the chaos bench gates in CI.

use crate::naming::NamingAssignment;
use crate::suite::SparseSuiteParams;
use crate::{ExStretch, StretchSix};
use rtr_cover::{CoverSweepPlan, DoubleTreeCover, LevelCover};
use rtr_graph::{DiGraph, FaultApplication, NodeId};
use rtr_metric::{
    broadcast_rows, CachedSubsetOracle, DistanceOracle, RoundtripOrder, RowInvalidation,
    TruncatedOrderSweep,
};
use rtr_namedep::{LandmarkBallScheme, TreeCoverScheme};
use std::time::Instant;

/// What one [`SparseRepairKit::repair`] invocation recomputed — the
/// quantities the chaos bench reports and CI gates (repair must touch at
/// most a fixed fraction of a full rebuild's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Nodes with at least one dirty metric row.
    pub dirty_nodes: usize,
    /// Dijkstra rows the repair oracle computed (carried clean rows are
    /// cache hits and cost nothing).
    pub rows_recomputed: u64,
    /// Cover cluster trees rebuilt across all levels.
    pub clusters_reanchored: usize,
    /// Nodes whose landmark ball / nearest-landmark choice was recomputed.
    pub balls_repaired: usize,
    /// Wall-clock of the repair, in nanoseconds.
    pub epoch_ns: u64,
}

/// The sparse scheme suite's row artifacts, retained for incremental repair.
///
/// Built exactly like [`crate::SparseSchemeSuite::build`] — one shared
/// broadcast row sweep feeding the landmark extraction, the first cover
/// scale group and both truncated orders — but the artifacts stay in the kit
/// instead of being consumed by the scheme constructors, so
/// [`schemes`](Self::schemes) can mint serving schemes from them at any time
/// and [`repair`](Self::repair) can patch them after faults.
///
/// The §4 polynomial scheme is deliberately absent: its dictionary pass
/// needs a second full row sweep over the *built* hierarchy, which would
/// break the dirty-rows-only repair budget. The chaos serving plane runs the
/// §2 and §3 schemes, and §3's proven stretch ceiling is what the verified
/// epochs are gated against.
#[derive(Debug)]
pub struct SparseRepairKit {
    params: SparseSuiteParams,
    landmark: LandmarkBallScheme,
    cover: DoubleTreeCover,
    order6: RoundtripOrder,
    orderx: RoundtripOrder,
}

impl SparseRepairKit {
    /// Builds the kit's artifacts with one shared row sweep (plus any extra
    /// cover scale groups beyond the transient-bit budget), mirroring the
    /// sparse suite build bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected or a parameter is out
    /// of range (`k < 2`).
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        params: SparseSuiteParams,
    ) -> Self {
        assert!(params.poly.cover_k >= 2, "cover parameter must be >= 2");
        assert!(m.is_strongly_connected(), "repair kit requires a strongly connected graph");
        let n = g.node_count();
        let _span = rtr_telemetry::span!("build.repair_kit", format_args!("n={n}"));

        let landmark_sweep = LandmarkBallScheme::sweep(g, params.landmarks);
        let plan = CoverSweepPlan::new(m, params.poly.cover_k);
        let mut scale_groups = plan.scale_groups();
        let cover_sweep = plan.ball_sweep(scale_groups.next().expect("at least one scale group"));
        let order6_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, 1, 2));
        let k_x = params.exstretch.k;
        assert!(k_x >= 2, "ExStretch requires k >= 2");
        let orderx_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, k_x - 1, k_x));
        broadcast_rows(m, &[&landmark_sweep, &cover_sweep, &order6_sweep, &orderx_sweep]);

        let landmark = landmark_sweep.finish();
        let order6 = order6_sweep.finish();
        let orderx = orderx_sweep.finish();
        let mut levels: Vec<LevelCover> = cover_sweep.finish_levels(g, plan.k());
        for group_scales in scale_groups {
            let sweep = plan.ball_sweep(group_scales);
            broadcast_rows(m, &[&sweep]);
            levels.extend(sweep.finish_levels(g, plan.k()));
        }
        let cover = DoubleTreeCover::from_levels(plan.k(), levels);

        SparseRepairKit { params, landmark, cover, order6, orderx }
    }

    /// The parameters the kit was built with.
    pub fn params(&self) -> SparseSuiteParams {
        self.params
    }

    /// The retained landmark + ball substrate.
    pub fn landmark(&self) -> &LandmarkBallScheme {
        &self.landmark
    }

    /// The retained Theorem 13 hierarchy.
    pub fn cover(&self) -> &DoubleTreeCover {
        &self.cover
    }

    /// The retained §2 truncated order.
    pub fn order6(&self) -> &RoundtripOrder {
        &self.order6
    }

    /// The retained §3 truncated order.
    pub fn orderx(&self) -> &RoundtripOrder {
        &self.orderx
    }

    /// Mints the serving schemes from the retained artifacts: the §2 scheme
    /// over the landmark substrate and the §3 scheme over the tree-cover
    /// handshake substrate. Scheme assembly reads no oracle rows — `m` is
    /// consulted only for the strong-connectivity precondition — so minting
    /// from a repaired kit stays inside the repair row budget.
    pub fn schemes<O: DistanceOracle + ?Sized>(
        &self,
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
    ) -> (StretchSix<LandmarkBallScheme>, ExStretch<TreeCoverScheme>) {
        let stretch6 = StretchSix::build_with_order(
            g,
            m,
            names,
            self.landmark.clone(),
            &self.order6,
            self.params.stretch6,
        );
        let treecover = TreeCoverScheme::from_cover(g, m, &self.cover);
        let exstretch = ExStretch::build_with_order(
            g,
            m,
            names,
            treecover,
            &self.orderx,
            self.params.exstretch,
        );
        (stretch6, exstretch)
    }

    /// Repairs the kit after `application` mutated the graph into `g`.
    ///
    /// `m` must be the post-fault oracle — typically
    /// [`CachedSubsetOracle::rebased`] over the pre-fault oracle, so the
    /// clean rows are carried and only dirty rows cost a Dijkstra — and
    /// `invalidation` the same analysis the rebase used. Emits the
    /// `repair.rows_recomputed` / `repair.clusters_reanchored` counters and
    /// the `repair.epoch_ns` histogram.
    ///
    /// # Panics
    ///
    /// Panics if the mutated graph is no longer strongly connected or the
    /// node set changed.
    pub fn repair(
        &self,
        g: &DiGraph,
        m: &CachedSubsetOracle<'_>,
        invalidation: &RowInvalidation,
        application: &FaultApplication,
    ) -> (SparseRepairKit, RepairStats) {
        let start = Instant::now();
        let rows_before = m.stats().rows_computed;
        let _span = rtr_telemetry::span!(
            "repair.kit",
            format_args!("dirty={}", invalidation.dirty_node_count())
        );

        let (landmark, balls_repaired) =
            self.landmark.repair_balls(g, m, self.params.landmarks, invalidation);
        let order6 = self.order6.repair(m, invalidation);
        let orderx = self.orderx.repair(m, invalidation);
        // Cluster hit detection needs the *fault endpoints*, not the dirty
        // nodes: a removed edge can leave both endpoint rows clean (some
        // other path was as short) while still changing its cluster's
        // induced subgraph.
        let mut touched: Vec<NodeId> =
            application.faults.iter().flat_map(|f| [f.from, f.to]).collect();
        touched.sort_unstable();
        touched.dedup();
        let (cover, clusters_reanchored) = self.cover.repair_clusters(g, &touched);

        let stats = RepairStats {
            dirty_nodes: invalidation.dirty_node_count(),
            rows_recomputed: (m.stats().rows_computed - rows_before) as u64,
            clusters_reanchored,
            balls_repaired,
            epoch_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        rtr_telemetry::counter("repair.rows_recomputed").add(stats.rows_recomputed);
        rtr_telemetry::counter("repair.clusters_reanchored").add(stats.clusters_reanchored as u64);
        rtr_telemetry::histogram("repair.epoch_ns").observe(start.elapsed());

        let kit = SparseRepairKit { params: self.params, landmark, cover, order6, orderx };
        (kit, stats)
    }

    /// The repair's reference semantics, built the expensive way: a fresh
    /// landmark substrate and fresh truncated orders from a from-scratch row
    /// sweep of `m`, plus the anchored
    /// [`DoubleTreeCover::rebuild_all_trees`] on `g`. [`repair`](Self::repair)
    /// must be bit-identical to this.
    pub fn rebuild_reference<O: DistanceOracle + ?Sized>(
        &self,
        g: &DiGraph,
        m: &O,
    ) -> SparseRepairKit {
        let n = g.node_count();
        let landmark_sweep = LandmarkBallScheme::sweep(g, self.params.landmarks);
        let order6_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, 1, 2));
        let k_x = self.params.exstretch.k;
        let orderx_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, k_x - 1, k_x));
        broadcast_rows(m, &[&landmark_sweep, &order6_sweep, &orderx_sweep]);
        SparseRepairKit {
            params: self.params,
            landmark: landmark_sweep.finish(),
            cover: self.cover.rebuild_all_trees(g),
            order6: order6_sweep.finish(),
            orderx: orderx_sweep.finish(),
        }
    }
}
