//! The generalized scheme with a polynomial space/stretch tradeoff
//! (§4, Figs. 9 and 11).
//!
//! A hierarchy of double-tree covers (Theorem 13) is built at scales
//! `2, 4, 8, …, 2^{⌈log RTDiam⌉}`. Every node knows its *home* double-tree at
//! every level — the tree guaranteed to span its whole scale-`2^i` roundtrip
//! ball — and, inside every tree it belongs to, a prefix-matching dictionary:
//! for every level `j < k` of its own name's digits and every next digit `τ`,
//! the tree address of the nearest tree member matching one more digit.
//!
//! Routing (Fig. 9/11): the packet tries the source's home tree at levels
//! `i = 1, 2, …`; inside a tree it hops between members whose names match
//! ever longer prefixes of the destination, routing each hop through the
//! tree's center. If at some member the required dictionary entry is missing
//! (the destination is not in this tree), the packet returns to the source,
//! which escalates to its home tree at the next level. At the first level
//! whose scale reaches `r(s, t)`, the home tree of `s` contains `t` and the
//! search must succeed; the total distance is bounded by `8k² + 4k − 4`
//! times `r(s, t)` (§4.3), with the cover's height blow-up `2k_c − 1`
//! standing in for the paper's identical constant.

use crate::naming::NamingAssignment;
use rtr_cover::{DoubleTreeCover, TreeId};
use rtr_dictionary::{AddressSpace, NodeName};
use rtr_graph::{DiGraph, NodeId, Port};
use rtr_metric::{broadcast_rows, DistanceOracle, RowSweepConsumer, SweepRows, SweepSlots};
use rtr_sim::{id_bits, ForwardAction, HeaderBits, RoundtripRouting, RoutingError, TableStats};
use rtr_trees::{TreeLabel, TreeNodeTable, TreeRouter, TreeStep};
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of the polynomial-tradeoff scheme.
#[derive(Debug, Clone, Copy)]
pub struct PolyParams {
    /// Number of name digits `k ≥ 2` (the `k` of the `8k² + 4k − 4` bound).
    pub k: u32,
    /// Sparseness parameter of the underlying Theorem 13 cover (the paper
    /// reuses `k` for both; keeping them separate lets the ablation bench
    /// explore the tradeoff). Defaults to `k`.
    pub cover_k: u32,
}

impl PolyParams {
    /// Both parameters set to `k`, as in the paper.
    pub fn with_k(k: u32) -> Self {
        PolyParams { k, cover_k: k }
    }
}

impl Default for PolyParams {
    fn default() -> Self {
        PolyParams::with_k(2)
    }
}

/// Packet mode (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fresh packet.
    NewPacket,
    /// Searching / travelling (the paper's single `Enroute` mode).
    Enroute,
    /// Handed back by the destination host for the acknowledgment.
    ReturnPacket,
}

/// The writable packet header (Fig. 11).
#[derive(Debug, Clone)]
pub struct PolyHeader {
    mode: Mode,
    dest: NodeName,
    src: Option<NodeName>,
    /// Level currently being tried (index into the cover's levels).
    level: u16,
    /// The home double-tree of the source at `level`.
    tree: Option<TreeId>,
    /// The source's own address in that tree (for failure returns and the
    /// final acknowledgment).  Interned: headers share the table's allocation.
    src_tree_label: Option<Arc<TreeLabel>>,
    /// The tree address of the waypoint currently being routed to.
    next_label: Option<Arc<TreeLabel>>,
    /// Whether the destination has been reached (drives the return leg).
    found: bool,
    /// True while the packet is heading back to the source (either a failure
    /// return or the acknowledgment).
    returning: bool,
    name_bits: usize,
    label_bits: usize,
    tree_id_bits: usize,
}

impl HeaderBits for PolyHeader {
    fn bits(&self) -> usize {
        let mut bits = 4 + self.name_bits + 16 + 2; // mode + dest + level + flags
        if self.src.is_some() {
            bits += self.name_bits;
        }
        if self.tree.is_some() {
            bits += self.tree_id_bits;
        }
        if self.src_tree_label.is_some() {
            bits += self.label_bits;
        }
        if self.next_label.is_some() {
            bits += self.label_bits;
        }
        bits
    }
}

/// Per-node record for one double tree the node belongs to.
#[derive(Debug, Clone)]
struct TreeRecord {
    /// The node's `O(1)`-word record in the tree's out-component.
    out_table: TreeNodeTable,
    /// Out-port of the first edge toward the tree's center (`None` at the center).
    up_port: Option<Port>,
    /// The node's own address in this tree.
    own_label: Arc<TreeLabel>,
    /// Prefix dictionary: `(digit level j, next digit τ)` → tree address of
    /// the nearest member matching `σ^j(own name)·τ` (§4.1, item 2c).  The
    /// addresses are interned behind `Arc`: a popular member's label is
    /// referenced from many `(node, j, τ)` entries across the tree but
    /// stored once.
    prefix: HashMap<(u32, u32), Arc<TreeLabel>>,
    /// Exact-name entries for the last digit (the `j = k−1` row of the same
    /// table): destination name → its tree address.
    exact: HashMap<NodeName, Arc<TreeLabel>>,
}

/// Per-node table.
#[derive(Debug, Clone)]
struct NodeTable {
    own_name: NodeName,
    /// Home tree per level (§4.1, item 1).
    home: Vec<TreeId>,
    /// Records of every tree this node belongs to (§4.1, item 2).
    trees: HashMap<TreeId, TreeRecord>,
}

/// Pass-1 context of one double tree: its router plus the per-level prefix
/// groups of its members' names.
struct TreeCtx<'c> {
    id: TreeId,
    router: &'c TreeRouter,
    tree: &'c rtr_trees::DoubleTree,
    prefix_groups: Vec<HashMap<Vec<u32>, Vec<NodeId>>>,
}

/// Pass 2 of the §4 construction as a broadcast row consumer: for one node at
/// a time, mint the tree records (out-table, up-port, own address, prefix +
/// exact dictionaries) of every tree the node belongs to from the node's
/// roundtrip row.  Registered on a [`broadcast_rows`] pass by
/// [`PolynomialStretch::build_with_cover`].
struct PolyDictionarySweep<'a, 'c> {
    contexts: &'a [TreeCtx<'c>],
    tree_memberships: &'a [Vec<usize>],
    names: &'a NamingAssignment,
    space: &'a AddressSpace,
    k: u32,
    n: usize,
    /// Per node: (tree records, largest own-address bit count).
    slots: SweepSlots<(HashMap<TreeId, TreeRecord>, usize)>,
}

impl RowSweepConsumer for PolyDictionarySweep<'_, '_> {
    fn consume(&self, u: NodeId, rows: &SweepRows<'_>) {
        let own_digits = self.space.digits(self.names.name_of(u));
        let rt_row = rows.roundtrip;
        let mut trees: HashMap<TreeId, TreeRecord> = HashMap::new();
        let mut max_label_bits = 0usize;
        for &ci in &self.tree_memberships[u.index()] {
            let ctx = &self.contexts[ci];
            let out_table =
                *ctx.router.table(u).expect("tree members are spanned by the out component");
            let own_label = ctx.router.label(u).expect("member has a tree address").clone();
            max_label_bits = max_label_bits.max(own_label.bits(self.n));
            let up_port = ctx.tree.in_tree().next_port(u);

            let mut prefix: HashMap<(u32, u32), Arc<TreeLabel>> = HashMap::new();
            let mut exact: HashMap<NodeName, Arc<TreeLabel>> = HashMap::new();
            for j in 0..self.k {
                for tau in 0..self.space.q() {
                    let mut key = own_digits[..j as usize].to_vec();
                    key.push(tau);
                    let Some(group) = ctx.prefix_groups[j as usize].get(&key) else {
                        continue;
                    };
                    // Nearest member of the group by roundtrip distance.
                    let best = group
                        .iter()
                        .copied()
                        .min_by_key(|&v| (rt_row[v.index()], v.0))
                        .expect("groups are non-empty");
                    let label = ctx.router.label(best).expect("member has an address").clone();
                    if j + 1 == self.k {
                        // Full name matched: record under the exact name.
                        exact.insert(self.names.name_of(best), label);
                    } else {
                        prefix.insert((j, tau), label);
                    }
                }
            }

            trees.insert(ctx.id, TreeRecord { out_table, up_port, own_label, prefix, exact });
        }
        self.slots.put(u.index(), (trees, max_label_bits));
    }
}

/// The polynomial-tradeoff TINN scheme.
#[derive(Debug)]
pub struct PolynomialStretch {
    n: usize,
    k: u32,
    cover_k: u32,
    level_count: usize,
    space: AddressSpace,
    tables: Vec<NodeTable>,
    name_bits: usize,
    label_bits: usize,
    tree_id_bits: usize,
}

impl PolynomialStretch {
    /// Builds the scheme: the Theorem 13 hierarchy plus per-node prefix
    /// dictionaries inside every tree.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, the graph is not strongly connected, or the naming
    /// size mismatches.
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        params: PolyParams,
    ) -> Self {
        assert!(params.cover_k >= 2, "cover parameter must be >= 2");
        let cover = DoubleTreeCover::build(g, m, params.cover_k);
        Self::build_with_cover(g, m, names, &cover, params)
    }

    /// Builds the scheme over an **existing** Theorem 13 hierarchy, so one
    /// cover build (the dominant preprocessing cost at large `n`) can be
    /// shared with other consumers — `SparseSchemeSuite` hands the same
    /// hierarchy to this scheme and to the §3 substrate
    /// (`rtr_namedep::TreeCoverScheme::from_cover`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, the cover's sparseness differs from
    /// `params.cover_k`, the graph is not strongly connected, or the naming
    /// size mismatches.
    pub fn build_with_cover<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        cover: &DoubleTreeCover,
        params: PolyParams,
    ) -> Self {
        let n = g.node_count();
        let k = params.k;
        assert!(k >= 2, "PolynomialStretch requires k >= 2");
        assert_eq!(cover.k(), params.cover_k, "cover was built with a different sparseness");
        assert_eq!(names.len(), n, "naming assignment size mismatch");
        assert!(m.is_strongly_connected(), "PolynomialStretch requires a strongly connected graph");

        let space = AddressSpace::new(n, k);
        let name_bits = id_bits(n);

        // Pass 1 — per-tree prefix groups (pure name-digit bookkeeping, no
        // oracle): prefix_groups[j] maps a (j+1)-digit prefix to the member
        // list sharing it, so the nearest matching member per (node, j, τ)
        // can be found in one scan below.
        let mut contexts: Vec<TreeCtx<'_>> = Vec::new();
        let mut max_trees_per_level = 0usize;
        for (li, level) in cover.levels().iter().enumerate() {
            max_trees_per_level = max_trees_per_level.max(level.trees.len());
            for (ti, tree) in level.trees.iter().enumerate() {
                let id = TreeId { level: li as u16, index: ti as u32 };
                let mut prefix_groups: Vec<HashMap<Vec<u32>, Vec<NodeId>>> =
                    vec![HashMap::new(); k as usize];
                for &v in tree.members() {
                    let digits = space.digits(names.name_of(v));
                    for j in 0..k as usize {
                        prefix_groups[j].entry(digits[..=j].to_vec()).or_default().push(v);
                    }
                }
                contexts.push(TreeCtx { id, router: &level.routers[ti], tree, prefix_groups });
            }
        }
        let mut tree_memberships: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, ctx) in contexts.iter().enumerate() {
            for &v in ctx.tree.members() {
                tree_memberships[v.index()].push(ci);
            }
        }

        // Pass 2 — per-node records, as a broadcast row consumer.  Looping
        // nodes on the outside means one roundtrip row per *node* serves the
        // group comparisons of every tree the node belongs to (a lazy oracle
        // pays `O(n)` Dijkstra pairs instead of `O(total memberships)`), and
        // per-node output slots let the sweep fan the assembly out over
        // worker blocks on dense oracles.
        let pass2 = PolyDictionarySweep {
            contexts: &contexts,
            tree_memberships: &tree_memberships,
            names,
            space: &space,
            k,
            n,
            slots: SweepSlots::new(n),
        };
        {
            let _span =
                rtr_telemetry::span!("poly.pass2_sweep", format_args!("trees={}", contexts.len()));
            broadcast_rows(m, &[&pass2]);
        }
        let mut max_label_bits = 0usize;
        let tables: Vec<NodeTable> = pass2
            .slots
            .into_vec()
            .into_iter()
            .enumerate()
            .map(|(vi, (trees, label_bits))| {
                max_label_bits = max_label_bits.max(label_bits);
                let v = NodeId::from_index(vi);
                NodeTable {
                    own_name: names.name_of(v),
                    home: (0..cover.level_count()).map(|li| cover.home_tree_id(v, li)).collect(),
                    trees,
                }
            })
            .collect();

        let tree_id_bits = TreeId::bits(cover.level_count(), max_trees_per_level.max(1));
        PolynomialStretch {
            n,
            k,
            cover_k: params.cover_k,
            level_count: cover.level_count(),
            space,
            tables,
            name_bits,
            label_bits: max_label_bits.max(1),
            tree_id_bits,
        }
    }

    /// The name-digit parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of nodes the scheme was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The cover sparseness parameter `k_c`.
    pub fn cover_k(&self) -> u32 {
        self.cover_k
    }

    /// Number of cover levels.
    pub fn level_count(&self) -> usize {
        self.level_count
    }

    /// The theoretical stretch bound of §4.3, `8k² + 4k − 4`, evaluated for
    /// this scheme's `k` (valid when `cover_k == k`, as in the paper).
    pub fn paper_stretch_bound(&self) -> u64 {
        let k = self.k as u64;
        8 * k * k + 4 * k - 4
    }

    fn table(&self, v: NodeId) -> &NodeTable {
        &self.tables[v.index()]
    }

    /// Finds, at waypoint `at` inside `tree`, the dictionary entry matching
    /// one more digit of `dest` than `matched`. Returns `None` when the tree
    /// cannot make progress (the destination is not in this tree).
    fn next_waypoint(
        &self,
        at: NodeId,
        tree: TreeId,
        dest: NodeName,
        matched: u32,
    ) -> Option<Arc<TreeLabel>> {
        let record = self.table(at).trees.get(&tree)?;
        if matched + 1 == self.k {
            return record.exact.get(&dest).cloned();
        }
        let dest_digits = self.space.digits(dest);
        record.prefix.get(&(matched, dest_digits[matched as usize])).cloned()
    }

    /// The common routine of both legs: step within the current tree toward
    /// `label` (up toward the center until the destination enters the
    /// subtree, then down).
    fn tree_step(
        &self,
        at: NodeId,
        tree: TreeId,
        label: &TreeLabel,
    ) -> Result<ForwardAction, RoutingError> {
        let record = self
            .table(at)
            .trees
            .get(&tree)
            .ok_or_else(|| RoutingError::new(at, "node left the current double tree"))?;
        match TreeRouter::step(&record.out_table, label) {
            TreeStep::Deliver => Ok(ForwardAction::Deliver),
            TreeStep::Forward(port) => Ok(ForwardAction::Forward(port)),
            TreeStep::NotInSubtree => {
                let port = record.up_port.ok_or_else(|| {
                    RoutingError::new(at, "tree center does not contain the waypoint")
                })?;
                Ok(ForwardAction::Forward(port))
            }
        }
    }
}

impl RoundtripRouting for PolynomialStretch {
    type Header = PolyHeader;

    fn scheme_name(&self) -> &'static str {
        "polystretch"
    }

    fn new_packet(&self, _src: NodeId, dst: NodeName) -> Result<Self::Header, RoutingError> {
        Ok(PolyHeader {
            mode: Mode::NewPacket,
            dest: dst,
            src: None,
            level: 0,
            tree: None,
            src_tree_label: None,
            next_label: None,
            found: false,
            returning: false,
            name_bits: self.name_bits,
            label_bits: self.label_bits,
            tree_id_bits: self.tree_id_bits,
        })
    }

    fn make_return(&self, at: NodeId, header: &Self::Header) -> Result<Self::Header, RoutingError> {
        if self.table(at).own_name != header.dest {
            return Err(RoutingError::new(at, "return packet created away from the destination"));
        }
        let mut h = header.clone();
        h.mode = Mode::ReturnPacket;
        Ok(h)
    }

    fn forward(&self, at: NodeId, header: &mut PolyHeader) -> Result<ForwardAction, RoutingError> {
        let table = self.table(at);
        loop {
            match header.mode {
                Mode::NewPacket => {
                    header.src = Some(table.own_name);
                    header.mode = Mode::Enroute;
                    if header.dest == table.own_name {
                        header.found = true;
                        return Ok(ForwardAction::Deliver);
                    }
                    // Start at the first level (the paper starts at i = 1;
                    // level index 0 is the smallest scale of the hierarchy).
                    self.enter_level(at, header, 0)?;
                }
                Mode::ReturnPacket => {
                    header.mode = Mode::Enroute;
                    header.found = true;
                    header.returning = true;
                    if header.src == Some(table.own_name) {
                        return Ok(ForwardAction::Deliver);
                    }
                    header.next_label = Some(header.src_tree_label.clone().ok_or_else(|| {
                        RoutingError::new(at, "return packet lost the source address")
                    })?);
                }
                Mode::Enroute => {
                    let tree = header.tree.ok_or_else(|| {
                        RoutingError::new(at, "enroute packet carries no tree id")
                    })?;
                    let label = header.next_label.clone().ok_or_else(|| {
                        RoutingError::new(at, "enroute packet carries no waypoint")
                    })?;
                    match self.tree_step(at, tree, &label)? {
                        ForwardAction::Forward(port) => return Ok(ForwardAction::Forward(port)),
                        ForwardAction::Deliver => {
                            // Arrived at the current waypoint.
                            if header.returning {
                                if Some(table.own_name) == header.src {
                                    if header.found {
                                        return Ok(ForwardAction::Deliver);
                                    }
                                    // Failure return: escalate to the next level.
                                    header.returning = false;
                                    let next_level = header.level as usize + 1;
                                    if next_level >= self.level_count {
                                        return Err(RoutingError::new(
                                            at,
                                            "search exhausted every cover level",
                                        ));
                                    }
                                    self.enter_level(at, header, next_level)?;
                                    continue;
                                }
                                return Err(RoutingError::new(
                                    at,
                                    "source address delivered at a foreign node",
                                ));
                            }
                            if table.own_name == header.dest {
                                header.found = true;
                                return Ok(ForwardAction::Deliver);
                            }
                            // Look up the next waypoint matching one more digit.
                            let matched = self.space.common_prefix_len(table.own_name, header.dest);
                            match self.next_waypoint(at, tree, header.dest, matched) {
                                Some(next) => {
                                    header.next_label = Some(next);
                                    continue;
                                }
                                None => {
                                    // Not reachable in this tree: go back to the
                                    // source and try the next level there.
                                    header.returning = true;
                                    header.next_label =
                                        Some(header.src_tree_label.clone().ok_or_else(|| {
                                            RoutingError::new(
                                                at,
                                                "missing source address for failure return",
                                            )
                                        })?);
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn table_stats(&self, v: NodeId) -> TableStats {
        let t = self.table(v);
        let mut entries = 1 + t.home.len();
        let mut bits = self.name_bits + t.home.len() * self.tree_id_bits;
        for record in t.trees.values() {
            let dict = record.prefix.len() + record.exact.len();
            entries += 2 + dict;
            bits += self.tree_id_bits
                + 3 * self.name_bits // out_table words
                + self.name_bits // up port
                + self.label_bits // own label
                + dict * (self.name_bits + self.label_bits);
        }
        TableStats { entries, bits }
    }
}

impl PolynomialStretch {
    /// (Re)initializes the header for a search at `level`, starting at the
    /// source node `at`.
    fn enter_level(
        &self,
        at: NodeId,
        header: &mut PolyHeader,
        level: usize,
    ) -> Result<(), RoutingError> {
        let table = self.table(at);
        let tree = table.home[level];
        let record = table
            .trees
            .get(&tree)
            .ok_or_else(|| RoutingError::new(at, "source is missing its home-tree record"))?;
        header.level = level as u16;
        header.tree = Some(tree);
        header.src_tree_label = Some(record.own_label.clone());
        // First waypoint: match one more digit than the source already does.
        let matched = self.space.common_prefix_len(table.own_name, header.dest);
        match self.next_waypoint(at, tree, header.dest, matched) {
            Some(next) => {
                header.next_label = Some(next);
                header.returning = false;
                Ok(())
            }
            None => {
                // This level cannot even start; escalate immediately.
                let next_level = level + 1;
                if next_level >= self.level_count {
                    return Err(RoutingError::new(at, "search exhausted every cover level"));
                }
                self.enter_level(at, header, next_level)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};
    use rtr_metric::DistanceMatrix;
    use rtr_sim::Simulator;

    fn check_all_pairs(
        g: &DiGraph,
        m: &DistanceMatrix,
        names: &NamingAssignment,
        scheme: &PolynomialStretch,
        hard_bound: Option<(u64, u64)>,
    ) -> f64 {
        let sim = Simulator::new(g);
        let mut worst: f64 = 0.0;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim
                    .roundtrip(scheme, s, t, names.name_of(t))
                    .unwrap_or_else(|e| panic!("({s},{t}): {e}"));
                if let Some((num, den)) = hard_bound {
                    assert!(
                        report.within_stretch(m, num, den),
                        "pair ({s},{t}) exceeds {num}/{den}: {} vs r={}",
                        report.total_weight(),
                        m.roundtrip(s, t)
                    );
                }
                worst = worst.max(report.stretch(m));
            }
        }
        worst
    }

    #[test]
    fn meets_the_paper_bound_on_random_graphs() {
        for (n, k, seed) in [(36usize, 2u32, 1u64), (48, 3, 2)] {
            let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let names = NamingAssignment::random(n, seed);
            let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(k));
            let bound = scheme.paper_stretch_bound();
            check_all_pairs(&g, &m, &names, &scheme, Some((bound, 1)));
        }
    }

    #[test]
    fn meets_the_paper_bound_on_grids() {
        let g = bidirected_grid(6, 6, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(36, 11);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
        check_all_pairs(&g, &m, &names, &scheme, Some((scheme.paper_stretch_bound(), 1)));
    }

    #[test]
    fn measured_stretch_is_far_below_the_bound() {
        let g = strongly_connected_gnp(40, 0.12, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(40, 7);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
        let worst =
            check_all_pairs(&g, &m, &names, &scheme, Some((scheme.paper_stretch_bound(), 1)));
        assert!(worst < scheme.paper_stretch_bound() as f64 / 2.0);
    }

    #[test]
    fn name_independence() {
        let g = strongly_connected_gnp(32, 0.12, 9).unwrap();
        let m = DistanceMatrix::build(&g);
        for names in [
            NamingAssignment::identity(32),
            NamingAssignment::reversed(32),
            NamingAssignment::random(32, 4),
        ] {
            let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
            check_all_pairs(&g, &m, &names, &scheme, Some((scheme.paper_stretch_bound(), 1)));
        }
    }

    #[test]
    fn self_addressed_packets_cost_nothing() {
        let g = strongly_connected_gnp(20, 0.2, 13).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(20, 5);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
        let sim = Simulator::new(&g);
        for v in g.nodes() {
            let report = sim.roundtrip(&scheme, v, v, names.name_of(v)).unwrap();
            assert_eq!(report.total_weight(), 0);
        }
    }

    #[test]
    fn headers_are_polylogarithmic() {
        let g = strongly_connected_gnp(48, 0.1, 15).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(48, 6);
        let scheme = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(3));
        let sim = Simulator::new(&g);
        let word = id_bits(48);
        let bound = 8 * word * word + 16 * word + 64;
        for s in g.nodes().take(6) {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                assert!(report.max_header_bits() <= bound);
            }
        }
    }

    #[test]
    fn larger_k_reduces_per_tree_dictionary_width() {
        let g = strongly_connected_gnp(81, 0.07, 17).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(81, 8);
        let s2 = PolynomialStretch::build(&g, &m, &names, PolyParams { k: 2, cover_k: 2 });
        let s4 = PolynomialStretch::build(&g, &m, &names, PolyParams { k: 4, cover_k: 2 });
        // The per-(node, tree) dictionary has k·q entries; q = n^{1/k} shrinks
        // much faster than k grows, so k = 4 tables are at most as large.
        let max2 = g.nodes().map(|v| s2.table_stats(v).entries).max().unwrap();
        let max4 = g.nodes().map(|v| s4.table_stats(v).entries).max().unwrap();
        assert!(max4 <= max2, "k=4 entries {max4} should not exceed k=2 entries {max2}");
        check_all_pairs(&g, &m, &names, &s4, Some((s4.paper_stretch_bound(), 1)));
    }
}
