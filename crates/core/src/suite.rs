//! Parallel construction of the paper's full scheme suite over one shared
//! distance oracle.
//!
//! Before the [`rtr_metric::DistanceOracle`] refactor, benchmarking the three
//! schemes side by side meant three independent dense `DistanceMatrix` builds
//! (or one shared matrix pinned to `n²` memory). [`SchemeSuite::build`] fans
//! the three constructions out over scoped worker threads that all borrow the
//! *same* oracle — dense or lazy — so preprocessing wall-clock approaches the
//! slowest single scheme and the metric is computed (and cached) once.

use crate::naming::NamingAssignment;
use crate::{
    ExStretch, ExStretchParams, PolyParams, PolynomialStretch, Stretch6Params, StretchSix,
};
use rtr_cover::{CoverSweepPlan, DoubleTreeCover, LevelCover};
use rtr_dictionary::DistributionParams;
use rtr_graph::DiGraph;
use rtr_metric::{broadcast_rows, DistanceOracle, RoundtripOrder, TruncatedOrderSweep};
use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams, TreeCoverScheme};

/// Parameters of [`SchemeSuite::build`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteParams {
    /// Parameters of the §2 stretch-6 scheme.
    pub stretch6: Stretch6Params,
    /// Parameters of the §3 exponential-tradeoff scheme.
    pub exstretch: ExStretchParams,
    /// Parameters of the §4 polynomial-tradeoff scheme.
    pub poly: PolyParams,
}

/// All three TINN schemes of the paper, built together.
///
/// The stretch-6 scheme rides on the exact-oracle substrate (the hard-bound
/// configuration used throughout the test-suite); the exponential scheme on
/// the Theorem 13 tree-cover substrate; the polynomial scheme builds its own
/// hierarchy.
#[derive(Debug)]
pub struct SchemeSuite {
    /// The §2 scheme (stretch 6, exact-oracle substrate).
    pub stretch6: StretchSix<ExactOracleScheme>,
    /// The §3 scheme (tree-cover handshake substrate).
    pub exstretch: ExStretch<TreeCoverScheme>,
    /// The §4 scheme.
    pub poly: PolynomialStretch,
}

impl SchemeSuite {
    /// Builds the three schemes concurrently, sharing `m`.
    ///
    /// Each scheme's construction runs on its own scoped worker thread; all
    /// three borrow the same oracle, which is why [`DistanceOracle`] requires
    /// `Sync` and why the lazy oracles synchronise their row caches
    /// internally. A worker panic (for example a disconnected graph failing a
    /// scheme's precondition) propagates as a panic here, mirroring the
    /// single-threaded behavior.
    ///
    /// # Panics
    ///
    /// Panics if any scheme's preconditions fail (graph not strongly
    /// connected, naming size mismatch, `k < 2`).
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        params: SuiteParams,
    ) -> Self {
        let result = crossbeam::scope(|scope| {
            let h6 = scope.spawn(|_| {
                StretchSix::build(g, m, names, ExactOracleScheme::build(g), params.stretch6)
            });
            let hx = scope.spawn(|_| {
                let substrate = TreeCoverScheme::build(g, m, params.exstretch.k.max(2));
                ExStretch::build(g, m, names, substrate, params.exstretch)
            });
            let hp = scope.spawn(|_| PolynomialStretch::build(g, m, names, params.poly));
            let stretch6 = h6.join().expect("stretch-6 construction panicked");
            let exstretch = hx.join().expect("exstretch construction panicked");
            let poly = hp.join().expect("polystretch construction panicked");
            SchemeSuite { stretch6, exstretch, poly }
        });
        match result {
            Ok(suite) => suite,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Decomposes the suite into its three schemes, the handoff the serving
    /// plane uses: each scheme moves into its own `rtr_engine::FrozenPlane`
    /// (one `Arc` snapshot per scheme, graph and naming shared).
    pub fn into_parts(
        self,
    ) -> (StretchSix<ExactOracleScheme>, ExStretch<TreeCoverScheme>, PolynomialStretch) {
        (self.stretch6, self.exstretch, self.poly)
    }
}

/// Block-distribution density of the sparse configuration.
///
/// The dense default (`density = 4`) makes the Lemma 1/4 random phase cover
/// almost everything by itself, at the price of ≈ `4·ln n` blocks — and hence
/// ≈ `4·ln n · q` dictionary entries — per node; at `n = 10⁵` that constant
/// alone is tens of gigabytes across the suite.  The deterministic repair
/// pass enforces the coverage property *exactly* at any density, so the
/// sparse configuration leans on it: a quarter of the random blocks, the same
/// guarantees, ~4× smaller dictionaries.
const SPARSE_BLOCK_DENSITY: f64 = 1.0;

/// Parameters of [`SparseSchemeSuite::build`].
#[derive(Debug, Clone, Copy)]
pub struct SparseSuiteParams {
    /// Parameters of the §2 stretch-6 scheme.
    pub stretch6: Stretch6Params,
    /// Parameters of the §3 exponential-tradeoff scheme.  Defaults to `k = 3`
    /// (the Õ(n^{1/3})-entry dictionary point, a better fit at large `n` than
    /// the dense default `k = 2`).
    pub exstretch: ExStretchParams,
    /// Parameters of the §4 polynomial-tradeoff scheme (default `k = 3`, same
    /// reasoning).  `poly.cover_k` also sets the sparseness of the **shared**
    /// Theorem 13 hierarchy that backs both the §4 scheme and the §3
    /// tree-cover substrate.
    pub poly: PolyParams,
    /// Parameters of the shared landmark + ball substrate.
    pub landmarks: LandmarkParams,
}

impl Default for SparseSuiteParams {
    fn default() -> Self {
        let blocks =
            DistributionParams { density: SPARSE_BLOCK_DENSITY, ..DistributionParams::default() };
        SparseSuiteParams {
            stretch6: Stretch6Params { blocks },
            exstretch: ExStretchParams { blocks, ..ExStretchParams::with_k(3) },
            poly: PolyParams::with_k(3),
            landmarks: LandmarkParams::default(),
        }
    }
}

/// The three TINN schemes in their **scalable** configuration: the §2 scheme
/// rides the Õ(√n) landmark + ball substrate, the §3 scheme the Theorem 13
/// tree-cover substrate (with its on-demand pairwise handshake), and the §4
/// scheme shares the §3 substrate's hierarchy — instead of the Θ(n²)-memory
/// exact-oracle / all-pairs-handshake substrates of [`SchemeSuite`].
///
/// This is the configuration that reaches `n = 10⁴–10⁵` through a lazy
/// oracle: nothing in it materialises a table with `n²` entries, and the one
/// double-tree-cover build (the dominant preprocessing cost at large `n`) is
/// shared between `exstretch` and `poly`.  The landmark substrate's stretch
/// stays measured-not-proven (DESIGN.md's substitution); the tree-cover
/// substrate gives `exstretch` a proven `(2^k − 1)·4(2k_c − 1)` budget.
#[derive(Debug)]
pub struct SparseSchemeSuite {
    /// The §2 scheme over the landmark substrate.
    pub stretch6: StretchSix<LandmarkBallScheme>,
    /// The §3 scheme over the tree-cover handshake substrate.
    pub exstretch: ExStretch<TreeCoverScheme>,
    /// The §4 scheme (same hierarchy as the §3 substrate).
    pub poly: PolynomialStretch,
}

impl SparseSchemeSuite {
    /// Builds the three schemes, sharing `m`, one landmark substrate build,
    /// one Theorem 13 hierarchy — and, crucially, **one broadcast row
    /// sweep** for every oracle-row consumer that does not depend on the
    /// built hierarchy.
    ///
    /// The row consumers of the whole suite are: landmark extraction, cover
    /// ball collection, the two schemes' truncated orders, and the §4
    /// scheme's dictionary pass.  The first four need nothing but rows, so
    /// they are registered together on a single [`broadcast_rows`] pass (a
    /// prefetch-windowed sequential sweep on lazy oracles, block-parallel on
    /// dense ones); only the §4 dictionary pass — which needs the *built*
    /// cover — runs on a second pass inside
    /// [`PolynomialStretch::build_with_cover`].  A lazy oracle therefore
    /// computes ≈ `4n` rows for the full suite instead of the ≈ `10n` the
    /// five independent sweeps used to fetch, with bit-identical schemes
    /// (asserted by the `shared_sweep` property tests).  Scale groups beyond
    /// the first of the cover's transient-bit budget, if any, keep their own
    /// sweeps exactly as in [`DoubleTreeCover::build`].
    ///
    /// After the sweeps, the three scheme constructions fan out over scoped
    /// worker threads exactly like [`SchemeSuite::build`].
    ///
    /// # Panics
    ///
    /// Panics if any scheme's preconditions fail (graph not strongly
    /// connected, naming size mismatch, `k < 2`).
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        params: SparseSuiteParams,
    ) -> Self {
        assert!(params.poly.cover_k >= 2, "cover parameter must be >= 2");
        assert!(m.is_strongly_connected(), "sparse suite requires a strongly connected graph");
        let n = g.node_count();
        let _suite_span = rtr_telemetry::span!("build.sparse_suite", format_args!("n={n}"));

        // Register every hierarchy-independent row consumer on ONE sweep:
        // landmark pass 1, the first cover scale group, and both schemes'
        // truncated orders.
        let landmark_sweep = LandmarkBallScheme::sweep(g, params.landmarks);
        let plan = CoverSweepPlan::new(m, params.poly.cover_k);
        let mut scale_groups = plan.scale_groups();
        let cover_sweep = plan.ball_sweep(scale_groups.next().expect("at least one scale group"));
        let order6_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, 1, 2));
        let k_x = params.exstretch.k;
        assert!(k_x >= 2, "ExStretch requires k >= 2");
        let orderx_sweep = TruncatedOrderSweep::new(n, RoundtripOrder::level_size(n, k_x - 1, k_x));
        {
            let _span = rtr_telemetry::span!("build.shared_sweep", "4 consumers");
            broadcast_rows(m, &[&landmark_sweep, &cover_sweep, &order6_sweep, &orderx_sweep]);
        }

        let landmark = {
            let _span = rtr_telemetry::span!("build.landmark_finish");
            landmark_sweep.finish()
        };
        let order6 = order6_sweep.finish();
        let orderx = orderx_sweep.finish();
        let mut levels: Vec<LevelCover> = {
            let _span = rtr_telemetry::span!("cover.scale_group", 0);
            cover_sweep.finish_levels(g, plan.k())
        };
        for (group_index, group_scales) in scale_groups.enumerate() {
            let _span = rtr_telemetry::span!("cover.scale_group", group_index + 1);
            let sweep = plan.ball_sweep(group_scales);
            broadcast_rows(m, &[&sweep]);
            levels.extend(sweep.finish_levels(g, plan.k()));
        }
        let cover = DoubleTreeCover::from_levels(plan.k(), levels);
        let treecover = {
            let _span = rtr_telemetry::span!("build.treecover_substrate");
            TreeCoverScheme::from_cover(g, m, &cover)
        };

        let cover_ref = &cover;
        let (order6_ref, orderx_ref) = (&order6, &orderx);
        let result = crossbeam::scope(|scope| {
            let h6 = scope.spawn(move |_| {
                let _span = rtr_telemetry::span!("build.stretch6");
                StretchSix::build_with_order(g, m, names, landmark, order6_ref, params.stretch6)
            });
            let hx = scope.spawn(move |_| {
                let _span = rtr_telemetry::span!("build.exstretch");
                ExStretch::build_with_order(g, m, names, treecover, orderx_ref, params.exstretch)
            });
            let hp = scope.spawn(move |_| {
                let _span = rtr_telemetry::span!("build.polystretch");
                PolynomialStretch::build_with_cover(g, m, names, cover_ref, params.poly)
            });
            let stretch6 = h6.join().expect("stretch-6 construction panicked");
            let exstretch = hx.join().expect("exstretch construction panicked");
            let poly = hp.join().expect("polystretch construction panicked");
            SparseSchemeSuite { stretch6, exstretch, poly }
        });
        match result {
            Ok(suite) => suite,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Decomposes the suite into its three schemes for the serving-plane
    /// handoff (see [`SchemeSuite::into_parts`]).
    pub fn into_parts(
        self,
    ) -> (StretchSix<LandmarkBallScheme>, ExStretch<TreeCoverScheme>, PolynomialStretch) {
        (self.stretch6, self.exstretch, self.poly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::strongly_connected_gnp;
    use rtr_metric::{CachedSubsetOracle, DistanceMatrix, LazyDijkstraOracle};
    use rtr_sim::Simulator;

    #[test]
    fn suite_builds_all_three_schemes_from_one_dense_oracle() {
        let g = strongly_connected_gnp(32, 0.12, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(32, 9);
        let suite = SchemeSuite::build(&g, &m, &names, SuiteParams::default());
        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let r6 = sim.roundtrip(&suite.stretch6, s, t, names.name_of(t)).unwrap();
                assert!(r6.within_stretch(&m, 6, 1));
                let rx = sim.roundtrip(&suite.exstretch, s, t, names.name_of(t)).unwrap();
                assert!(rx.total_weight() >= m.roundtrip(s, t));
                let rp = sim.roundtrip(&suite.poly, s, t, names.name_of(t)).unwrap();
                assert!(rp.within_stretch(&m, suite.poly.paper_stretch_bound(), 1));
            }
        }
    }

    #[test]
    fn sparse_suite_serves_correct_roundtrips_through_a_lazy_oracle() {
        let g = strongly_connected_gnp(40, 0.1, 11).unwrap();
        let names = NamingAssignment::random(40, 2);
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 8);
        let suite = SparseSchemeSuite::build(&g, &lazy, &names, SparseSuiteParams::default());
        let sim = Simulator::new(&g);
        // The tree-cover substrate gives the sparse exstretch a *proven*
        // budget: (2^k − 1)·β with β = 4(2k_c − 1).
        let ex_bound = suite.exstretch.paper_stretch_bound().unwrap();
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                // The landmark substrate's stretch is measured, not proven
                // (DESIGN.md substitution): delivery must be exact, stretch
                // merely sane.
                let r6 = sim.roundtrip(&suite.stretch6, s, t, names.name_of(t)).unwrap();
                assert!(r6.total_weight() >= dense.roundtrip(s, t));
                let rx = sim.roundtrip(&suite.exstretch, s, t, names.name_of(t)).unwrap();
                assert!(rx.within_stretch(&dense, ex_bound, 1));
                let rp = sim.roundtrip(&suite.poly, s, t, names.name_of(t)).unwrap();
                assert!(rp.within_stretch(&dense, suite.poly.paper_stretch_bound(), 1));
            }
        }
        // (Sublinearity of the landmark tables is asserted at n = 100 in the
        // substrate's own tests; at n = 40 the √n-scale constants dominate.)
        let (s6, sx, sp) = suite.into_parts();
        use rtr_sim::RoundtripRouting;
        assert_eq!(s6.scheme_name(), "stretch6");
        assert_eq!(sx.scheme_name(), "exstretch");
        assert_eq!(sp.scheme_name(), "polystretch");
    }

    #[test]
    fn suite_through_lazy_oracle_matches_dense_construction() {
        // The three schemes hammer the shared lazy oracle from three threads;
        // the result must be identical to the dense build (same tables ⇒ same
        // routes and table stats).
        let g = strongly_connected_gnp(28, 0.15, 7).unwrap();
        let names = NamingAssignment::random(28, 3);
        let dense = DistanceMatrix::build(&g);
        let via_dense = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());

        let lazy = LazyDijkstraOracle::new(&g, 8);
        let via_lazy = SchemeSuite::build(&g, &lazy, &names, SuiteParams::default());

        let subset = CachedSubsetOracle::new(&g);
        let via_subset = SchemeSuite::build(&g, &subset, &names, SuiteParams::default());

        let sim = Simulator::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                // StretchSix construction is oracle-independent bit for bit
                // (orders and balls only), so routes must coincide exactly.
                let a = sim.roundtrip(&via_dense.stretch6, s, t, names.name_of(t)).unwrap();
                let b = sim.roundtrip(&via_lazy.stretch6, s, t, names.name_of(t)).unwrap();
                let c = sim.roundtrip(&via_subset.stretch6, s, t, names.name_of(t)).unwrap();
                assert_eq!(a.total_weight(), b.total_weight(), "({s},{t}) dense vs lazy");
                assert_eq!(a.total_weight(), c.total_weight(), "({s},{t}) dense vs subset");
                // Cover-based schemes may gain one extra hierarchy level from
                // the lazy oracle's 2×-bounded diameter estimate; the paper
                // bound must hold either way.
                let rp = sim.roundtrip(&via_lazy.poly, s, t, names.name_of(t)).unwrap();
                assert!(rp.within_stretch(&dense, via_lazy.poly.paper_stretch_bound(), 1));
            }
        }
        for v in g.nodes() {
            use rtr_sim::RoundtripRouting;
            assert_eq!(via_dense.stretch6.table_stats(v), via_lazy.stretch6.table_stats(v));
        }
        assert!(lazy.stats().peak_resident_rows <= 8);
    }
}
