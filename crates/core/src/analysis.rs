//! The shared evaluation harness: run many roundtrip requests through the
//! simulator and summarize stretch, table sizes and header sizes.
//!
//! Every experiment binary in `rtr-bench` funnels its measurements through
//! [`SchemeEvaluation`] so that all tables and figures report the same
//! quantities, computed the same way.

use crate::naming::NamingAssignment;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtr_graph::{DiGraph, NodeId};
use rtr_metric::DistanceOracle;
use rtr_sim::{RoundtripRouting, SimError, Simulator};

/// Which source/destination pairs an evaluation exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSelection {
    /// Every ordered pair `(s, t)` with `s ≠ t`.
    AllPairs,
    /// A fixed number of pairs sampled uniformly without replacement (seeded).
    Sampled {
        /// Number of pairs to draw.
        count: usize,
        /// Sample seed.
        seed: u64,
    },
}

/// The summary produced by [`SchemeEvaluation::measure`].
#[derive(Debug, Clone)]
pub struct SchemeEvaluation {
    /// The scheme's name (as reported by `scheme_name`).
    pub scheme: String,
    /// Number of nodes of the evaluated graph.
    pub n: usize,
    /// Number of edges of the evaluated graph.
    pub m: usize,
    /// Number of roundtrip requests evaluated.
    pub pairs: usize,
    /// Mean roundtrip stretch.
    pub avg_stretch: f64,
    /// Maximum roundtrip stretch.
    pub max_stretch: f64,
    /// Median roundtrip stretch.
    pub p50_stretch: f64,
    /// 95th-percentile roundtrip stretch.
    pub p95_stretch: f64,
    /// 99th-percentile roundtrip stretch.
    pub p99_stretch: f64,
    /// Fraction of requests with stretch exactly 1 (optimally routed).
    pub optimal_fraction: f64,
    /// Mean table entries per node (full scheme: dictionary + substrate).
    pub avg_table_entries: f64,
    /// Largest table entries at any node.
    pub max_table_entries: usize,
    /// Largest table size in bits at any node.
    pub max_table_bits: usize,
    /// Largest header observed across all requests, in bits.
    pub max_header_bits: usize,
    /// Mean hop count per roundtrip.
    pub avg_hops: f64,
}

impl SchemeEvaluation {
    /// Runs the evaluation.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error encountered; a correct scheme
    /// never produces one.
    pub fn measure<S: RoundtripRouting, O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        scheme: &S,
        selection: PairSelection,
    ) -> Result<Self, SimError> {
        let sim = Simulator::new(g);
        let n = g.node_count();
        let pairs: Vec<(NodeId, NodeId)> = match selection {
            PairSelection::AllPairs => {
                let mut v = Vec::with_capacity(n * (n - 1));
                for s in g.nodes() {
                    for t in g.nodes() {
                        if s != t {
                            v.push((s, t));
                        }
                    }
                }
                v
            }
            PairSelection::Sampled { count, seed } => {
                let mut all = Vec::with_capacity(n * (n - 1));
                for s in g.nodes() {
                    for t in g.nodes() {
                        if s != t {
                            all.push((s, t));
                        }
                    }
                }
                let mut rng = StdRng::seed_from_u64(seed);
                all.shuffle(&mut rng);
                all.truncate(count.min(all.len()));
                all
            }
        };

        let mut stretches = Vec::with_capacity(pairs.len());
        let mut max_header_bits = 0usize;
        let mut total_hops = 0usize;
        let mut optimal = 0usize;
        for &(s, t) in &pairs {
            let report = sim.roundtrip(scheme, s, t, names.name_of(t))?;
            let stretch = report.stretch(m);
            if report.total_weight() == m.roundtrip(s, t) {
                optimal += 1;
            }
            stretches.push(stretch);
            max_header_bits = max_header_bits.max(report.max_header_bits());
            total_hops += report.total_hops();
        }
        stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretch is never NaN"));

        let percentile = |p: f64| -> f64 {
            if stretches.is_empty() {
                return 0.0;
            }
            let idx = ((stretches.len() as f64 - 1.0) * p).round() as usize;
            stretches[idx]
        };

        let mut max_table_entries = 0usize;
        let mut max_table_bits = 0usize;
        let mut total_entries = 0usize;
        for v in g.nodes() {
            let stats = scheme.table_stats(v);
            max_table_entries = max_table_entries.max(stats.entries);
            max_table_bits = max_table_bits.max(stats.bits);
            total_entries += stats.entries;
        }

        Ok(SchemeEvaluation {
            scheme: scheme.scheme_name().to_string(),
            n,
            m: g.edge_count(),
            pairs: pairs.len(),
            avg_stretch: stretches.iter().sum::<f64>() / stretches.len().max(1) as f64,
            max_stretch: stretches.last().copied().unwrap_or(0.0),
            p50_stretch: percentile(0.5),
            p95_stretch: percentile(0.95),
            p99_stretch: percentile(0.99),
            optimal_fraction: optimal as f64 / pairs.len().max(1) as f64,
            avg_table_entries: total_entries as f64 / n as f64,
            max_table_entries,
            max_table_bits,
            max_header_bits,
            avg_hops: total_hops as f64 / pairs.len().max(1) as f64,
        })
    }

    /// A fixed-width table row used by the experiment binaries
    /// (`scheme  n  max-entries  avg-entries  avg-stretch  p95  max`).
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>6} {:>12} {:>12.1} {:>10.3} {:>8.3} {:>8.3}",
            self.scheme,
            self.n,
            self.max_table_entries,
            self.avg_table_entries,
            self.avg_stretch,
            self.p95_stretch,
            self.max_stretch
        )
    }

    /// The header line matching [`table_row`](Self::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>6} {:>12} {:>12} {:>10} {:>8} {:>8}",
            "scheme", "n", "max-entries", "avg-entries", "avg-str", "p95-str", "max-str"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stretch6Params, StretchSix};
    use rtr_graph::generators::strongly_connected_gnp;
    use rtr_metric::DistanceMatrix;
    use rtr_namedep::ExactOracleScheme;

    #[test]
    fn all_pairs_evaluation_of_stretch6() {
        let g = strongly_connected_gnp(30, 0.12, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(30, 1);
        let scheme = StretchSix::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            Stretch6Params::default(),
        );
        let eval =
            SchemeEvaluation::measure(&g, &m, &names, &scheme, PairSelection::AllPairs).unwrap();
        assert_eq!(eval.pairs, 30 * 29);
        assert!(eval.max_stretch <= 6.0 + 1e-9);
        assert!(eval.avg_stretch >= 1.0);
        assert!(eval.p50_stretch <= eval.p95_stretch);
        assert!(eval.p95_stretch <= eval.max_stretch);
        assert!(eval.optimal_fraction > 0.0);
        assert!(eval.max_table_entries > 0);
        assert!(eval.max_header_bits > 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let g = strongly_connected_gnp(25, 0.15, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(25, 2);
        let scheme = StretchSix::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            Stretch6Params::default(),
        );
        let a = SchemeEvaluation::measure(
            &g,
            &m,
            &names,
            &scheme,
            PairSelection::Sampled { count: 50, seed: 9 },
        )
        .unwrap();
        let b = SchemeEvaluation::measure(
            &g,
            &m,
            &names,
            &scheme,
            PairSelection::Sampled { count: 50, seed: 9 },
        )
        .unwrap();
        assert_eq!(a.pairs, 50);
        assert_eq!(a.avg_stretch, b.avg_stretch);
        assert_eq!(a.max_stretch, b.max_stretch);
    }

    #[test]
    fn table_rows_align_with_header() {
        let header = SchemeEvaluation::table_header();
        assert!(header.contains("scheme"));
        assert!(header.contains("max-str"));
    }
}
