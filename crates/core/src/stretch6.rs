//! The stretch-6 TINN roundtrip routing scheme (§2, Fig. 3).
//!
//! Tables of size Õ(√n), headers of `O(log² n)` bits, roundtrip stretch 6.
//!
//! Construction (paper §2.1): let `N(u)` be the first `⌈√n⌉` nodes of
//! `Init_u` and cut the name space into `⌈√n⌉`-sized blocks. Each node `u`
//! stores
//!
//! 1. `(name(v), R3(v))` for every `v ∈ N(u)`;
//! 2. for every block index `i`, the `R3` label of a node `t ∈ N(u)` holding
//!    block `B_i` (such a `t` exists by Lemma 1);
//! 3. for every block it holds, the `R3` label of every name in that block;
//! 4. the substrate table `Tab3(u)`.
//!
//! Routing (Fig. 3): if the destination name is known locally (cases 1/3) the
//! packet heads straight for it; otherwise it first visits the dictionary
//! holder `w ∈ N(s)` of the destination's block, learns `R3(t)` there, and
//! continues to `t`. The acknowledgment returns using `R3(s)`, which was
//! written into the header at the source.

use crate::naming::NamingAssignment;
use rtr_dictionary::{AddressSpace, BlockDistribution, DistributionParams, NodeName};
use rtr_graph::{DiGraph, NodeId};
use rtr_metric::{DistanceOracle, RoundtripOrder};
use rtr_namedep::{LabelBits, NameDependentSubstrate};
use rtr_sim::{id_bits, ForwardAction, HeaderBits, RoundtripRouting, RoutingError, TableStats};
use std::collections::HashMap;
use std::fmt;

/// Parameters of the stretch-6 scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stretch6Params {
    /// Seed and density of the Lemma 1 block distribution.
    pub blocks: DistributionParams,
}

/// Which node the packet is currently heading for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the `To` prefix mirrors Fig. 3's wording
enum Leg {
    /// Toward the dictionary holder of the destination's block.
    ToDictionary,
    /// Toward the destination itself.
    ToDestination,
    /// Back toward the original source.
    ToSource,
}

/// Packet mode, mirroring Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fresh packet, not yet seen by any router.
    NewPacket,
    /// Travelling from the source toward the destination.
    Outbound,
    /// Handed back by the destination host for the acknowledgment.
    ReturnPacket,
    /// Travelling back toward the source.
    Inbound,
}

/// The writable packet header of the stretch-6 scheme.
#[derive(Debug, Clone)]
pub struct Stretch6Header<L> {
    mode: Mode,
    leg: Leg,
    dest: NodeName,
    src: Option<NodeName>,
    src_label: Option<L>,
    next_label: Option<L>,
    name_bits: usize,
    label_bits: usize,
}

impl<L: fmt::Debug> HeaderBits for Stretch6Header<L> {
    fn bits(&self) -> usize {
        let mut bits = 4 + self.name_bits; // mode + leg + destination name
        if self.src.is_some() {
            bits += self.name_bits;
        }
        if self.src_label.is_some() {
            bits += self.label_bits;
        }
        if self.next_label.is_some() {
            bits += self.label_bits;
        }
        bits
    }
}

/// The per-node local table.
#[derive(Debug, Clone)]
struct NodeTable<L> {
    own_name: NodeName,
    own_label: L,
    /// (1) `name(v) → R3(v)` for `v ∈ N(u)`.
    near: HashMap<NodeName, L>,
    /// (2) block index → `R3` label of a holder in `N(u)`.
    block_holder: Vec<L>,
    /// (3) dictionary entries of the blocks this node holds.
    dictionary: HashMap<NodeName, L>,
}

/// The stretch-6 TINN compact roundtrip routing scheme, generic over the
/// name-dependent substrate providing the `R3` labels (Lemma 2).
#[derive(Debug)]
pub struct StretchSix<S: NameDependentSubstrate> {
    n: usize,
    space: AddressSpace,
    substrate: S,
    tables: Vec<NodeTable<S::Label>>,
    name_bits: usize,
    label_bits: usize,
    neighborhood_size: usize,
    blocks_per_node_max: usize,
}

impl<S: NameDependentSubstrate> StretchSix<S> {
    /// Builds the scheme's tables.
    ///
    /// `m` must be a distance oracle of `g` (dense matrix or lazy); `names`
    /// the TINN assignment; `substrate` the name-dependent labelled routing
    /// substrate (its labels are the `R3(·)` values stored in tables and
    /// headers).
    ///
    /// Only the first `⌈√n⌉` entries of each `Init_u` are ever consulted, so
    /// the order is built prefix-truncated: memory stays `O(n^{3/2})` and a
    /// lazy oracle is consumed row by row instead of forcing a dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected or the naming size does
    /// not match the graph.
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        substrate: S,
        params: Stretch6Params,
    ) -> Self {
        let n = g.node_count();
        // Validate before the row sweep: on a lazy oracle the sweep is the
        // expensive part, and these assertions should fire immediately.
        assert_eq!(names.len(), n, "naming assignment size mismatch");
        assert!(m.is_strongly_connected(), "stretch-6 scheme requires a strongly connected graph");
        let order = RoundtripOrder::build_truncated(m, RoundtripOrder::level_size(n, 1, 2));
        Self::build_with_order(g, m, names, substrate, &order, params)
    }

    /// Builds the scheme over an **existing** roundtrip order, so the order's
    /// row sweep can be shared with other consumers (the suite collects it on
    /// one [`rtr_metric::broadcast_rows`] pass together with the landmark and
    /// cover sweeps).  The order must store at least the `⌈√n⌉` prefix this
    /// scheme consults; a deeper prefix is fine — every neighborhood read is
    /// a prefix read, so the tables come out bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected, the naming or order
    /// size mismatches, or the order's stored prefix is too shallow.
    pub fn build_with_order<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        substrate: S,
        order: &RoundtripOrder,
        params: Stretch6Params,
    ) -> Self {
        let n = g.node_count();
        assert_eq!(names.len(), n, "naming assignment size mismatch");
        assert!(m.is_strongly_connected(), "stretch-6 scheme requires a strongly connected graph");

        let neighborhood_size = RoundtripOrder::level_size(n, 1, 2);
        assert_eq!(order.node_count(), n, "order size mismatch");
        assert!(
            order.stored_prefix() >= neighborhood_size.min(n),
            "order stores {} entries per node, scheme needs {neighborhood_size}",
            order.stored_prefix()
        );
        let space = AddressSpace::new(n, 2);
        let distribution = BlockDistribution::build(space, order, params.blocks);

        let label_bits = substrate.max_label_bits();
        let name_bits = id_bits(n);

        let mut tables = Vec::with_capacity(n);
        let mut blocks_per_node_max = 0usize;
        for u in g.nodes() {
            let own_name = names.name_of(u);
            let own_label = substrate.label_for(u);

            // (1) Near entries.
            let mut near = HashMap::new();
            for &v in order.neighborhood(u, neighborhood_size) {
                near.insert(names.name_of(v), substrate.label_for(v));
            }

            // (2) One dictionary holder per block, inside N(u).
            let mut block_holder = Vec::with_capacity(space.block_count());
            for b in 0..space.block_count() as u32 {
                let holder = distribution
                    .holder_of_block(order, u, rtr_dictionary::BlockId(b))
                    .expect("Lemma 1 guarantees a holder in every neighborhood");
                block_holder.push(substrate.label_for(holder));
            }

            // (3) Dictionary entries for S'_u = S_u ∪ {block of own name}.
            let mut owned: Vec<rtr_dictionary::BlockId> = distribution.set(u).to_vec();
            let own_block = space.block_of(own_name);
            if !owned.contains(&own_block) {
                owned.push(own_block);
            }
            blocks_per_node_max = blocks_per_node_max.max(owned.len());
            let mut dictionary = HashMap::new();
            for block in owned {
                for name in space.block_members(block) {
                    dictionary.insert(name, substrate.label_for(names.node_of(name)));
                }
            }

            tables.push(NodeTable { own_name, own_label, near, block_holder, dictionary });
        }

        StretchSix {
            n,
            space,
            substrate,
            tables,
            name_bits,
            label_bits,
            neighborhood_size,
            blocks_per_node_max,
        }
    }

    /// The neighborhood size `|N(u)| = ⌈√n⌉` used by the scheme.
    pub fn neighborhood_size(&self) -> usize {
        self.neighborhood_size
    }

    /// Number of nodes the scheme was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The largest number of blocks any node stores (the `O(log n)` of
    /// Lemma 1 plus the node's own block).
    pub fn max_blocks_per_node(&self) -> usize {
        self.blocks_per_node_max
    }

    /// The underlying substrate (for reporting).
    pub fn substrate(&self) -> &S {
        &self.substrate
    }

    /// Size of the TINN dictionary layer alone at node `v` (excluding the
    /// substrate's `Tab3`), used to check the Õ(√n) bound independently of
    /// the substrate choice.
    pub fn dictionary_stats(&self, v: NodeId) -> TableStats {
        let t = &self.tables[v.index()];
        let entries = 1 + t.near.len() + t.block_holder.len() + t.dictionary.len();
        let per_entry = self.name_bits + self.label_bits;
        TableStats { entries, bits: entries * per_entry }
    }

    fn table(&self, v: NodeId) -> &NodeTable<S::Label> {
        &self.tables[v.index()]
    }
}

impl<S: NameDependentSubstrate> RoundtripRouting for StretchSix<S> {
    type Header = Stretch6Header<S::Label>;

    fn scheme_name(&self) -> &'static str {
        "stretch6"
    }

    fn new_packet(&self, _src: NodeId, dst: NodeName) -> Result<Self::Header, RoutingError> {
        Ok(Stretch6Header {
            mode: Mode::NewPacket,
            leg: Leg::ToDestination,
            dest: dst,
            src: None,
            src_label: None,
            next_label: None,
            name_bits: self.name_bits,
            label_bits: self.label_bits,
        })
    }

    fn make_return(&self, at: NodeId, header: &Self::Header) -> Result<Self::Header, RoutingError> {
        if self.table(at).own_name != header.dest {
            return Err(RoutingError::new(at, "return packet created away from the destination"));
        }
        let mut h = header.clone();
        h.mode = Mode::ReturnPacket;
        Ok(h)
    }

    fn forward(
        &self,
        at: NodeId,
        header: &mut Self::Header,
    ) -> Result<ForwardAction, RoutingError> {
        let table = self.table(at);
        loop {
            match header.mode {
                Mode::NewPacket => {
                    header.src = Some(table.own_name);
                    header.src_label = Some(table.own_label.clone());
                    header.mode = Mode::Outbound;
                    if header.dest == table.own_name {
                        return Ok(ForwardAction::Deliver);
                    }
                    if let Some(label) =
                        table.near.get(&header.dest).or_else(|| table.dictionary.get(&header.dest))
                    {
                        header.next_label = Some(label.clone());
                        header.leg = Leg::ToDestination;
                    } else {
                        let block = self.space.block_of(header.dest);
                        let label = table.block_holder[block.index()].clone();
                        header.next_label = Some(label);
                        header.leg = Leg::ToDictionary;
                    }
                }
                Mode::ReturnPacket => {
                    header.mode = Mode::Inbound;
                    header.leg = Leg::ToSource;
                    if header.src == Some(table.own_name) {
                        return Ok(ForwardAction::Deliver);
                    }
                    header.next_label = Some(
                        header
                            .src_label
                            .clone()
                            .ok_or_else(|| RoutingError::new(at, "return packet lost R3(s)"))?,
                    );
                }
                Mode::Outbound | Mode::Inbound => {
                    let label = header
                        .next_label
                        .as_mut()
                        .ok_or_else(|| RoutingError::new(at, "no active leg label"))?;
                    match self.substrate.step(at, label)? {
                        ForwardAction::Forward(port) => return Ok(ForwardAction::Forward(port)),
                        ForwardAction::Deliver => match header.leg {
                            Leg::ToDestination => {
                                if table.own_name == header.dest {
                                    return Ok(ForwardAction::Deliver);
                                }
                                return Err(RoutingError::new(
                                    at,
                                    "R3 label delivered at a node other than the destination",
                                ));
                            }
                            Leg::ToSource => {
                                if Some(table.own_name) == header.src {
                                    return Ok(ForwardAction::Deliver);
                                }
                                return Err(RoutingError::new(
                                    at,
                                    "R3(s) delivered at a node other than the source",
                                ));
                            }
                            Leg::ToDictionary => {
                                let label = table
                                    .dictionary
                                    .get(&header.dest)
                                    .or_else(|| table.near.get(&header.dest))
                                    .ok_or_else(|| {
                                        RoutingError::new(
                                            at,
                                            "dictionary holder is missing the destination entry",
                                        )
                                    })?;
                                header.next_label = Some(label.clone());
                                header.leg = Leg::ToDestination;
                                continue;
                            }
                        },
                    }
                }
            }
        }
    }

    fn table_stats(&self, v: NodeId) -> TableStats {
        self.dictionary_stats(v).merged(self.substrate.table_stats(v))
    }
}

impl<L: LabelBits + Clone + fmt::Debug> Stretch6Header<L> {
    /// Exposes the destination name (used by experiment code for reporting).
    pub fn destination(&self) -> NodeName {
        self.dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp, Family};
    use rtr_metric::DistanceMatrix;
    use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams};
    use rtr_sim::Simulator;

    fn oracle_scheme(
        g: &DiGraph,
        m: &DistanceMatrix,
        names: &NamingAssignment,
    ) -> StretchSix<ExactOracleScheme> {
        StretchSix::build(g, m, names, ExactOracleScheme::build(g), Stretch6Params::default())
    }

    fn check_all_pairs_stretch6<S: NameDependentSubstrate>(
        g: &DiGraph,
        m: &DistanceMatrix,
        names: &NamingAssignment,
        scheme: &StretchSix<S>,
        hard_bound: Option<(u64, u64)>,
    ) -> f64 {
        let sim = Simulator::new(g);
        let mut worst: f64 = 0.0;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim
                    .roundtrip(scheme, s, t, names.name_of(t))
                    .unwrap_or_else(|e| panic!("({s},{t}): {e}"));
                if let Some((num, den)) = hard_bound {
                    assert!(
                        report.within_stretch(m, num, den),
                        "pair ({s},{t}) exceeds stretch {num}/{den}: took {} vs r = {}",
                        report.total_weight(),
                        m.roundtrip(s, t)
                    );
                }
                worst = worst.max(report.stretch(m));
            }
        }
        worst
    }

    #[test]
    fn oracle_substrate_gives_hard_stretch_6_on_random_graphs() {
        for seed in [1u64, 2] {
            let g = strongly_connected_gnp(48, 0.08, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let names = NamingAssignment::random(g.node_count(), seed);
            let scheme = oracle_scheme(&g, &m, &names);
            check_all_pairs_stretch6(&g, &m, &names, &scheme, Some((6, 1)));
        }
    }

    #[test]
    fn oracle_substrate_gives_hard_stretch_6_on_grid() {
        let g = bidirected_grid(6, 6, 3).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(g.node_count(), 9);
        let scheme = oracle_scheme(&g, &m, &names);
        check_all_pairs_stretch6(&g, &m, &names, &scheme, Some((6, 1)));
    }

    #[test]
    fn stretch_6_across_families_with_oracle() {
        for family in Family::ALL {
            let g = family.generate(36, 5).unwrap();
            let m = DistanceMatrix::build(&g);
            let names = NamingAssignment::random(g.node_count(), 17);
            let scheme = oracle_scheme(&g, &m, &names);
            check_all_pairs_stretch6(&g, &m, &names, &scheme, Some((6, 1)));
        }
    }

    #[test]
    fn name_independence_any_permutation_works() {
        let g = strongly_connected_gnp(36, 0.1, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        for names in [
            NamingAssignment::identity(36),
            NamingAssignment::reversed(36),
            NamingAssignment::random(36, 99),
        ] {
            let scheme = oracle_scheme(&g, &m, &names);
            check_all_pairs_stretch6(&g, &m, &names, &scheme, Some((6, 1)));
        }
    }

    #[test]
    fn compact_substrate_delivers_everywhere_with_small_stretch() {
        let g = strongly_connected_gnp(50, 0.08, 6).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(50, 3);
        let substrate = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
        let scheme = StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
        let worst = check_all_pairs_stretch6(&g, &m, &names, &scheme, None);
        // Measured quantity: the compact pipeline stays well within a small
        // constant even though the substrate's bound is only empirical.
        assert!(worst <= 16.0, "worst-case measured stretch {worst} unexpectedly large");
    }

    #[test]
    fn dictionary_tables_are_sqrt_n_sized() {
        let g = strongly_connected_gnp(100, 0.06, 8).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(100, 5);
        let scheme = oracle_scheme(&g, &m, &names);
        let n = 100f64;
        // (1) √n near entries + (2) √n block pointers + (3) O(log n) blocks of
        // √n entries each + own entry.
        let bound = (n.sqrt() * (2.0 + 16.0 * n.ln()) + 2.0) as usize;
        for v in g.nodes() {
            let stats = scheme.dictionary_stats(v);
            assert!(stats.entries <= bound, "{v}: {} entries > {bound}", stats.entries);
            assert!(stats.entries >= scheme.neighborhood_size());
        }
        assert!(scheme.max_blocks_per_node() <= (16.0 * n.ln()) as usize + 2);
    }

    #[test]
    fn headers_are_polylogarithmic() {
        let g = strongly_connected_gnp(64, 0.08, 10).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(64, 11);
        let scheme = oracle_scheme(&g, &m, &names);
        let sim = Simulator::new(&g);
        let word = id_bits(64);
        let header_bound = 4 * word * word + 8 * word;
        for s in g.nodes().take(8) {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                assert!(report.max_header_bits() <= header_bound);
            }
        }
    }

    #[test]
    fn self_addressed_packets_deliver_with_zero_cost() {
        let g = strongly_connected_gnp(20, 0.2, 12).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(20, 13);
        let scheme = oracle_scheme(&g, &m, &names);
        let sim = Simulator::new(&g);
        for v in g.nodes() {
            let report = sim.roundtrip(&scheme, v, v, names.name_of(v)).unwrap();
            assert_eq!(report.total_weight(), 0);
            assert_eq!(report.total_hops(), 0);
        }
    }

    #[test]
    fn scheme_survives_failed_link_when_path_avoids_it() {
        use rtr_sim::SimulatorConfig;
        let g = strongly_connected_gnp(30, 0.15, 14).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(30, 15);
        let scheme = oracle_scheme(&g, &m, &names);
        // Fail one arbitrary link; requests whose route does not use it still
        // succeed, requests that need it report LinkDown (no silent loss).
        let some_edge = {
            let u = NodeId(0);
            (u, g.out_edges(u)[0].to)
        };
        let mut config = SimulatorConfig::for_nodes(30);
        config.fail_link(some_edge.0, some_edge.1);
        let sim = Simulator::with_config(&g, config);
        let mut successes = 0;
        let mut failures = 0;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                match sim.roundtrip(&scheme, s, t, names.name_of(t)) {
                    Ok(report) => {
                        assert!(report.within_stretch(&m, 6, 1));
                        successes += 1;
                    }
                    Err(rtr_sim::SimError::LinkDown { from, to }) => {
                        assert_eq!((from, to), some_edge);
                        failures += 1;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
        }
        assert!(successes > 0);
        assert!(failures > 0, "the failed link was never exercised");
    }
}
