//! The §5 lower bound: on bidirected networks, any TINN roundtrip routing
//! scheme with `o(n)`-bit tables at every node has stretch ≥ 2.
//!
//! Theorem 15 reduces the roundtrip lower bound to the Gavoille–Gengler
//! stretch-3 lower bound for undirected (one-way) routing: take an undirected
//! network `N` that is hard for stretch < 3, replace every edge by two
//! opposite directed edges of the same weight (so `d(u,v) = d(v,u)` and
//! `r(u,v) = 2 d(u,v)`), and observe that a roundtrip scheme of stretch < 2 on
//! `N'` would yield a one-way scheme of stretch < 3 on `N`.
//!
//! A lower bound cannot be "run", but its premises and its construction can
//! be: this module builds the bidirected instances (including a
//! Gavoille–Gengler-style hard family based on dense graphs with many
//! distinct distance profiles), verifies the symmetry property the reduction
//! needs, and lets experiment E10 place our schemes' measured
//! (table size, stretch) points against the `stretch ≥ 2` frontier.

use rtr_graph::generators::bidirected_from_undirected;
use rtr_graph::{DiGraph, NodeId, Weight};
use rtr_metric::DistanceOracle;

/// The hard instance family used by experiment E10: a bidirected graph built
/// from an undirected base graph in which many vertex pairs are at distance
/// exactly 1 or exactly 2, which is the regime the Gavoille–Gengler argument
/// exploits (a scheme with small tables cannot remember which is which, and a
/// single wrong first hop already costs stretch 3 one-way / 2 roundtrip).
///
/// The base graph on `n = 2m` vertices: a perfect matching is *removed* from
/// the complete bipartite graph `K_{m,m}` according to a seed-dependent
/// pattern, so each left vertex is adjacent to all but one right vertex.
/// Matched pairs are at distance 2, all other cross pairs at distance 1.
pub fn hard_bidirected_instance(m: usize, seed: u64) -> DiGraph {
    assert!(m >= 2, "need at least 2 vertices per side");
    let n = 2 * m;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    // A seed-dependent permutation defining the removed matching.
    let mut matching: Vec<usize> = (0..m).collect();
    // Deterministic Fisher–Yates driven by a splitmix stream.
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        s ^= s >> 30;
        s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s ^= s >> 27;
        s
    };
    for i in (1..m).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        matching.swap(i, j);
    }
    for (left, &matched) in matching.iter().enumerate() {
        for right in 0..m {
            if matched == right {
                continue; // removed matching edge
            }
            edges.push((left as u32, (m + right) as u32, 1));
        }
    }
    // Connect the two sides internally so the graph stays connected even for
    // tiny m, and so same-side pairs have finite distance.
    for i in 0..m - 1 {
        edges.push((i as u32, (i + 1) as u32, 1));
        edges.push(((m + i) as u32, (m + i + 1) as u32, 1));
    }
    bidirected_from_undirected(n, &edges, seed).expect("hard instance construction is valid")
}

/// Verifies the symmetry property the reduction of Theorem 15 relies on:
/// `d(u, v) = d(v, u)` for every pair, hence `r(u, v) = 2·d(u, v)`.
pub fn is_distance_symmetric<O: DistanceOracle + ?Sized>(m: &O) -> bool {
    let n = m.node_count();
    for u in 0..n {
        for v in 0..n {
            let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
            if m.distance(u, v) != m.distance(v, u) {
                return false;
            }
        }
    }
    true
}

/// The information-theoretic table-size threshold of the lower bound: Ω(n)
/// bits. For plotting, experiment E10 uses `n/8` bits (one bit per node with a
/// conservative constant) as the "linear regime" reference line.
pub fn linear_table_reference_bits(n: usize) -> usize {
    n / 8
}

/// Translates a *one-way* stretch bound on the undirected base graph into the
/// roundtrip stretch bound the reduction yields on the bidirected instance
/// (the arithmetic step at the end of Theorem 15's proof):
/// a one-way path of length `≤ α·d(u,v)` plus a return of length `≤ β·d(v,u)`
/// gives a roundtrip of length `≤ ((α + β)/2)·r(u,v)` when distances are
/// symmetric.
pub fn roundtrip_stretch_from_oneway(alpha: f64, beta: f64) -> f64 {
    (alpha + beta) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::bidirected_grid;
    use rtr_metric::DistanceMatrix;

    #[test]
    fn hard_instances_are_symmetric_and_strongly_connected() {
        for m in [3usize, 5, 8] {
            let g = hard_bidirected_instance(m, 7);
            assert!(g.is_strongly_connected());
            let dm = DistanceMatrix::build(&g);
            assert!(is_distance_symmetric(&dm));
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(dm.roundtrip(u, v), 2 * dm.distance(u, v));
                }
            }
        }
    }

    #[test]
    fn matched_pairs_are_at_distance_two() {
        let m = 6;
        let g = hard_bidirected_instance(m, 3);
        let dm = DistanceMatrix::build(&g);
        let mut dist1 = 0;
        let mut dist2 = 0;
        for left in 0..m as u32 {
            for right in 0..m as u32 {
                match dm.distance(NodeId(left), NodeId(m as u32 + right)) {
                    1 => dist1 += 1,
                    2 => dist2 += 1,
                    other => panic!("unexpected cross distance {other}"),
                }
            }
        }
        assert_eq!(dist2, m, "exactly one matched (distance-2) partner per left vertex");
        assert_eq!(dist1, m * (m - 1));
    }

    #[test]
    fn generic_bidirected_graphs_are_symmetric() {
        let g = bidirected_grid(4, 5, 9).unwrap();
        let dm = DistanceMatrix::build(&g);
        assert!(is_distance_symmetric(&dm));
    }

    #[test]
    fn reduction_arithmetic() {
        // One-way stretch 3 both ways → roundtrip stretch 3; the theorem's
        // contrapositive: roundtrip < 2 would need (α + β)/2 < 2, i.e. some
        // direction with one-way stretch < 3 on the base graph.
        assert_eq!(roundtrip_stretch_from_oneway(3.0, 3.0), 3.0);
        assert_eq!(roundtrip_stretch_from_oneway(3.0, 1.0), 2.0);
        assert!(roundtrip_stretch_from_oneway(2.9, 1.0) < 2.0);
        assert!(linear_table_reference_bits(1024) >= 128);
    }

    #[test]
    fn different_seeds_remove_different_matchings() {
        let a = hard_bidirected_instance(6, 1);
        let b = hard_bidirected_instance(6, 2);
        let ea: Vec<_> = a
            .nodes()
            .flat_map(|u| a.out_edges(u).iter().map(move |e| (u, e.to)).collect::<Vec<_>>())
            .collect();
        let eb: Vec<_> = b
            .nodes()
            .flat_map(|u| b.out_edges(u).iter().map(move |e| (u, e.to)).collect::<Vec<_>>())
            .collect();
        assert_ne!(ea, eb);
    }
}
