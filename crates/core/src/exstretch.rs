//! The generalized prefix-matching scheme with exponential tradeoff
//! (§3, Figs. 4 and 6).
//!
//! The destination name `⟨t⟩` is matched digit by digit: the packet visits a
//! sequence of waypoints `s = v₀, v₁, …, v_k = t` where every `v_i` holds a
//! block whose digit string agrees with `⟨t⟩` on the first `i` digits. Each
//! hop is routed with the substrate's pairwise handshake labels `R2(v_i,
//! v_{i+1})`, which are stored in `v_i`'s table (storage §3.3) and — for the
//! return trip — pushed onto a stack in the packet header (`WaypointStack` of
//! Fig. 6).
//!
//! With a substrate whose per-pair roundtrip stretch is `β`, Lemma 8 gives
//! `r(v_i, v_{i+1}) ≤ 2^i · r(s, t)` and hence total stretch `(2^k − 1)·β`
//! (Theorem 9 instantiates `β = 2k + ε` with the Roditty–Thorup–Zwick
//! spanner; the exact-oracle substrate gives `β = 1`, which the tests use to
//! assert the `2^k − 1` factor as a hard bound).

use crate::naming::NamingAssignment;
use rtr_dictionary::{AddressSpace, BlockDistribution, DistributionParams, NodeName};
use rtr_graph::{DiGraph, NodeId};
use rtr_metric::{DistanceOracle, RoundtripOrder};
use rtr_namedep::NameDependentSubstrate;
use rtr_sim::{id_bits, ForwardAction, HeaderBits, RoundtripRouting, RoutingError, TableStats};
use std::collections::HashMap;
use std::fmt;

/// Parameters of the exponential-tradeoff scheme.
#[derive(Debug, Clone, Copy)]
pub struct ExStretchParams {
    /// The number of digits `k ≥ 2` (space Õ(n^{1/k}), stretch `(2^k−1)·β`).
    pub k: u32,
    /// Block-distribution tunables (Lemma 4).
    pub blocks: DistributionParams,
}

impl ExStretchParams {
    /// Convenience constructor with default block distribution.
    pub fn with_k(k: u32) -> Self {
        ExStretchParams { k, blocks: DistributionParams::default() }
    }
}

impl Default for ExStretchParams {
    fn default() -> Self {
        ExStretchParams::with_k(2)
    }
}

/// Packet mode (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fresh packet.
    NewPacket,
    /// Travelling toward the destination through the waypoint sequence.
    Outbound,
    /// Handed back by the destination host.
    ReturnPacket,
    /// Retracing the waypoints back to the source.
    Inbound,
}

/// A forward/backward pair of substrate labels for one waypoint hop: the
/// `R2(v_i, v_{i+1})` record (the substrate hands out one label per
/// direction; both are stored in the dictionary entry and the backward one is
/// pushed on the return stack).
#[derive(Debug, Clone)]
struct HopLabels<L> {
    /// Routes `v_i → v_{i+1}`.
    forward: L,
    /// Routes `v_{i+1} → v_i`.
    backward: L,
}

/// The writable header of the exponential scheme (Fig. 6): current waypoint
/// leg, the matched-prefix length, and the stack of backward labels.
#[derive(Debug, Clone)]
pub struct ExStretchHeader<L> {
    mode: Mode,
    dest: NodeName,
    src: Option<NodeName>,
    /// Length of the destination-name prefix matched by the *current*
    /// waypoint (the `Hop` counter of Fig. 6).
    matched: u32,
    /// The label of the leg currently being travelled.
    current: Option<L>,
    /// Backward labels to retrace, most recent on top (`WaypointStack`).
    waypoint_stack: Vec<L>,
    name_bits: usize,
    label_bits: usize,
}

impl<L: fmt::Debug> HeaderBits for ExStretchHeader<L> {
    fn bits(&self) -> usize {
        let mut bits = 4 + self.name_bits + 8; // mode + destination + matched counter
        if self.src.is_some() {
            bits += self.name_bits;
        }
        if self.current.is_some() {
            bits += self.label_bits;
        }
        bits + self.waypoint_stack.len() * self.label_bits
    }
}

/// Per-node table (§3.3).
#[derive(Debug, Clone)]
struct NodeTable<L> {
    own_name: NodeName,
    /// (2) `name(v) → R2(u, v)` for `v ∈ N_1(u)`.
    near: HashMap<NodeName, HopLabels<L>>,
    /// (3a)/(3b) prefix dictionary: `(level i, next digit τ)` entries keyed by
    /// the full target prefix of length `i+1`; the value routes to the nearest
    /// node holding a block matching that prefix (or, at the last level, to
    /// the node owning the exact name).
    prefix_hops: HashMap<Vec<u32>, HopLabels<L>>,
    /// Names in blocks held by this node whose exact owner it knows
    /// (level-`k` entries of (3b)).
    final_hops: HashMap<NodeName, HopLabels<L>>,
}

/// The exponential-tradeoff TINN scheme, generic over the handshake substrate.
#[derive(Debug)]
pub struct ExStretch<S: NameDependentSubstrate> {
    n: usize,
    k: u32,
    space: AddressSpace,
    substrate: S,
    tables: Vec<NodeTable<S::Label>>,
    name_bits: usize,
    label_bits: usize,
}

impl<S: NameDependentSubstrate> ExStretch<S> {
    /// Builds the scheme's tables (storage items (1)–(3) of §3.3; item (1),
    /// the substrate's own table, lives inside `substrate`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, the graph is not strongly connected, or the naming
    /// size mismatches.
    pub fn build<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        substrate: S,
        params: ExStretchParams,
    ) -> Self {
        let n = g.node_count();
        let k = params.k;
        assert!(k >= 2, "ExStretch requires k >= 2");
        // Validate before the row sweep: on a lazy oracle the sweep is the
        // expensive part, and these assertions should fire immediately.
        assert_eq!(names.len(), n, "naming assignment size mismatch");
        assert!(m.is_strongly_connected(), "ExStretch requires a strongly connected graph");
        // The deepest neighborhood any dictionary lookup consults is the
        // level-(k−1) ball, so a prefix-truncated order suffices.
        let order = RoundtripOrder::build_truncated(m, RoundtripOrder::level_size(n, k - 1, k));
        Self::build_with_order(g, m, names, substrate, &order, params)
    }

    /// Builds the scheme over an **existing** roundtrip order, so the order's
    /// row sweep can be shared with other consumers (the suite collects it on
    /// one [`rtr_metric::broadcast_rows`] pass together with the landmark and
    /// cover sweeps).  The order must store at least the level-`(k−1)`
    /// neighborhood prefix; a deeper prefix yields bit-identical tables.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, the graph is not strongly connected, the naming or
    /// order size mismatches, or the order's stored prefix is too shallow.
    pub fn build_with_order<O: DistanceOracle + ?Sized>(
        g: &DiGraph,
        m: &O,
        names: &NamingAssignment,
        substrate: S,
        order: &RoundtripOrder,
        params: ExStretchParams,
    ) -> Self {
        let n = g.node_count();
        let k = params.k;
        assert!(k >= 2, "ExStretch requires k >= 2");
        assert_eq!(names.len(), n, "naming assignment size mismatch");
        assert!(m.is_strongly_connected(), "ExStretch requires a strongly connected graph");
        assert_eq!(order.node_count(), n, "order size mismatch");
        let deepest = RoundtripOrder::level_size(n, k - 1, k);
        assert!(
            order.stored_prefix() >= deepest.min(n),
            "order stores {} entries per node, scheme needs {deepest}",
            order.stored_prefix()
        );
        let space = AddressSpace::new(n, k);
        let distribution = BlockDistribution::build(space, order, params.blocks);

        let name_bits = id_bits(n);
        let label_bits = substrate.max_label_bits();

        // Helper: the S'_u block set (own block always included).
        let owned_blocks = |u: NodeId| {
            let mut blocks = distribution.set(u).to_vec();
            let own = space.block_of(names.name_of(u));
            if !blocks.contains(&own) {
                blocks.push(own);
            }
            blocks
        };

        let n1 = RoundtripOrder::level_size(n, 1, k);
        let mut tables = Vec::with_capacity(n);
        for u in g.nodes() {
            let own_name = names.name_of(u);

            // (2) Handshake labels for the level-1 neighborhood.
            let mut near = HashMap::new();
            for &v in order.neighborhood(u, n1) {
                if v == u {
                    continue;
                }
                near.insert(
                    names.name_of(v),
                    HopLabels {
                        forward: substrate.pair_label(u, v),
                        backward: substrate.pair_label(v, u),
                    },
                );
            }

            // (3a) For every held block, level i < k−1 and digit τ: the nearest
            // node holding a block matching σ^i(B)·τ.
            // (3b) For every held block and digit τ: the node owning the name
            // (block digits)·τ, when that name exists.
            let mut prefix_hops: HashMap<Vec<u32>, HopLabels<S::Label>> = HashMap::new();
            let mut final_hops: HashMap<NodeName, HopLabels<S::Label>> = HashMap::new();
            for block in owned_blocks(u) {
                let block_digits = space.block_digits(block);
                for i in 0..k - 1 {
                    for tau in 0..space.q() {
                        let mut prefix = block_digits[..i as usize].to_vec();
                        prefix.push(tau);
                        if prefix_hops.contains_key(&prefix) {
                            continue;
                        }
                        if let Some(w) = distribution.holder_for_prefix(order, u, i + 1, &prefix) {
                            prefix_hops.insert(
                                prefix,
                                HopLabels {
                                    forward: substrate.pair_label(u, w),
                                    backward: substrate.pair_label(w, u),
                                },
                            );
                        }
                    }
                }
                for tau in 0..space.q() {
                    let mut digits = block_digits.clone();
                    digits.push(tau);
                    if let Some(name) = space.from_digits(&digits) {
                        let owner = names.node_of(name);
                        final_hops.insert(
                            name,
                            HopLabels {
                                forward: substrate.pair_label(u, owner),
                                backward: substrate.pair_label(owner, u),
                            },
                        );
                    }
                }
            }

            tables.push(NodeTable { own_name, near, prefix_hops, final_hops });
        }

        ExStretch { n, k, space, substrate, tables, name_bits, label_bits }
    }

    /// The scheme's digit count `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of nodes the scheme was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The underlying substrate.
    pub fn substrate(&self) -> &S {
        &self.substrate
    }

    /// The scheme's proven stretch ceiling `(2^k − 1)·β`, where `β` is the
    /// substrate's guaranteed pairwise roundtrip stretch (Theorem 13's
    /// `4(2k_c − 1)` for the tree-cover substrate, 1 for the exact oracle).
    /// `None` when the substrate's stretch is measured, not proven — the
    /// single source every bound assertion (tests, the engine's verification
    /// plane, the serving benches) must enforce, mirroring
    /// [`crate::PolynomialStretch::paper_stretch_bound`].
    pub fn paper_stretch_bound(&self) -> Option<u64> {
        self.substrate
            .guaranteed_roundtrip_stretch()
            .map(|beta| ((1u64 << self.k) - 1) * beta as u64)
    }

    /// Table size of the TINN dictionary layer alone (excluding the
    /// substrate), for the Õ(k·n^{1/k}) space check.
    pub fn dictionary_stats(&self, v: NodeId) -> TableStats {
        let t = &self.tables[v.index()];
        let entries = 1 + t.near.len() + t.prefix_hops.len() + t.final_hops.len();
        // Each entry stores two substrate labels plus its key.
        let per_entry = self.name_bits + 2 * self.label_bits;
        TableStats { entries, bits: entries * per_entry }
    }

    fn table(&self, v: NodeId) -> &NodeTable<S::Label> {
        &self.tables[v.index()]
    }

    /// Finds the dictionary entry the current waypoint uses to reach the next
    /// waypoint, given how many digits of the destination are matched so far.
    fn next_hop_entry<'a>(
        &'a self,
        table: &'a NodeTable<S::Label>,
        dest: NodeName,
        matched: u32,
    ) -> Option<(&'a HopLabels<S::Label>, u32)> {
        let dest_digits = self.space.digits(dest);
        // Try to jump as far as possible: exact owner first (level k), then
        // successively longer prefixes down to `matched + 1`.
        if let Some(hop) = table.final_hops.get(&dest) {
            return Some((hop, self.k));
        }
        let mut best: Option<(&HopLabels<S::Label>, u32)> = None;
        let mut len = self.k - 1;
        loop {
            if len <= matched {
                break;
            }
            let prefix = dest_digits[..len as usize].to_vec();
            if let Some(hop) = table.prefix_hops.get(&prefix) {
                best = Some((hop, len));
                break;
            }
            len -= 1;
        }
        // Also consider the near table: a neighbor whose name matches a longer
        // prefix than we could find in the dictionary, or the destination
        // itself if it happens to be a level-1 neighbor.
        if let Some(hop) = table.near.get(&dest) {
            return Some((hop, self.k));
        }
        best
    }
}

impl<S: NameDependentSubstrate> RoundtripRouting for ExStretch<S> {
    type Header = ExStretchHeader<S::Label>;

    fn scheme_name(&self) -> &'static str {
        "exstretch"
    }

    fn new_packet(&self, _src: NodeId, dst: NodeName) -> Result<Self::Header, RoutingError> {
        Ok(ExStretchHeader {
            mode: Mode::NewPacket,
            dest: dst,
            src: None,
            matched: 0,
            current: None,
            waypoint_stack: Vec::new(),
            name_bits: self.name_bits,
            label_bits: self.label_bits,
        })
    }

    fn make_return(&self, at: NodeId, header: &Self::Header) -> Result<Self::Header, RoutingError> {
        if self.table(at).own_name != header.dest {
            return Err(RoutingError::new(at, "return packet created away from the destination"));
        }
        let mut h = header.clone();
        h.mode = Mode::ReturnPacket;
        Ok(h)
    }

    fn forward(
        &self,
        at: NodeId,
        header: &mut Self::Header,
    ) -> Result<ForwardAction, RoutingError> {
        let table = self.table(at);
        loop {
            match header.mode {
                Mode::NewPacket => {
                    header.src = Some(table.own_name);
                    header.mode = Mode::Outbound;
                    if header.dest == table.own_name {
                        return Ok(ForwardAction::Deliver);
                    }
                    header.matched = self.space.common_prefix_len(table.own_name, header.dest);
                    let (hop, matched) = self
                        .next_hop_entry(table, header.dest, header.matched)
                        .ok_or_else(|| {
                            RoutingError::new(
                                at,
                                "no dictionary entry toward the destination prefix",
                            )
                        })?;
                    header.current = Some(hop.forward.clone());
                    header.waypoint_stack.push(hop.backward.clone());
                    header.matched = matched;
                }
                Mode::ReturnPacket => {
                    header.mode = Mode::Inbound;
                    if header.src == Some(table.own_name) {
                        return Ok(ForwardAction::Deliver);
                    }
                    let back = header.waypoint_stack.pop().ok_or_else(|| {
                        RoutingError::new(at, "return packet with an empty waypoint stack")
                    })?;
                    header.current = Some(back);
                }
                Mode::Outbound => {
                    let label = header
                        .current
                        .as_mut()
                        .ok_or_else(|| RoutingError::new(at, "no active leg label"))?;
                    match self.substrate.step(at, label)? {
                        ForwardAction::Forward(port) => return Ok(ForwardAction::Forward(port)),
                        ForwardAction::Deliver => {
                            // Arrived at the current waypoint.
                            if table.own_name == header.dest {
                                return Ok(ForwardAction::Deliver);
                            }
                            let (hop, matched) = self
                                .next_hop_entry(table, header.dest, header.matched)
                                .ok_or_else(|| {
                                    RoutingError::new(
                                        at,
                                        "waypoint is missing the next prefix dictionary entry",
                                    )
                                })?;
                            header.current = Some(hop.forward.clone());
                            header.waypoint_stack.push(hop.backward.clone());
                            header.matched = matched;
                            continue;
                        }
                    }
                }
                Mode::Inbound => {
                    let label = header
                        .current
                        .as_mut()
                        .ok_or_else(|| RoutingError::new(at, "no active leg label"))?;
                    match self.substrate.step(at, label)? {
                        ForwardAction::Forward(port) => return Ok(ForwardAction::Forward(port)),
                        ForwardAction::Deliver => {
                            if Some(table.own_name) == header.src {
                                return Ok(ForwardAction::Deliver);
                            }
                            let back = header.waypoint_stack.pop().ok_or_else(|| {
                                RoutingError::new(at, "waypoint stack exhausted before the source")
                            })?;
                            header.current = Some(back);
                            continue;
                        }
                    }
                }
            }
        }
    }

    fn table_stats(&self, v: NodeId) -> TableStats {
        self.dictionary_stats(v).merged(self.substrate.table_stats(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::generators::{bidirected_grid, strongly_connected_gnp};
    use rtr_metric::DistanceMatrix;
    use rtr_namedep::{ExactOracleScheme, TreeCoverScheme};
    use rtr_sim::Simulator;

    fn check_all_pairs<S: NameDependentSubstrate>(
        g: &DiGraph,
        m: &DistanceMatrix,
        names: &NamingAssignment,
        scheme: &ExStretch<S>,
        hard_bound: Option<(u64, u64)>,
    ) -> f64 {
        let sim = Simulator::new(g);
        let mut worst: f64 = 0.0;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim
                    .roundtrip(scheme, s, t, names.name_of(t))
                    .unwrap_or_else(|e| panic!("({s},{t}): {e}"));
                if let Some((num, den)) = hard_bound {
                    assert!(
                        report.within_stretch(m, num, den),
                        "pair ({s},{t}) exceeds {num}/{den}: {} vs r={}",
                        report.total_weight(),
                        m.roundtrip(s, t)
                    );
                }
                worst = worst.max(report.stretch(m));
            }
        }
        worst
    }

    #[test]
    fn oracle_substrate_meets_the_2k_minus_1_bound() {
        // Theorem 9 with substrate roundtrip factor β = 1: stretch ≤ 2^k − 1.
        for (n, k, seed) in [(36usize, 2u32, 1u64), (48, 3, 2), (64, 4, 3)] {
            let g = strongly_connected_gnp(n, 0.1, seed).unwrap();
            let m = DistanceMatrix::build(&g);
            let names = NamingAssignment::random(n, seed);
            let scheme = ExStretch::build(
                &g,
                &m,
                &names,
                ExactOracleScheme::build(&g),
                ExStretchParams::with_k(k),
            );
            let bound = (1u64 << k) - 1;
            check_all_pairs(&g, &m, &names, &scheme, Some((bound, 1)));
        }
    }

    #[test]
    fn tree_cover_substrate_meets_the_combined_bound() {
        // With the Theorem 13 cover (k_c = 2) the substrate's pairwise
        // roundtrip bound is β = 4(2k_c − 1) = 12, so the composed bound is
        // (2^k − 1)·β.
        let g = strongly_connected_gnp(40, 0.1, 4).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(40, 7);
        let substrate = TreeCoverScheme::build(&g, &m, 2);
        let k = 2u32;
        let scheme = ExStretch::build(&g, &m, &names, substrate, ExStretchParams::with_k(k));
        let bound = scheme.paper_stretch_bound().unwrap();
        assert_eq!(bound, ((1u64 << k) - 1) * 12);
        check_all_pairs(&g, &m, &names, &scheme, Some((bound, 1)));
    }

    #[test]
    fn works_on_grids_and_under_any_naming() {
        let g = bidirected_grid(6, 6, 5).unwrap();
        let m = DistanceMatrix::build(&g);
        for names in [NamingAssignment::identity(36), NamingAssignment::random(36, 2)] {
            let scheme = ExStretch::build(
                &g,
                &m,
                &names,
                ExactOracleScheme::build(&g),
                ExStretchParams::with_k(3),
            );
            check_all_pairs(&g, &m, &names, &scheme, Some((7, 1)));
        }
    }

    #[test]
    fn dictionary_tables_respect_the_lemma_6_budget() {
        // Lemma 6: the dictionary layer stores O(k · n^{1/k}) entries per held
        // block plus the N_1 neighborhood. Check the explicit per-k budget
        // (with the Lemma 1/4 block-count constant) and sublinearity.
        let g = strongly_connected_gnp(128, 0.05, 9).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(128, 1);
        let n = 128f64;
        for k in [2u32, 3, 4] {
            let scheme = ExStretch::build(
                &g,
                &m,
                &names,
                ExactOracleScheme::build(&g),
                ExStretchParams::with_k(k),
            );
            let q = rtr_dictionary::AddressSpace::alphabet_size(128, k) as f64;
            let blocks_held = 16.0 * n.ln() + 2.0;
            let budget = (blocks_held * k as f64 * q + n.powf(1.0 / k as f64) + 2.0) as usize;
            let max_entries = g.nodes().map(|v| scheme.dictionary_stats(v).entries).max().unwrap();
            assert!(
                max_entries <= budget,
                "k={k}: {max_entries} entries exceed the Lemma 6 budget {budget}"
            );
            assert!(max_entries * 2 < 128 * 3, "k={k}: dictionary not sublinear enough");
        }
    }

    #[test]
    fn header_stack_stays_within_k_labels() {
        let g = strongly_connected_gnp(48, 0.08, 11).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(48, 3);
        let k = 3u32;
        let scheme = ExStretch::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            ExStretchParams::with_k(k),
        );
        let sim = Simulator::new(&g);
        let word = id_bits(48);
        let label_bits = scheme.substrate().max_label_bits();
        let bound = 4 + 2 * word + 8 + label_bits + k as usize * label_bits;
        for s in g.nodes().take(6) {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let report = sim.roundtrip(&scheme, s, t, names.name_of(t)).unwrap();
                assert!(
                    report.max_header_bits() <= bound,
                    "header grew to {} bits (bound {bound})",
                    report.max_header_bits()
                );
            }
        }
    }

    #[test]
    fn self_addressed_packets_cost_nothing() {
        let g = strongly_connected_gnp(20, 0.2, 13).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(20, 5);
        let scheme = ExStretch::build(
            &g,
            &m,
            &names,
            ExactOracleScheme::build(&g),
            ExStretchParams::default(),
        );
        let sim = Simulator::new(&g);
        for v in g.nodes() {
            let report = sim.roundtrip(&scheme, v, v, names.name_of(v)).unwrap();
            assert_eq!(report.total_weight(), 0);
        }
    }
}
