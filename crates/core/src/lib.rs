//! # rtr-core — compact roundtrip routing with topology-independent node names
//!
//! The primary contribution of Arias, Cowen and Laing (PODC 2003): the first
//! *name-independent* compact roundtrip routing schemes for strongly connected
//! directed graphs. Three schemes are implemented, each as a
//! [`rtr_sim::RoundtripRouting`] so that the distributed simulator can drive
//! them hop by hop using only local tables and writable packet headers:
//!
//! * [`StretchSix`] (§2, Fig. 3) — Õ(√n) tables, `O(log² n)` headers,
//!   stretch 6;
//! * [`ExStretch`] (§3, Figs. 4/6) — Õ(n^{1/k}) tables, prefix-matching
//!   waypoints, stretch `(2^k − 1) · β` where `β` is the roundtrip stretch of
//!   the underlying name-dependent substrate (the paper's `2k + ε`);
//! * [`PolynomialStretch`] (§4, Figs. 9/11) — hierarchical double-tree covers,
//!   Õ(k²n^{2/k} log RTDiam) tables, stretch `8k² + 4k − 4` relative to the
//!   cover's height guarantee.
//!
//! Supporting modules:
//!
//! * [`naming`] — the adversarial TINN name assignment (a seeded permutation
//!   of `{0, …, n−1}` plus worst-case-style permutations for tests);
//! * [`lowerbound`] — the §5 construction: bidirected networks on which any
//!   TINN roundtrip scheme with `o(n)` tables must have stretch ≥ 2;
//! * [`analysis`] — evaluation harness shared by the experiments: run
//!   all-pairs (or sampled) roundtrips, collect stretch distributions, table
//!   and header sizes.
//!
//! ```no_run
//! use rtr_core::{naming::NamingAssignment, StretchSix, Stretch6Params};
//! use rtr_graph::generators::strongly_connected_gnp;
//! use rtr_metric::DistanceMatrix;
//! use rtr_namedep::ExactOracleScheme;
//! use rtr_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = strongly_connected_gnp(256, 0.03, 7)?;
//! let m = DistanceMatrix::build(&g);
//! let names = NamingAssignment::random(g.node_count(), 42);
//! let substrate = ExactOracleScheme::build(&g);
//! let scheme = StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
//! let sim = Simulator::new(&g);
//! let (s, t) = (rtr_graph::NodeId(3), rtr_graph::NodeId(200));
//! let report = sim.roundtrip(&scheme, s, t, names.name_of(t))?;
//! assert!(report.within_stretch(&m, 6, 1));
//! # Ok(())
//! # }
//! ```
//!
//! In the end-to-end pipeline (see the architecture diagram in the top-level
//! `README.md`) this crate is the scheme layer: its built schemes are frozen
//! into `rtr-engine` planes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod exstretch;
pub mod lowerbound;
pub mod naming;
mod polystretch;
mod repair;
mod stretch6;
mod suite;

pub use exstretch::{ExStretch, ExStretchParams};
pub use polystretch::{PolyParams, PolynomialStretch};
pub use repair::{RepairStats, SparseRepairKit};
pub use stretch6::{Stretch6Params, StretchSix};
pub use suite::{SchemeSuite, SparseSchemeSuite, SparseSuiteParams, SuiteParams};
