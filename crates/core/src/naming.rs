//! The topology-independent node-name assignment (§1.1.2).
//!
//! In the TINN model the adversary names the nodes with an arbitrary
//! permutation of `{0, …, n−1}`. A [`NamingAssignment`] is that permutation:
//! it maps topological [`NodeId`]s to [`NodeName`]s and back. Scheme code
//! treats names as opaque dictionary keys; only the experiments and the
//! simulator (for verifying delivery) ever convert a name back to a node.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtr_dictionary::NodeName;
use rtr_graph::NodeId;

/// A bijection between topological node ids and topology-independent names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamingAssignment {
    /// `name_of[node] = name`.
    name_of: Vec<NodeName>,
    /// `node_of[name] = node`.
    node_of: Vec<NodeId>,
}

impl NamingAssignment {
    /// The identity assignment (`name(v) = v`). Useful as a baseline: a TINN
    /// scheme must behave identically under any assignment, which the tests
    /// check by comparing runs under [`identity`](Self::identity),
    /// [`random`](Self::random) and [`reversed`](Self::reversed).
    pub fn identity(n: usize) -> Self {
        Self::from_names((0..n as u32).map(NodeName).collect())
    }

    /// The reversal `name(v) = n − 1 − v`, a simple "adversarial" assignment
    /// that maximally decorrelates names from ids.
    pub fn reversed(n: usize) -> Self {
        Self::from_names((0..n as u32).map(|i| NodeName(n as u32 - 1 - i)).collect())
    }

    /// A uniformly random permutation drawn with the given seed — the default
    /// adversary used by the experiments.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut names: Vec<NodeName> = (0..n as u32).map(NodeName).collect();
        names.shuffle(&mut StdRng::seed_from_u64(seed));
        Self::from_names(names)
    }

    /// Builds an assignment from an explicit permutation
    /// (`names[node_index] = name`).
    ///
    /// # Panics
    ///
    /// Panics if `names` is not a permutation of `{0, …, n−1}`.
    pub fn from_names(names: Vec<NodeName>) -> Self {
        let n = names.len();
        let mut node_of = vec![NodeId(u32::MAX); n];
        for (i, &name) in names.iter().enumerate() {
            assert!(name.index() < n, "name {name} out of range");
            assert_eq!(node_of[name.index()], NodeId(u32::MAX), "duplicate name {name}");
            node_of[name.index()] = NodeId::from_index(i);
        }
        NamingAssignment { name_of: names, node_of }
    }

    /// Number of nodes/names.
    pub fn len(&self) -> usize {
        self.name_of.len()
    }

    /// True when the assignment is empty (never the case for valid graphs).
    pub fn is_empty(&self) -> bool {
        self.name_of.is_empty()
    }

    /// The name of node `v`.
    pub fn name_of(&self, v: NodeId) -> NodeName {
        self.name_of[v.index()]
    }

    /// The full node-indexed name vector (`result[v.index()] = name_of(v)`),
    /// the form the serving plane (`rtr_engine::FrozenPlane`) snapshots.
    pub fn to_names(&self) -> Vec<NodeName> {
        self.name_of.clone()
    }

    /// The node carrying `name`.
    pub fn node_of(&self, name: NodeName) -> NodeId {
        self.node_of[name.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_reversed() {
        let id = NamingAssignment::identity(5);
        assert_eq!(id.name_of(NodeId(3)), NodeName(3));
        assert_eq!(id.node_of(NodeName(3)), NodeId(3));
        let rev = NamingAssignment::reversed(5);
        assert_eq!(rev.name_of(NodeId(0)), NodeName(4));
        assert_eq!(rev.node_of(NodeName(4)), NodeId(0));
    }

    #[test]
    fn random_is_a_bijection_and_seeded() {
        let a = NamingAssignment::random(100, 7);
        let b = NamingAssignment::random(100, 7);
        let c = NamingAssignment::random(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for i in 0..100u32 {
            assert_eq!(a.node_of(a.name_of(NodeId(i))), NodeId(i));
            assert_eq!(a.name_of(a.node_of(NodeName(i))), NodeName(i));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate name")]
    fn rejects_non_permutations() {
        NamingAssignment::from_names(vec![NodeName(0), NodeName(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_names() {
        NamingAssignment::from_names(vec![NodeName(0), NodeName(7)]);
    }
}
