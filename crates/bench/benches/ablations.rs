//! T4 — ablations of the design choices called out in DESIGN.md §5:
//! landmark sampling rate, block-distribution density, and the polynomial
//! scheme's cover parameter decoupled from its digit parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::analysis::{PairSelection, SchemeEvaluation};
use rtr_core::naming::NamingAssignment;
use rtr_core::{PolyParams, PolynomialStretch, Stretch6Params, StretchSix};
use rtr_dictionary::DistributionParams;
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::DistanceMatrix;
use rtr_namedep::{LandmarkBallScheme, LandmarkParams};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 96usize;
    let g = strongly_connected_gnp(n, 0.08, 13).unwrap();
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(n, 4);
    let selection = PairSelection::Sampled { count: 400, seed: 1 };

    // Ablation 1: landmark sampling rate (space/stretch frontier of the
    // compact substrate under the stretch-6 scheme).
    for factor in [0.5f64, 1.0, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("landmark_factor", format!("{factor:.1}")),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let substrate = LandmarkBallScheme::build(
                        &g,
                        &m,
                        LandmarkParams { landmark_factor: factor, ..Default::default() },
                    );
                    let scheme =
                        StretchSix::build(&g, &m, &names, substrate, Stretch6Params::default());
                    SchemeEvaluation::measure(&g, &m, &names, &scheme, selection)
                        .unwrap()
                        .avg_stretch
                })
            },
        );
    }

    // Ablation 2: block-distribution density (repairs vs table size).
    for density in [0.0f64, 2.0, 4.0, 8.0] {
        group.bench_with_input(
            BenchmarkId::new("block_density", format!("{density:.0}")),
            &density,
            |b, &density| {
                b.iter(|| {
                    let params = Stretch6Params { blocks: DistributionParams { density, seed: 5 } };
                    let substrate = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
                    let scheme = StretchSix::build(&g, &m, &names, substrate, params);
                    scheme.max_blocks_per_node()
                })
            },
        );
    }

    // Ablation 3: polynomial scheme with the cover parameter decoupled from k.
    for cover_k in [2u32, 3] {
        group.bench_with_input(
            BenchmarkId::new("poly_cover_k", cover_k),
            &cover_k,
            |b, &cover_k| {
                b.iter(|| {
                    let scheme =
                        PolynomialStretch::build(&g, &m, &names, PolyParams { k: 3, cover_k });
                    SchemeEvaluation::measure(&g, &m, &names, &scheme, selection)
                        .unwrap()
                        .max_stretch
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
