//! T2 — per-roundtrip forwarding time (the online cost of the local
//! forwarding functions, driven by the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::naming::NamingAssignment;
use rtr_core::{
    ExStretch, ExStretchParams, PolyParams, PolynomialStretch, Stretch6Params, StretchSix,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::NodeId;
use rtr_metric::DistanceMatrix;
use rtr_namedep::ExactOracleScheme;
use rtr_sim::{RoundtripRouting, Simulator};

fn roundtrip_all<S: RoundtripRouting>(
    sim: &Simulator<'_>,
    scheme: &S,
    names: &NamingAssignment,
    pairs: &[(NodeId, NodeId)],
) -> u64 {
    let mut total = 0;
    for &(s, t) in pairs {
        total += sim.roundtrip(scheme, s, t, names.name_of(t)).unwrap().total_weight();
    }
    total
}

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("forwarding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 128usize;
    let g = strongly_connected_gnp(n, 0.06, 5).unwrap();
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(n, 2);
    let sim = Simulator::new(&g);
    let pairs: Vec<(NodeId, NodeId)> = (0..200)
        .map(|i| (NodeId((i * 7) % n as u32), NodeId((i * 13 + 5) % n as u32)))
        .filter(|(a, b)| a != b)
        .collect();

    let s6 =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    group.bench_with_input(BenchmarkId::new("stretch6", n), &n, |b, _| {
        b.iter(|| roundtrip_all(&sim, &s6, &names, &pairs))
    });

    let ex =
        ExStretch::build(&g, &m, &names, ExactOracleScheme::build(&g), ExStretchParams::with_k(3));
    group.bench_with_input(BenchmarkId::new("exstretch_k3", n), &n, |b, _| {
        b.iter(|| roundtrip_all(&sim, &ex, &names, &pairs))
    });

    let poly = PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2));
    group.bench_with_input(BenchmarkId::new("polystretch_k2", n), &n, |b, _| {
        b.iter(|| roundtrip_all(&sim, &poly, &names, &pairs))
    });

    group.finish();
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
