//! T1 — preprocessing (table construction) time of every scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::naming::NamingAssignment;
use rtr_core::{
    ExStretch, ExStretchParams, PolyParams, PolynomialStretch, Stretch6Params, StretchSix,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::DistanceMatrix;
use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[64usize, 128, 256] {
        let g = strongly_connected_gnp(n, (8.0 / n as f64).min(0.5), 7).unwrap();
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(n, 1);

        group.bench_with_input(BenchmarkId::new("distance_matrix", n), &n, |b, _| {
            b.iter(|| DistanceMatrix::build(&g))
        });
        group.bench_with_input(BenchmarkId::new("stretch6_oracle", n), &n, |b, _| {
            b.iter(|| {
                StretchSix::build(
                    &g,
                    &m,
                    &names,
                    ExactOracleScheme::build(&g),
                    Stretch6Params::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("stretch6_landmark", n), &n, |b, _| {
            b.iter(|| {
                StretchSix::build(
                    &g,
                    &m,
                    &names,
                    LandmarkBallScheme::build(&g, &m, LandmarkParams::default()),
                    Stretch6Params::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("exstretch_k3_oracle", n), &n, |b, _| {
            b.iter(|| {
                ExStretch::build(
                    &g,
                    &m,
                    &names,
                    ExactOracleScheme::build(&g),
                    ExStretchParams::with_k(3),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("polystretch_k2", n), &n, |b, _| {
            b.iter(|| PolynomialStretch::build(&g, &m, &names, PolyParams::with_k(2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
