//! T3 — name-dependent substrate construction and leg-routing time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::{DiGraph, NodeId};
use rtr_metric::DistanceMatrix;
use rtr_namedep::{
    ExactOracleScheme, LandmarkBallScheme, LandmarkParams, NameDependentSubstrate, TreeCoverScheme,
};
use rtr_sim::ForwardAction;

fn drive<S: NameDependentSubstrate>(g: &DiGraph, s: &S, src: NodeId, mut label: S::Label) -> u64 {
    let mut at = src;
    let mut w = 0;
    loop {
        match s.step(at, &mut label).unwrap() {
            ForwardAction::Deliver => return w,
            ForwardAction::Forward(port) => {
                let e = g.edge_by_port(at, port).unwrap();
                w += e.weight;
                at = e.to;
            }
        }
    }
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 128usize;
    let g = strongly_connected_gnp(n, 0.06, 3).unwrap();
    let m = DistanceMatrix::build(&g);

    group.bench_with_input(BenchmarkId::new("build/oracle", n), &n, |b, _| {
        b.iter(|| ExactOracleScheme::build(&g))
    });
    group.bench_with_input(BenchmarkId::new("build/landmark", n), &n, |b, _| {
        b.iter(|| LandmarkBallScheme::build(&g, &m, LandmarkParams::default()))
    });
    group.bench_with_input(BenchmarkId::new("build/tree_cover_k2", n), &n, |b, _| {
        b.iter(|| TreeCoverScheme::build(&g, &m, 2))
    });

    let oracle = ExactOracleScheme::build(&g);
    let landmark = LandmarkBallScheme::build(&g, &m, LandmarkParams::default());
    let cover = TreeCoverScheme::build(&g, &m, 2);
    let pairs: Vec<(NodeId, NodeId)> = (0..100)
        .map(|i| (NodeId((i * 11) % n as u32), NodeId((i * 17 + 3) % n as u32)))
        .filter(|(a, b)| a != b)
        .collect();

    group.bench_function("route/oracle", |b| {
        b.iter(|| {
            pairs.iter().map(|&(u, v)| drive(&g, &oracle, u, oracle.pair_label(u, v))).sum::<u64>()
        })
    });
    group.bench_function("route/landmark", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(u, v)| drive(&g, &landmark, u, landmark.pair_label(u, v)))
                .sum::<u64>()
        })
    });
    group.bench_function("route/tree_cover", |b| {
        b.iter(|| {
            pairs.iter().map(|&(u, v)| drive(&g, &cover, u, cover.pair_label(u, v))).sum::<u64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
