//! The `BENCH_serve.json` and `BENCH_chaos.json` baseline artifacts.
//!
//! `serve_throughput` writes a [`ServeBaseline`] per run; CI regenerates it
//! at the n = 600 smoke configuration and diffs it against the checked-in
//! seed baseline (`ci/BENCH_serve.json`) with [`compare`].  Table bytes,
//! stretch and oracle-row counts are deterministic given the seeds, so
//! regressions there **hard-fail**; queries/sec depends on the host and only
//! warns.
//!
//! `chaos_sweep` writes a [`ChaosBaseline`] — the fourth CI-gated artifact:
//! per failure fraction, the degraded epoch's delivery/violation record and
//! the repair economy (rows an incremental repair recomputed vs. a
//! from-scratch rebuild).  [`compare_chaos`] diffs it against
//! `ci/BENCH_chaos.json`; the artifacts carry `"kind": "chaos"` so the
//! checker binaries can dispatch on file shape.
//!
//! Serialization is hand-rolled (the build environment vendors no serde),
//! mirroring `rtr_graph::io`.

use std::fmt::Write as _;

/// Build-time and per-scheme serving numbers of one `serve_throughput` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaseline {
    /// Node count of the run.
    pub n: usize,
    /// Requests served per workload.
    pub queries_per_workload: usize,
    /// RNG seed of the run (graph, naming, workloads).
    pub seed: u64,
    /// Stretch samples per serve run (`RTR_SAMPLES`) — changes the sampled
    /// pairs and hence the worst sampled stretch.
    pub stretch_samples: usize,
    /// Lazy-oracle row-cache capacity (`RTR_CACHE`) — changes both the row
    /// count (prefetch clamp) and the peak resident rows.
    pub cache_rows: usize,
    /// Verification mode of the run (`RTR_VERIFY`: `off` / `sampled` /
    /// `full`).  Baselines recorded with verification also gate the
    /// verify-mode scheme fields; `off` baselines ignore them.
    pub verify_mode: String,
    /// Destination shard count of the run (`RTR_SHARDS`; `0` means the
    /// unsharded engine served the streams).
    pub shards: usize,
    /// Shard policy (`hash` / `range`; `none` when unsharded) — changes
    /// which worker owns which destination, so it pins the configuration.
    pub shard_policy: String,
    /// Oracle rows (Dijkstras) computed by the **suite build** alone.
    pub build_rows_computed: usize,
    /// Peak resident oracle rows on the shared substrate oracle over the
    /// whole run.
    pub peak_resident_rows: usize,
    /// Rows the **dedicated verification oracle** computed across all
    /// streams.  With per-shard buckets this stays
    /// `≤ 2 · distinct destinations` regardless of worker count —
    /// verification's whole cost model — so growth is a hard failure.
    pub verify_rows_computed: u64,
    /// Distinct destinations over every served stream (all schemes ×
    /// workloads) — deterministic given the seeds, the denominator of the
    /// verify-row bound.
    pub distinct_destinations: u64,
    /// The worker-count sweep: the mix workload re-served fully verified at
    /// each worker count, recording that verify rows stay flat as workers
    /// grow while throughput scales.
    pub worker_sweep: Vec<SweepPoint>,
    /// Per-scheme aggregates, in serving order.
    pub schemes: Vec<SchemeBaseline>,
}

/// One worker count of the serving sweep (mix workload, full verification,
/// fresh verify oracle per point).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Worker threads serving this point.
    pub workers: usize,
    /// Throughput at this worker count (host-dependent; warn-only).
    pub queries_per_sec: f64,
    /// Rows the point's verify oracle computed — must not grow with
    /// `workers` (deterministic given the seeds; gated exactly with the
    /// usual rows slack).
    pub verify_rows: u64,
}

/// One scheme's aggregate numbers across all workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeBaseline {
    /// Scheme name (`stretch6` / `exstretch` / `polystretch`).
    pub scheme: String,
    /// Total routing-table footprint over all nodes, in bytes.
    pub table_bytes: u64,
    /// Largest single-node table, in bits.
    pub worst_node_bits: u64,
    /// Worst exact stretch over every workload's strided sample.
    pub worst_sampled_stretch: f64,
    /// Lowest queries/sec over the workloads (host-dependent; warn-only).
    pub min_queries_per_sec: f64,
    /// Queries checked by the verification plane across all workloads
    /// (0 when the run's verify mode is `off`; `queries · workloads` under
    /// full verification — deterministic, gated exactly).
    pub verified_queries: u64,
    /// Checked queries that exceeded the scheme's proven stretch ceiling.
    /// Any non-zero current value is a hard CI failure.
    pub verify_violations: u64,
    /// Worst verified stretch across all workloads (exact integer
    /// comparison rendered as a float; deterministic given the seeds).
    pub worst_verified_stretch: f64,
}

impl ServeBaseline {
    /// Renders the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"n\": {},", self.n);
        let _ = writeln!(out, "  \"queries_per_workload\": {},", self.queries_per_workload);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"stretch_samples\": {},", self.stretch_samples);
        let _ = writeln!(out, "  \"cache_rows\": {},", self.cache_rows);
        let _ = writeln!(out, "  \"verify_mode\": \"{}\",", self.verify_mode);
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"shard_policy\": \"{}\",", self.shard_policy);
        let _ = writeln!(out, "  \"build_rows_computed\": {},", self.build_rows_computed);
        let _ = writeln!(out, "  \"peak_resident_rows\": {},", self.peak_resident_rows);
        let _ = writeln!(out, "  \"verify_rows_computed\": {},", self.verify_rows_computed);
        let _ = writeln!(out, "  \"distinct_destinations\": {},", self.distinct_destinations);
        out.push_str("  \"worker_sweep\": [\n");
        for (i, p) in self.worker_sweep.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"workers\": {}, \"queries_per_sec\": {:.1}, \"verify_rows\": {}}}",
                p.workers, p.queries_per_sec, p.verify_rows
            );
            out.push_str(if i + 1 < self.worker_sweep.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scheme\": \"{}\", \"table_bytes\": {}, \"worst_node_bits\": {}, \
                 \"worst_sampled_stretch\": {:.6}, \"min_queries_per_sec\": {:.1}, \
                 \"verified_queries\": {}, \"verify_violations\": {}, \
                 \"worst_verified_stretch\": {:.6}}}",
                s.scheme,
                s.table_bytes,
                s.worst_node_bits,
                s.worst_sampled_stretch,
                s.min_queries_per_sec,
                s.verified_queries,
                s.verify_violations,
                s.worst_verified_stretch
            );
            out.push_str(if i + 1 < self.schemes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an artifact previously written by [`to_json`](Self::to_json).
    ///
    /// The verify-mode fields are optional with `off`/zero defaults, so
    /// baselines recorded before the verification plane still parse.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonValue::parse(text)?;
        let schemes = value
            .field("schemes")?
            .as_array()?
            .iter()
            .map(|s| {
                Ok(SchemeBaseline {
                    scheme: s.field("scheme")?.as_string()?,
                    table_bytes: s.field("table_bytes")?.as_u64()?,
                    worst_node_bits: s.field("worst_node_bits")?.as_u64()?,
                    worst_sampled_stretch: s.field("worst_sampled_stretch")?.as_f64()?,
                    min_queries_per_sec: s.field("min_queries_per_sec")?.as_f64()?,
                    verified_queries: match s.field_opt("verified_queries") {
                        Some(v) => v.as_u64()?,
                        None => 0,
                    },
                    verify_violations: match s.field_opt("verify_violations") {
                        Some(v) => v.as_u64()?,
                        None => 0,
                    },
                    worst_verified_stretch: match s.field_opt("worst_verified_stretch") {
                        Some(v) => v.as_f64()?,
                        None => 0.0,
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ServeBaseline {
            n: value.field("n")?.as_u64()? as usize,
            queries_per_workload: value.field("queries_per_workload")?.as_u64()? as usize,
            seed: value.field("seed")?.as_u64()?,
            stretch_samples: value.field("stretch_samples")?.as_u64()? as usize,
            cache_rows: value.field("cache_rows")?.as_u64()? as usize,
            verify_mode: match value.field_opt("verify_mode") {
                Some(v) => v.as_string()?,
                None => "off".to_string(),
            },
            shards: match value.field_opt("shards") {
                Some(v) => v.as_u64()? as usize,
                None => 0,
            },
            shard_policy: match value.field_opt("shard_policy") {
                Some(v) => v.as_string()?,
                None => "none".to_string(),
            },
            build_rows_computed: value.field("build_rows_computed")?.as_u64()? as usize,
            peak_resident_rows: value.field("peak_resident_rows")?.as_u64()? as usize,
            verify_rows_computed: match value.field_opt("verify_rows_computed") {
                Some(v) => v.as_u64()?,
                None => 0,
            },
            distinct_destinations: match value.field_opt("distinct_destinations") {
                Some(v) => v.as_u64()?,
                None => 0,
            },
            worker_sweep: match value.field_opt("worker_sweep") {
                Some(v) => v
                    .as_array()?
                    .iter()
                    .map(|p| {
                        Ok(SweepPoint {
                            workers: p.field("workers")?.as_u64()? as usize,
                            queries_per_sec: p.field("queries_per_sec")?.as_f64()?,
                            verify_rows: p.field("verify_rows")?.as_u64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                None => Vec::new(),
            },
            schemes,
        })
    }
}

/// Relative slack on the deterministic quantities (table bytes, stretch): a
/// current value above `baseline · (1 + SLACK)` is a hard failure.  The
/// numbers are bit-reproducible given the seeds, so the slack only absorbs
/// float formatting; anything beyond it is a real regression.
pub const DETERMINISTIC_SLACK: f64 = 0.02;

/// Relative slack on the suite-build oracle-row count.  Rows are within a
/// handful of deterministic across runs (concurrent connectivity probes can
/// race a duplicate Dijkstra), so the tolerance is wider, but a 10% jump
/// means a sweep stopped being shared.
pub const ROWS_SLACK: f64 = 0.10;

/// Throughput warn threshold: warn when a scheme's minimum queries/sec drops
/// below half the baseline.  Host-dependent — never a hard failure.
pub const THROUGHPUT_WARN_FRACTION: f64 = 0.5;

/// Diffs a current run against the checked-in baseline.
///
/// Returns `(failures, warnings)`: failures are regressions CI must fail on
/// (table bytes, stretch, oracle rows, schema mismatches), warnings are
/// host-dependent observations (throughput).
pub fn compare(baseline: &ServeBaseline, current: &ServeBaseline) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    // Every knob that changes a gated (deterministic) number must match, or
    // the diff compares incompatible runs.
    let config = |b: &ServeBaseline| {
        (
            b.n,
            b.queries_per_workload,
            b.seed,
            b.stretch_samples,
            b.cache_rows,
            b.verify_mode.clone(),
            b.shards,
            b.shard_policy.clone(),
        )
    };
    if config(baseline) != config(current) {
        failures.push(format!(
            "configuration mismatch: baseline is (n, queries, seed, samples, cache, verify, \
             shards, policy) = {:?}, current is {:?} (regenerate the baseline, see README)",
            config(baseline),
            config(current)
        ));
        return (failures, warnings);
    }
    let verifying = baseline.verify_mode != "off";
    let rows_limit = baseline.build_rows_computed as f64 * (1.0 + ROWS_SLACK);
    if (current.build_rows_computed as f64) > rows_limit {
        failures.push(format!(
            "suite build computed {} oracle rows, baseline {} (+{:.0}% > {:.0}% slack) — \
             a row sweep is no longer shared",
            current.build_rows_computed,
            baseline.build_rows_computed,
            100.0
                * (current.build_rows_computed as f64 / baseline.build_rows_computed as f64 - 1.0),
            100.0 * ROWS_SLACK
        ));
    } else if current.build_rows_computed * 2 <= baseline.build_rows_computed {
        warnings.push(format!(
            "suite build rows improved {} → {}; consider refreshing the baseline",
            baseline.build_rows_computed, current.build_rows_computed
        ));
    }
    if current.peak_resident_rows > baseline.peak_resident_rows * 2 {
        failures.push(format!(
            "peak resident oracle rows {} more than doubled the baseline {}",
            current.peak_resident_rows, baseline.peak_resident_rows
        ));
    }
    // Destination streams are seeded, so the distinct-destination count is
    // bit-deterministic: any drift means a workload generator changed under
    // the baseline.  (Zero means a pre-sharding baseline — nothing to gate.)
    if baseline.distinct_destinations != 0
        && current.distinct_destinations != baseline.distinct_destinations
    {
        failures.push(format!(
            "distinct destinations changed {} → {} — the request streams drifted",
            baseline.distinct_destinations, current.distinct_destinations
        ));
    }
    // Verify rows pay two Dijkstras per distinct destination under per-shard
    // buckets; growth past the rows slack means workers started re-fetching
    // each other's destination rows.
    if baseline.verify_rows_computed != 0 {
        let verify_rows_limit = baseline.verify_rows_computed as f64 * (1.0 + ROWS_SLACK);
        if current.verify_rows_computed as f64 > verify_rows_limit {
            failures.push(format!(
                "verification computed {} oracle rows, baseline {} (+{:.0}% > {:.0}% slack) — \
                 per-shard bucket sharing regressed",
                current.verify_rows_computed,
                baseline.verify_rows_computed,
                100.0
                    * (current.verify_rows_computed as f64 / baseline.verify_rows_computed as f64
                        - 1.0),
                100.0 * ROWS_SLACK
            ));
        }
    }
    // The worker sweep is gated point-by-point: verify rows are
    // deterministic (hard), throughput is host-dependent (warn).  A missing
    // point would leave a worker count ungated.
    for want in &baseline.worker_sweep {
        let Some(got) = current.worker_sweep.iter().find(|p| p.workers == want.workers) else {
            failures.push(format!(
                "worker-sweep point at {} workers missing from the current run",
                want.workers
            ));
            continue;
        };
        let sweep_rows_limit = want.verify_rows as f64 * (1.0 + ROWS_SLACK);
        if got.verify_rows as f64 > sweep_rows_limit {
            failures.push(format!(
                "sweep at {} workers: verify rows regressed {} → {} — rows are growing with \
                 the worker count again",
                want.workers, want.verify_rows, got.verify_rows
            ));
        }
        if got.queries_per_sec < want.queries_per_sec * THROUGHPUT_WARN_FRACTION {
            warnings.push(format!(
                "sweep at {} workers: throughput dropped {:.0} → {:.0} queries/s \
                 (host-dependent, not gating)",
                want.workers, want.queries_per_sec, got.queries_per_sec
            ));
        }
    }
    for want in &baseline.schemes {
        let Some(got) = current.schemes.iter().find(|s| s.scheme == want.scheme) else {
            failures.push(format!("scheme {} missing from the current run", want.scheme));
            continue;
        };
        let byte_limit = want.table_bytes as f64 * (1.0 + DETERMINISTIC_SLACK);
        if got.table_bytes as f64 > byte_limit {
            failures.push(format!(
                "{}: table bytes regressed {} → {}",
                want.scheme, want.table_bytes, got.table_bytes
            ));
        }
        let bits_limit = want.worst_node_bits as f64 * (1.0 + DETERMINISTIC_SLACK);
        if got.worst_node_bits as f64 > bits_limit {
            failures.push(format!(
                "{}: worst-node table bits regressed {} → {}",
                want.scheme, want.worst_node_bits, got.worst_node_bits
            ));
        }
        let stretch_limit = want.worst_sampled_stretch * (1.0 + DETERMINISTIC_SLACK);
        if got.worst_sampled_stretch > stretch_limit {
            failures.push(format!(
                "{}: worst sampled stretch regressed {:.3} → {:.3}",
                want.scheme, want.worst_sampled_stretch, got.worst_sampled_stretch
            ));
        }
        if got.min_queries_per_sec < want.min_queries_per_sec * THROUGHPUT_WARN_FRACTION {
            warnings.push(format!(
                "{}: throughput dropped {:.0} → {:.0} queries/s (host-dependent, not gating)",
                want.scheme, want.min_queries_per_sec, got.min_queries_per_sec
            ));
        }
        if verifying {
            // Checked-query counts are exact (mode × stream length), so any
            // drift means the verification plane silently skipped queries.
            if got.verified_queries != want.verified_queries {
                failures.push(format!(
                    "{}: verified queries changed {} → {} — verification coverage drifted",
                    want.scheme, want.verified_queries, got.verified_queries
                ));
            }
            if got.verify_violations > 0 {
                failures.push(format!(
                    "{}: {} verified queries exceeded the proven stretch bound",
                    want.scheme, got.verify_violations
                ));
            }
            let verified_limit = want.worst_verified_stretch * (1.0 + DETERMINISTIC_SLACK);
            if got.worst_verified_stretch > verified_limit {
                failures.push(format!(
                    "{}: worst verified stretch regressed {:.3} → {:.3}",
                    want.scheme, want.worst_verified_stretch, got.worst_verified_stretch
                ));
            }
        }
    }
    // Symmetric check: a scheme served by the current run but absent from
    // the baseline would otherwise pass CI completely ungated.
    for got in &current.schemes {
        if !baseline.schemes.iter().any(|s| s.scheme == got.scheme) {
            failures.push(format!(
                "scheme {} is not in the baseline — regenerate ci/BENCH_serve.json to gate it",
                got.scheme
            ));
        }
    }
    (failures, warnings)
}

/// Hard ceiling on the chaos repair economy: an incremental repair may
/// recompute at most this fraction of the oracle rows a from-scratch rebuild
/// pays.  Enforced in-binary by `chaos_sweep` and again by
/// [`compare_chaos`] on the current artifact, so CI fails even when a stale
/// baseline would have allowed the regression.
pub const REPAIR_ROW_BUDGET: f64 = 0.25;

/// One failure fraction of a `chaos_sweep` run: the fault selection, the
/// repair economy, and the three verified epochs (pre-fault / degraded /
/// post-repair) of the §3 serving plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFraction {
    /// Requested edge-failure fraction (share of all edges).
    pub fraction: f64,
    /// Faults the fraction asked for (`round(fraction · edge_count)`).
    pub faults_requested: usize,
    /// Faults actually applied after the dirty-row impact budget.
    pub faults_applied: usize,
    /// Applied faults that removed an edge.
    pub removals: usize,
    /// Applied faults that inflated an edge weight.
    pub inflations: usize,
    /// Nodes with at least one invalidated metric row.
    pub dirty_nodes: usize,
    /// Oracle rows the incremental repair recomputed.
    pub repair_rows: u64,
    /// Oracle rows a from-scratch rebuild of the same substrate computed.
    pub full_rebuild_rows: u64,
    /// Cover cluster trees the repair re-anchored.
    pub clusters_reanchored: usize,
    /// Landmark balls the repair recomputed.
    pub balls_repaired: usize,
    /// Wall-clock of the repair, in nanoseconds (host-dependent; warn-only).
    pub repair_epoch_ns: u64,
    /// Worst verified stretch of the pre-fault epoch.
    pub pre_worst_stretch: f64,
    /// Requests the degraded epoch delivered.
    pub degraded_delivered: u64,
    /// Requests the degraded epoch failed to deliver (routes crossing a
    /// removed link).
    pub degraded_failed: u64,
    /// Delivered degraded requests that exceeded the proven ceiling.
    pub degraded_violations: u64,
    /// Worst verified stretch of the degraded epoch's delivered requests.
    pub degraded_worst_stretch: f64,
    /// `degraded_delivered / queries` — the fault window's success rate.
    pub degraded_success_rate: f64,
    /// Degraded-window offender pairs the repair restored under the ceiling.
    pub restored_pairs: u64,
    /// Worst verified stretch of the post-repair epoch.
    pub post_worst_stretch: f64,
    /// Post-repair requests above the proven ceiling (must be 0).
    pub post_violations: u64,
    /// Post-repair delivery failures (must be 0).
    pub post_failed: u64,
}

/// The `BENCH_chaos.json` artifact: one `chaos_sweep` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBaseline {
    /// Node count of the run.
    pub n: usize,
    /// Requests served per epoch (three epochs per fraction).
    pub queries_per_epoch: usize,
    /// RNG seed of the run (graph, naming, fault selection, workloads).
    pub seed: u64,
    /// Worker threads of the run — provenance only; the chaos conformance
    /// tests prove every gated number is worker-independent.
    pub workers: usize,
    /// Destination shard count of the run.
    pub shards: usize,
    /// Shard policy (`hash` / `range`).
    pub shard_policy: String,
    /// Chord edges of the `ring_with_chords` graph (the fault candidates —
    /// the ring itself is never faulted, keeping the graph strongly
    /// connected).
    pub chords: usize,
    /// Total edge count (ring + chords), the fraction denominator.
    pub edge_count: usize,
    /// Absolute cap on invalidated rows per fraction (the impact budget the
    /// greedy fault selection enforces).
    pub dirty_row_budget: usize,
    /// The §3 proven stretch ceiling every epoch is verified against.
    pub bound: u64,
    /// Per-fraction records, in sweep order.
    pub fractions: Vec<ChaosFraction>,
}

impl ChaosBaseline {
    /// Renders the artifact as pretty-printed JSON, `"kind": "chaos"` first
    /// so the checker binaries can dispatch on file shape.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"kind\": \"chaos\",\n");
        let _ = writeln!(out, "  \"n\": {},", self.n);
        let _ = writeln!(out, "  \"queries_per_epoch\": {},", self.queries_per_epoch);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"shard_policy\": \"{}\",", self.shard_policy);
        let _ = writeln!(out, "  \"chords\": {},", self.chords);
        let _ = writeln!(out, "  \"edge_count\": {},", self.edge_count);
        let _ = writeln!(out, "  \"dirty_row_budget\": {},", self.dirty_row_budget);
        let _ = writeln!(out, "  \"bound\": {},", self.bound);
        out.push_str("  \"fractions\": [\n");
        for (i, f) in self.fractions.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"fraction\": {:.6},", f.fraction);
            let _ = writeln!(out, "      \"faults_requested\": {},", f.faults_requested);
            let _ = writeln!(out, "      \"faults_applied\": {},", f.faults_applied);
            let _ = writeln!(out, "      \"removals\": {},", f.removals);
            let _ = writeln!(out, "      \"inflations\": {},", f.inflations);
            let _ = writeln!(out, "      \"dirty_nodes\": {},", f.dirty_nodes);
            let _ = writeln!(out, "      \"repair_rows\": {},", f.repair_rows);
            let _ = writeln!(out, "      \"full_rebuild_rows\": {},", f.full_rebuild_rows);
            let _ = writeln!(out, "      \"clusters_reanchored\": {},", f.clusters_reanchored);
            let _ = writeln!(out, "      \"balls_repaired\": {},", f.balls_repaired);
            let _ = writeln!(out, "      \"repair_epoch_ns\": {},", f.repair_epoch_ns);
            let _ = writeln!(out, "      \"pre_worst_stretch\": {:.6},", f.pre_worst_stretch);
            let _ = writeln!(out, "      \"degraded_delivered\": {},", f.degraded_delivered);
            let _ = writeln!(out, "      \"degraded_failed\": {},", f.degraded_failed);
            let _ = writeln!(out, "      \"degraded_violations\": {},", f.degraded_violations);
            let _ =
                writeln!(out, "      \"degraded_worst_stretch\": {:.6},", f.degraded_worst_stretch);
            let _ =
                writeln!(out, "      \"degraded_success_rate\": {:.6},", f.degraded_success_rate);
            let _ = writeln!(out, "      \"restored_pairs\": {},", f.restored_pairs);
            let _ = writeln!(out, "      \"post_worst_stretch\": {:.6},", f.post_worst_stretch);
            let _ = writeln!(out, "      \"post_violations\": {},", f.post_violations);
            let _ = writeln!(out, "      \"post_failed\": {}", f.post_failed);
            out.push_str("    }");
            out.push_str(if i + 1 < self.fractions.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an artifact previously written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem, including
    /// a missing or non-`chaos` `kind` discriminator.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonValue::parse(text)?;
        let kind = value.field("kind")?.as_string()?;
        if kind != "chaos" {
            return Err(format!("expected \"kind\": \"chaos\", found \"{kind}\""));
        }
        let fractions = value
            .field("fractions")?
            .as_array()?
            .iter()
            .map(|f| {
                Ok(ChaosFraction {
                    fraction: f.field("fraction")?.as_f64()?,
                    faults_requested: f.field("faults_requested")?.as_u64()? as usize,
                    faults_applied: f.field("faults_applied")?.as_u64()? as usize,
                    removals: f.field("removals")?.as_u64()? as usize,
                    inflations: f.field("inflations")?.as_u64()? as usize,
                    dirty_nodes: f.field("dirty_nodes")?.as_u64()? as usize,
                    repair_rows: f.field("repair_rows")?.as_u64()?,
                    full_rebuild_rows: f.field("full_rebuild_rows")?.as_u64()?,
                    clusters_reanchored: f.field("clusters_reanchored")?.as_u64()? as usize,
                    balls_repaired: f.field("balls_repaired")?.as_u64()? as usize,
                    repair_epoch_ns: f.field("repair_epoch_ns")?.as_u64()?,
                    pre_worst_stretch: f.field("pre_worst_stretch")?.as_f64()?,
                    degraded_delivered: f.field("degraded_delivered")?.as_u64()?,
                    degraded_failed: f.field("degraded_failed")?.as_u64()?,
                    degraded_violations: f.field("degraded_violations")?.as_u64()?,
                    degraded_worst_stretch: f.field("degraded_worst_stretch")?.as_f64()?,
                    degraded_success_rate: f.field("degraded_success_rate")?.as_f64()?,
                    restored_pairs: f.field("restored_pairs")?.as_u64()?,
                    post_worst_stretch: f.field("post_worst_stretch")?.as_f64()?,
                    post_violations: f.field("post_violations")?.as_u64()?,
                    post_failed: f.field("post_failed")?.as_u64()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ChaosBaseline {
            n: value.field("n")?.as_u64()? as usize,
            queries_per_epoch: value.field("queries_per_epoch")?.as_u64()? as usize,
            seed: value.field("seed")?.as_u64()?,
            workers: value.field("workers")?.as_u64()? as usize,
            shards: value.field("shards")?.as_u64()? as usize,
            shard_policy: value.field("shard_policy")?.as_string()?,
            chords: value.field("chords")?.as_u64()? as usize,
            edge_count: value.field("edge_count")?.as_u64()? as usize,
            dirty_row_budget: value.field("dirty_row_budget")?.as_u64()? as usize,
            bound: value.field("bound")?.as_u64()?,
            fractions,
        })
    }
}

/// Diffs a current `chaos_sweep` run against the checked-in chaos baseline.
///
/// Everything except the repair wall-clock is deterministic given the run's
/// seeds — fault selection, dirty rows, repair/rebuild row counts, delivery
/// failures, violations, restored pairs — so those gate **exactly**; worst
/// stretches gate with the usual [`DETERMINISTIC_SLACK`] (float formatting
/// only).  Two invariants are re-checked on the current run regardless of
/// what the baseline says: the post-repair epoch must be perfectly clean,
/// and `repair_rows` must stay within [`REPAIR_ROW_BUDGET`] of
/// `full_rebuild_rows`.  `repair_epoch_ns` is host-dependent and only warns.
pub fn compare_chaos(
    baseline: &ChaosBaseline,
    current: &ChaosBaseline,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let config = |b: &ChaosBaseline| {
        (
            b.n,
            b.queries_per_epoch,
            b.seed,
            b.shards,
            b.shard_policy.clone(),
            b.chords,
            b.edge_count,
            b.dirty_row_budget,
            b.bound,
        )
    };
    if config(baseline) != config(current) {
        failures.push(format!(
            "configuration mismatch: baseline is (n, queries, seed, shards, policy, chords, \
             edges, dirty budget, bound) = {:?}, current is {:?} (regenerate the baseline, see \
             docs/OPERATIONS.md)",
            config(baseline),
            config(current)
        ));
        return (failures, warnings);
    }
    let same_fraction = |a: f64, b: f64| (a - b).abs() < 1e-9;
    for want in &baseline.fractions {
        let tag = format!("fraction {:.3}", want.fraction);
        let Some(got) = current.fractions.iter().find(|f| same_fraction(f.fraction, want.fraction))
        else {
            failures.push(format!("{tag} missing from the current run"));
            continue;
        };
        // The deterministic integer record of the fraction: fault selection,
        // invalidation, repair economy, and epoch outcomes, gated exactly.
        let exact: [(&str, u64, u64); 13] = [
            ("faults_requested", want.faults_requested as u64, got.faults_requested as u64),
            ("faults_applied", want.faults_applied as u64, got.faults_applied as u64),
            ("removals", want.removals as u64, got.removals as u64),
            ("inflations", want.inflations as u64, got.inflations as u64),
            ("dirty_nodes", want.dirty_nodes as u64, got.dirty_nodes as u64),
            ("repair_rows", want.repair_rows, got.repair_rows),
            ("full_rebuild_rows", want.full_rebuild_rows, got.full_rebuild_rows),
            (
                "clusters_reanchored",
                want.clusters_reanchored as u64,
                got.clusters_reanchored as u64,
            ),
            ("balls_repaired", want.balls_repaired as u64, got.balls_repaired as u64),
            ("degraded_delivered", want.degraded_delivered, got.degraded_delivered),
            ("degraded_failed", want.degraded_failed, got.degraded_failed),
            ("degraded_violations", want.degraded_violations, got.degraded_violations),
            ("restored_pairs", want.restored_pairs, got.restored_pairs),
        ];
        for (name, w, g) in exact {
            if w != g {
                failures.push(format!(
                    "{tag}: {name} changed {w} → {g} — the seeded chaos run is deterministic, \
                     so this is a behaviour change"
                ));
            }
        }
        let stretches = [
            ("pre_worst_stretch", want.pre_worst_stretch, got.pre_worst_stretch),
            ("degraded_worst_stretch", want.degraded_worst_stretch, got.degraded_worst_stretch),
            ("post_worst_stretch", want.post_worst_stretch, got.post_worst_stretch),
        ];
        for (name, w, g) in stretches {
            if g > w * (1.0 + DETERMINISTIC_SLACK) {
                failures.push(format!("{tag}: {name} regressed {w:.3} → {g:.3}"));
            }
        }
        if got.degraded_success_rate + 1e-6 < want.degraded_success_rate {
            failures.push(format!(
                "{tag}: degraded success rate dropped {:.4} → {:.4}",
                want.degraded_success_rate, got.degraded_success_rate
            ));
        }
        if got.repair_epoch_ns > want.repair_epoch_ns.saturating_mul(4) {
            warnings.push(format!(
                "{tag}: repair wall grew {} → {} ns (host-dependent, not gating)",
                want.repair_epoch_ns, got.repair_epoch_ns
            ));
        }
        // The two acceptance invariants, independent of the baseline's word.
        if got.post_violations != 0 || got.post_failed != 0 {
            failures.push(format!(
                "{tag}: post-repair epoch is not clean ({} violations, {} delivery failures) — \
                 repair did not restore the proven ceiling",
                got.post_violations, got.post_failed
            ));
        }
        if got.repair_rows as f64 > REPAIR_ROW_BUDGET * got.full_rebuild_rows as f64 {
            failures.push(format!(
                "{tag}: repair recomputed {} rows, over {:.0}% of the {}-row full rebuild",
                got.repair_rows,
                100.0 * REPAIR_ROW_BUDGET,
                got.full_rebuild_rows
            ));
        }
    }
    for got in &current.fractions {
        if !baseline.fractions.iter().any(|f| same_fraction(f.fraction, got.fraction)) {
            failures.push(format!(
                "fraction {:.3} is not in the baseline — regenerate ci/BENCH_chaos.json to \
                 gate it",
                got.fraction
            ));
        }
    }
    (failures, warnings)
}

/// A minimal JSON value: just enough structure for the baseline and
/// telemetry artifacts (used by `check_serve_baseline` and
/// `check_telemetry`; the workspace vendors no serde).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number (every JSON number parses as `f64`).
    Number(f64),
    /// A string without escape sequences.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(v)
    }

    /// Looks up `key` on an object, failing on a missing key or a non-object.
    ///
    /// # Errors
    ///
    /// Returns a description of what was expected.
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        if !matches!(self, JsonValue::Object(_)) {
            return Err(format!("expected an object, found {self:?}"));
        }
        self.field_opt(key).ok_or_else(|| format!("missing field \"{key}\""))
    }

    /// Optional-field lookup (`None` on a missing key *or* a non-object),
    /// used for the verify-mode fields older baselines predate.
    pub fn field_opt(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    ///
    /// # Errors
    ///
    /// Fails on any other variant.
    pub fn as_array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(format!("expected an array, found {other:?}")),
        }
    }

    /// The value as an owned string.
    ///
    /// # Errors
    ///
    /// Fails on any other variant.
    pub fn as_string(&self) -> Result<String, String> {
        match self {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    /// The value as a float.
    ///
    /// # Errors
    ///
    /// Fails on any other variant.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    /// The value as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Fails on non-numbers, negatives, and fractional values.
    pub fn as_u64(&self) -> Result<u64, String> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 {
            return Err(format!("expected a non-negative integer, found {x}"));
        }
        Ok(x as u64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != c {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.at, got as char
            ));
        }
        self.at += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.at;
        while self.at < self.bytes.len() && self.bytes[self.at] != b'"' {
            if self.bytes[self.at] == b'\\' {
                return Err("escape sequences are not supported".to_string());
            }
            self.at += 1;
        }
        if self.at == self.bytes.len() {
            return Err("unterminated string".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|e| e.to_string())?
            .to_string();
        self.at += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.at;
        while self.at < self.bytes.len()
            && matches!(self.bytes[self.at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBaseline {
        ServeBaseline {
            n: 600,
            queries_per_workload: 20_000,
            seed: 42,
            stretch_samples: 2000,
            cache_rows: 16,
            verify_mode: "full".into(),
            shards: 4,
            shard_policy: "hash".into(),
            build_rows_computed: 2442,
            peak_resident_rows: 16,
            verify_rows_computed: 1176,
            distinct_destinations: 588,
            worker_sweep: vec![
                SweepPoint { workers: 1, queries_per_sec: 400_000.0, verify_rows: 1100 },
                SweepPoint { workers: 8, queries_per_sec: 1_900_000.0, verify_rows: 1100 },
            ],
            schemes: vec![
                SchemeBaseline {
                    scheme: "stretch6".into(),
                    table_bytes: 2_000_000,
                    worst_node_bits: 51_000,
                    worst_sampled_stretch: 3.806,
                    min_queries_per_sec: 650_000.0,
                    verified_queries: 100_000,
                    verify_violations: 0,
                    worst_verified_stretch: 3.806,
                },
                SchemeBaseline {
                    scheme: "exstretch".into(),
                    table_bytes: 2_600_000,
                    worst_node_bits: 63_000,
                    worst_sampled_stretch: 9.576,
                    min_queries_per_sec: 300_000.0,
                    verified_queries: 100_000,
                    verify_violations: 0,
                    worst_verified_stretch: 10.4,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_enough_to_compare_clean() {
        let b = sample();
        let parsed = ServeBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.n, b.n);
        assert_eq!(parsed.build_rows_computed, b.build_rows_computed);
        assert_eq!(parsed.schemes.len(), 2);
        assert_eq!(parsed.shards, b.shards);
        assert_eq!(parsed.shard_policy, b.shard_policy);
        assert_eq!(parsed.verify_rows_computed, b.verify_rows_computed);
        assert_eq!(parsed.worker_sweep, b.worker_sweep);
        let (failures, warnings) = compare(&b, &parsed);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn regressions_fail_and_throughput_only_warns() {
        let base = sample();
        let mut cur = sample();
        cur.schemes[0].table_bytes = (base.schemes[0].table_bytes as f64 * 1.05) as u64;
        cur.schemes[1].worst_sampled_stretch = base.schemes[1].worst_sampled_stretch * 1.2;
        cur.schemes[0].min_queries_per_sec = 1000.0;
        cur.build_rows_computed = base.build_rows_computed * 2;
        let (failures, warnings) = compare(&base, &cur);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("table bytes")));
        assert!(failures.iter().any(|f| f.contains("stretch")));
        assert!(failures.iter().any(|f| f.contains("oracle rows")));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("throughput"));
    }

    #[test]
    fn small_drift_inside_tolerance_passes() {
        let base = sample();
        let mut cur = sample();
        cur.build_rows_computed += 4; // concurrent connectivity-probe race
        cur.schemes[0].table_bytes += 1;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn verify_regressions_are_hard_failures() {
        let base = sample();

        let mut cur = sample();
        cur.schemes[0].verify_violations = 3;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("exceeded the proven stretch bound")));

        let mut cur = sample();
        cur.schemes[0].verified_queries = 99_000;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("coverage drifted")), "{failures:?}");

        let mut cur = sample();
        cur.schemes[1].worst_verified_stretch = base.schemes[1].worst_verified_stretch * 1.1;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("worst verified stretch")), "{failures:?}");

        let mut cur = sample();
        cur.verify_rows_computed = base.verify_rows_computed * 2;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("per-shard bucket")), "{failures:?}");

        let mut cur = sample();
        cur.distinct_destinations += 1;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("streams drifted")), "{failures:?}");

        // With verification off on both sides the verify fields are inert.
        let mut base = sample();
        let mut cur = sample();
        for b in [&mut base, &mut cur] {
            b.verify_mode = "off".into();
            for s in &mut b.schemes {
                s.verified_queries = 0;
                s.worst_verified_stretch = 0.0;
            }
        }
        cur.schemes[0].verified_queries = 77; // nonsense, but not gated
        let (failures, _) = compare(&base, &cur);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn worker_sweep_regressions_gate_rows_hard_and_throughput_soft() {
        let base = sample();

        let mut cur = sample();
        cur.worker_sweep[1].verify_rows = base.worker_sweep[1].verify_rows * 3;
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("growing with")), "{failures:?}");

        let mut cur = sample();
        cur.worker_sweep.pop();
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("sweep point")), "{failures:?}");

        let mut cur = sample();
        cur.worker_sweep[0].queries_per_sec = 10.0;
        let (failures, warnings) = compare(&base, &cur);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.iter().any(|w| w.contains("sweep at 1 workers")), "{warnings:?}");
    }

    #[test]
    fn pre_verification_baselines_parse_with_off_defaults() {
        let mut b = sample();
        b.verify_mode = "off".into();
        b.shards = 0;
        b.shard_policy = "none".into();
        b.verify_rows_computed = 0;
        b.distinct_destinations = 0;
        b.worker_sweep.clear();
        for s in &mut b.schemes {
            s.verified_queries = 0;
            s.verify_violations = 0;
            s.worst_verified_stretch = 0.0;
        }
        // Strip the verify and shard fields from the JSON, mimicking an old
        // artifact (the sweep array spans three fixed lines).
        let json: String = b
            .to_json()
            .lines()
            .filter(|l| {
                ![
                    "verify_mode",
                    "\"shards\"",
                    "shard_policy",
                    "verify_rows_computed",
                    "distinct_destinations",
                    "worker_sweep",
                    "  ],",
                ]
                .iter()
                .any(|needle| l.contains(needle))
            })
            .map(|l| {
                let l = match l.find(", \"verified_queries\"") {
                    Some(at) => {
                        format!("{}}}{}", &l[..at], if l.ends_with(',') { "," } else { "" })
                    }
                    None => l.to_string(),
                };
                format!("{l}\n")
            })
            .collect();
        let parsed = ServeBaseline::from_json(&json).unwrap();
        assert_eq!(parsed.verify_mode, "off");
        assert_eq!(parsed.schemes[0].verified_queries, 0);
        let (failures, _) = compare(&b, &parsed);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn configuration_mismatch_is_a_hard_failure() {
        for mutate in [
            (|b: &mut ServeBaseline| b.n = 20_000) as fn(&mut ServeBaseline),
            |b| b.seed = 7,
            |b| b.stretch_samples = 500,
            |b| b.cache_rows = 400,
            |b| b.verify_mode = "off".into(),
            |b| b.shards = 8,
            |b| b.shard_policy = "range".into(),
        ] {
            let base = sample();
            let mut cur = sample();
            mutate(&mut cur);
            let (failures, _) = compare(&base, &cur);
            assert!(failures[0].contains("configuration mismatch"), "{failures:?}");
        }
    }

    #[test]
    fn missing_scheme_is_a_hard_failure_in_both_directions() {
        let base = sample();
        let mut cur = sample();
        cur.schemes.pop();
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("missing")));

        // A scheme the baseline does not know about must not pass ungated.
        let mut base = sample();
        base.schemes.pop();
        let cur = sample();
        let (failures, _) = compare(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("not in the baseline")), "{failures:?}");
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(ServeBaseline::from_json("{").is_err());
        assert!(ServeBaseline::from_json("{}").unwrap_err().contains("missing field"));
        assert!(ServeBaseline::from_json("{\"n\": -1}").is_err());
    }

    fn chaos_sample() -> ChaosBaseline {
        ChaosBaseline {
            n: 600,
            queries_per_epoch: 4000,
            seed: 42,
            workers: 4,
            shards: 4,
            shard_policy: "hash".into(),
            chords: 1800,
            edge_count: 2400,
            dirty_row_budget: 264,
            bound: 140,
            fractions: vec![
                ChaosFraction {
                    fraction: 0.02,
                    faults_requested: 48,
                    faults_applied: 48,
                    removals: 32,
                    inflations: 16,
                    dirty_nodes: 70,
                    repair_rows: 110,
                    full_rebuild_rows: 1200,
                    clusters_reanchored: 9,
                    balls_repaired: 70,
                    repair_epoch_ns: 1_000_000,
                    pre_worst_stretch: 9.5,
                    degraded_delivered: 3941,
                    degraded_failed: 59,
                    degraded_violations: 3,
                    degraded_worst_stretch: 22.0,
                    degraded_success_rate: 0.985_25,
                    restored_pairs: 41,
                    post_worst_stretch: 9.8,
                    post_violations: 0,
                    post_failed: 0,
                },
                ChaosFraction {
                    fraction: 0.05,
                    faults_requested: 120,
                    faults_applied: 117,
                    removals: 78,
                    inflations: 39,
                    dirty_nodes: 128,
                    repair_rows: 231,
                    full_rebuild_rows: 1200,
                    clusters_reanchored: 17,
                    balls_repaired: 128,
                    repair_epoch_ns: 2_000_000,
                    pre_worst_stretch: 9.5,
                    degraded_delivered: 3800,
                    degraded_failed: 200,
                    degraded_violations: 12,
                    degraded_worst_stretch: 31.0,
                    degraded_success_rate: 0.95,
                    restored_pairs: 150,
                    post_worst_stretch: 10.1,
                    post_violations: 0,
                    post_failed: 0,
                },
            ],
        }
    }

    #[test]
    fn chaos_json_roundtrips_and_compares_clean() {
        let b = chaos_sample();
        let parsed = ChaosBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.n, b.n);
        assert_eq!(parsed.bound, b.bound);
        assert_eq!(parsed.fractions.len(), 2);
        assert_eq!(parsed.fractions[1].repair_rows, 231);
        let (failures, warnings) = compare_chaos(&b, &parsed);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn chaos_kind_discriminator_is_mandatory() {
        let without_kind: String = chaos_sample()
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"kind\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        assert!(ChaosBaseline::from_json(&without_kind).unwrap_err().contains("kind"));
        // A serve artifact must not parse as a chaos one.
        assert!(ChaosBaseline::from_json(&sample().to_json()).is_err());
    }

    #[test]
    fn chaos_determinism_drift_is_a_hard_failure() {
        let base = chaos_sample();

        let mut cur = chaos_sample();
        cur.fractions[1].repair_rows += 1;
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("repair_rows changed")), "{failures:?}");

        let mut cur = chaos_sample();
        cur.fractions[0].degraded_failed = 60;
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("degraded_failed")), "{failures:?}");

        let mut cur = chaos_sample();
        cur.fractions[0].degraded_worst_stretch *= 1.2;
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("degraded_worst_stretch")), "{failures:?}");

        let mut cur = chaos_sample();
        cur.fractions.pop();
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("missing from the current run")));

        let mut base_short = chaos_sample();
        base_short.fractions.pop();
        let cur = chaos_sample();
        let (failures, _) = compare_chaos(&base_short, &cur);
        assert!(failures.iter().any(|f| f.contains("not in the baseline")), "{failures:?}");

        let mut cur = chaos_sample();
        cur.seed = 7;
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures[0].contains("configuration mismatch"), "{failures:?}");
    }

    #[test]
    fn chaos_acceptance_invariants_bind_even_with_a_complicit_baseline() {
        // A baseline that itself records a dirty post-repair epoch or a
        // blown repair budget must still fail the current run: the
        // invariants are re-checked on the current values.
        let mut base = chaos_sample();
        base.fractions[0].post_violations = 5;
        base.fractions[0].repair_rows = 900;
        let mut cur = base.clone();
        cur.fractions[0].post_violations = 5;
        cur.fractions[0].repair_rows = 900;
        let (failures, _) = compare_chaos(&base, &cur);
        assert!(failures.iter().any(|f| f.contains("post-repair epoch is not clean")));
        assert!(failures.iter().any(|f| f.contains("full rebuild")), "{failures:?}");
    }

    #[test]
    fn chaos_repair_wall_only_warns() {
        let base = chaos_sample();
        let mut cur = chaos_sample();
        cur.fractions[0].repair_epoch_ns = base.fractions[0].repair_epoch_ns * 10;
        let (failures, warnings) = compare_chaos(&base, &cur);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.iter().any(|w| w.contains("repair wall")), "{warnings:?}");
    }
}
