//! # rtr-bench — experiment harnesses and benchmarks
//!
//! One binary per figure/table of EXPERIMENTS.md (run with
//! `cargo run -p rtr-bench --release --bin <name>`), plus Criterion benches
//! for construction and forwarding time.
//!
//! Every binary accepts the environment variables
//!
//! * `RTR_SIZES` — comma-separated node counts (default per experiment),
//! * `RTR_SEEDS` — number of seeds to average over (default 3),
//! * `RTR_PAIRS` — roundtrip requests sampled per configuration (default
//!   2000, or all pairs when the graph is small enough),
//!
//! so the same code scales from a quick smoke run to the full sweep recorded
//! in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtr_core::analysis::PairSelection;
use rtr_core::naming::NamingAssignment;
use rtr_graph::generators::Family;
use rtr_graph::DiGraph;
use rtr_metric::DistanceMatrix;

pub mod baseline;

/// Shared experiment configuration read from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Node counts to sweep.
    pub sizes: Vec<usize>,
    /// Number of random seeds per configuration.
    pub seeds: u64,
    /// Roundtrip requests per configuration.
    pub pairs: usize,
}

impl ExperimentConfig {
    /// Reads the configuration from `RTR_SIZES`, `RTR_SEEDS` and `RTR_PAIRS`,
    /// falling back to the given defaults.
    pub fn from_env(default_sizes: &[usize], default_seeds: u64, default_pairs: usize) -> Self {
        let sizes = std::env::var("RTR_SIZES")
            .ok()
            .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<usize>>())
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| default_sizes.to_vec());
        let seeds =
            std::env::var("RTR_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(default_seeds);
        let pairs =
            std::env::var("RTR_PAIRS").ok().and_then(|s| s.parse().ok()).unwrap_or(default_pairs);
        ExperimentConfig { sizes, seeds, pairs }
    }

    /// The pair-selection policy for a graph of `n` nodes: all pairs when that
    /// is no more work than the sample budget, otherwise a seeded sample.
    pub fn selection(&self, n: usize, seed: u64) -> PairSelection {
        if n * (n - 1) <= self.pairs {
            PairSelection::AllPairs
        } else {
            PairSelection::Sampled { count: self.pairs, seed }
        }
    }
}

/// A generated experiment instance: graph, metric, naming.
#[derive(Debug)]
pub struct Instance {
    /// Family label for reporting.
    pub family: &'static str,
    /// The graph.
    pub graph: DiGraph,
    /// Its all-pairs distances.
    pub metric: DistanceMatrix,
    /// The adversarial TINN naming.
    pub names: NamingAssignment,
}

/// Builds an experiment instance of `family` with ≈`n` nodes.
pub fn instance(family: Family, n: usize, seed: u64) -> Instance {
    let graph = family.generate(n, seed).expect("generator failed");
    let metric = DistanceMatrix::build(&graph);
    let names = NamingAssignment::random(graph.node_count(), seed ^ 0x9e37_79b9);
    Instance { family: family.name(), graph, metric, names }
}

/// Prints a section banner so experiment output is self-describing.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a mean ± max pair.
pub fn fmt_stat(avg: f64, max: f64) -> String {
    format!("{avg:.3} (max {max:.3})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_apply() {
        let cfg = ExperimentConfig::from_env(&[64, 128], 3, 500);
        assert!(!cfg.sizes.is_empty());
        assert!(cfg.seeds >= 1);
        assert!(cfg.pairs >= 1);
    }

    #[test]
    fn selection_switches_to_sampling_for_large_graphs() {
        let cfg = ExperimentConfig { sizes: vec![64], seeds: 1, pairs: 100 };
        assert!(matches!(cfg.selection(8, 0), PairSelection::AllPairs));
        assert!(matches!(cfg.selection(64, 0), PairSelection::Sampled { count: 100, .. }));
    }

    #[test]
    fn instances_are_reproducible() {
        let a = instance(Family::Gnp, 32, 5);
        let b = instance(Family::Gnp, 32, 5);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.names, b.names);
    }
}
