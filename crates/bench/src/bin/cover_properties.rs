//! Experiment E7 — Theorems 10 and 13: measured cover properties (per-node
//! tree membership, radius blow-up) against the theoretical bounds
//! `2k·n^{1/k}` and `2k − 1`.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_cover::{CoverStats, DoubleTreeCover};
use rtr_graph::generators::Family;

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256], 2, 0);

    banner("E7: double-tree covers (Theorem 13)");
    println!(
        "{:<12} {:>6} {:>4} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "family", "n", "k", "levels", "max-member", "bound", "max-blowup", "bound", "trees"
    );
    for family in [Family::Gnp, Family::Grid, Family::ScaleFree] {
        for &n in &cfg.sizes {
            for k in [2u32, 3] {
                for seed in 0..cfg.seeds {
                    let inst = instance(family, n, seed);
                    let cover = DoubleTreeCover::build(&inst.graph, &inst.metric, k);
                    let stats = CoverStats::measure(&cover, inst.graph.node_count());
                    assert!(stats.within_bounds(), "Theorem 13 bounds violated: {stats:?}");
                    println!(
                        "{:<12} {:>6} {:>4} {:>7} {:>12} {:>12.1} {:>12.2} {:>12} {:>10}",
                        inst.family,
                        inst.graph.node_count(),
                        k,
                        stats.levels,
                        stats.max_membership_per_level,
                        stats.membership_bound(),
                        stats.max_height_blowup,
                        stats.height_blowup_bound(),
                        stats.total_trees
                    );
                }
            }
        }
    }
}
