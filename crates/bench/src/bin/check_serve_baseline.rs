//! CI gate: diff fresh `BENCH_serve.json` artifacts (written by
//! `serve_throughput`) against the checked-in seed baselines.
//!
//! Usage: `check_serve_baseline <baseline.json> <current.json> [<baseline2>
//! <current2> …]` — each pair is diffed independently (CI gates the n = 600
//! smoke and the n = 2000 verified run in one invocation) and any failing
//! pair fails the gate.
//!
//! Exits non-zero when a gated quantity regressed beyond tolerance — scheme
//! table bytes, worst-node table bits, worst sampled stretch, verified-query
//! coverage, bound violations, worst verified stretch, distinct
//! destinations, verify-oracle rows, per-worker-sweep verify rows (all
//! deterministic given the run's seeds; the row gates are how CI catches the
//! per-shard verification buckets regressing to per-worker cost), or the
//! suite-build oracle-row count (the shared-sweep budget).  A changed shard
//! count or policy is a configuration mismatch, also fatal.  Throughput
//! differences only warn: queries/sec is a property of the host, not of the
//! code alone.
//!
//! To update the baseline **intentionally** (a change that is supposed to
//! shrink tables or rows, or a new scheme), regenerate it with the CI smoke
//! parameters and commit the new file — the exact command is in the README's
//! "Performance baseline" section.

use rtr_bench::baseline::{compare, ServeBaseline};

fn load(path: &str) -> ServeBaseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(2);
    });
    ServeBaseline::from_json(&text).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() % 2 != 1 {
        eprintln!(
            "usage: check_serve_baseline <baseline.json> <current.json> \
             [<baseline2.json> <current2.json> …]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args[1..].chunks_exact(2) {
        let baseline = load(&pair[0]);
        let current = load(&pair[1]);
        let (failures, warnings) = compare(&baseline, &current);
        for w in &warnings {
            println!("WARN: {}: {w}", pair[0]);
        }
        if failures.is_empty() {
            println!(
                "baseline ok: n = {}, verify {}, {} shards ({}), build rows {} (baseline {}), \
                 verify rows {} (baseline {}), {} schemes and {} sweep points gated",
                current.n,
                current.verify_mode,
                current.shards,
                current.shard_policy,
                current.build_rows_computed,
                baseline.build_rows_computed,
                current.verify_rows_computed,
                baseline.verify_rows_computed,
                baseline.schemes.len(),
                baseline.worker_sweep.len()
            );
            continue;
        }
        for f in &failures {
            eprintln!("FAIL: {}: {f}", pair[0]);
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
