//! CI gate: diff a fresh `BENCH_serve.json` (written by `serve_throughput`)
//! against the checked-in seed baseline.
//!
//! Usage: `check_serve_baseline <baseline.json> <current.json>`
//!
//! Exits non-zero when a gated quantity regressed beyond tolerance — scheme
//! table bytes, worst-node table bits, worst sampled stretch (all
//! deterministic given the run's seeds), or the suite-build oracle-row count
//! (the shared-sweep budget).  Throughput differences only warn: queries/sec
//! is a property of the host, not of the code alone.
//!
//! To update the baseline **intentionally** (a change that is supposed to
//! shrink tables or rows, or a new scheme), regenerate it with the CI smoke
//! parameters and commit the new file — the exact command is in the README's
//! "Performance baseline" section.

use rtr_bench::baseline::{compare, ServeBaseline};

fn load(path: &str) -> ServeBaseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(2);
    });
    ServeBaseline::from_json(&text).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: check_serve_baseline <baseline.json> <current.json>");
        std::process::exit(2);
    }
    let baseline = load(&args[1]);
    let current = load(&args[2]);
    let (failures, warnings) = compare(&baseline, &current);
    for w in &warnings {
        println!("WARN: {w}");
    }
    if failures.is_empty() {
        println!(
            "baseline ok: n = {}, build rows {} (baseline {}), {} schemes gated",
            current.n,
            current.build_rows_computed,
            baseline.build_rows_computed,
            baseline.schemes.len()
        );
        return;
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(1);
}
