//! CI gate: diff fresh baseline artifacts against the checked-in seeds.
//!
//! Usage: `check_serve_baseline <baseline.json> <current.json> [<baseline2>
//! <current2> …]` — each pair is diffed independently (CI gates the n = 600
//! smoke, the n = 2000 verified run, and the chaos sweep in one invocation)
//! and any failing pair fails the gate.  A pair's artifact shape is
//! dispatched on the `"kind"` discriminator: files carrying
//! `"kind": "chaos"` are `BENCH_chaos.json` artifacts (written by
//! `chaos_sweep`, diffed with `compare_chaos`), everything else is a
//! `BENCH_serve.json` artifact (written by `serve_throughput`, diffed with
//! `compare`).  Mixing kinds within a pair is a fatal usage error.
//!
//! Exits non-zero when a gated quantity regressed beyond tolerance — scheme
//! table bytes, worst-node table bits, worst sampled stretch, verified-query
//! coverage, bound violations, worst verified stretch, distinct
//! destinations, verify-oracle rows, per-worker-sweep verify rows (all
//! deterministic given the run's seeds; the row gates are how CI catches the
//! per-shard verification buckets regressing to per-worker cost), or the
//! suite-build oracle-row count (the shared-sweep budget).  A changed shard
//! count or policy is a configuration mismatch, also fatal.  Throughput
//! differences only warn: queries/sec is a property of the host, not of the
//! code alone.
//!
//! Chaos pairs additionally re-check two acceptance invariants on the
//! **current** run regardless of the baseline's word: the post-repair epoch
//! must be perfectly clean, and the incremental repair must recompute at
//! most `REPAIR_ROW_BUDGET` (25%) of the full-rebuild oracle rows.
//!
//! To update a baseline **intentionally** (a change that is supposed to
//! shrink tables or rows, or a new scheme), regenerate it with the CI smoke
//! parameters and commit the new file — the exact commands are in the
//! README's "Performance baseline" section and docs/OPERATIONS.md's chaos
//! runbook.

use rtr_bench::baseline::{compare, compare_chaos, ChaosBaseline, JsonValue, ServeBaseline};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// The artifact-shape discriminator: `Some("chaos")` for chaos baselines,
/// `None` for serve baselines (which predate the `kind` field).
fn kind_of(path: &str, text: &str) -> Option<String> {
    let value = JsonValue::parse(text).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    value.field_opt("kind").map(|k| {
        k.as_string().unwrap_or_else(|e| {
            eprintln!("FAIL: {path}: malformed kind: {e}");
            std::process::exit(2);
        })
    })
}

fn parse_serve(path: &str, text: &str) -> ServeBaseline {
    ServeBaseline::from_json(text).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn parse_chaos(path: &str, text: &str) -> ChaosBaseline {
    ChaosBaseline::from_json(text).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() % 2 != 1 {
        eprintln!(
            "usage: check_serve_baseline <baseline.json> <current.json> \
             [<baseline2.json> <current2.json> …]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args[1..].chunks_exact(2) {
        let (base_text, cur_text) = (read(&pair[0]), read(&pair[1]));
        let base_kind = kind_of(&pair[0], &base_text);
        let cur_kind = kind_of(&pair[1], &cur_text);
        if base_kind != cur_kind {
            eprintln!(
                "FAIL: {} and {} are different artifact kinds ({:?} vs {:?}) — pair a serve \
                 baseline with a serve run and a chaos baseline with a chaos run",
                pair[0], pair[1], base_kind, cur_kind
            );
            std::process::exit(2);
        }
        let (failures, warnings) = match base_kind.as_deref() {
            Some("chaos") => {
                let baseline = parse_chaos(&pair[0], &base_text);
                let current = parse_chaos(&pair[1], &cur_text);
                let diff = compare_chaos(&baseline, &current);
                if diff.0.is_empty() {
                    println!(
                        "chaos baseline ok: n = {}, bound {}, {} fractions gated (repair rows \
                         within {:.0}% of full rebuild, post-repair epochs clean)",
                        current.n,
                        current.bound,
                        baseline.fractions.len(),
                        100.0 * rtr_bench::baseline::REPAIR_ROW_BUDGET
                    );
                }
                diff
            }
            Some(other) => {
                eprintln!("FAIL: {}: unknown artifact kind \"{other}\"", pair[0]);
                std::process::exit(2);
            }
            None => {
                let baseline = parse_serve(&pair[0], &base_text);
                let current = parse_serve(&pair[1], &cur_text);
                let diff = compare(&baseline, &current);
                if diff.0.is_empty() {
                    println!(
                        "baseline ok: n = {}, verify {}, {} shards ({}), build rows {} \
                         (baseline {}), verify rows {} (baseline {}), {} schemes and {} sweep \
                         points gated",
                        current.n,
                        current.verify_mode,
                        current.shards,
                        current.shard_policy,
                        current.build_rows_computed,
                        baseline.build_rows_computed,
                        current.verify_rows_computed,
                        baseline.verify_rows_computed,
                        baseline.schemes.len(),
                        baseline.worker_sweep.len()
                    );
                }
                diff
            }
        };
        for w in &warnings {
            println!("WARN: {}: {w}", pair[0]);
        }
        for f in &failures {
            eprintln!("FAIL: {}: {f}", pair[0]);
        }
        failed |= !failures.is_empty();
    }
    if failed {
        std::process::exit(1);
    }
}
