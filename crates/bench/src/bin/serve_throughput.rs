//! E13 — serving throughput: build the sparse scheme suite at large `n`
//! through the lazy oracle and serve every workload from the engine's
//! **sharded** worker pool, reporting queries/sec, hop latency and exact
//! tail stretch per scheme — all from a single verified serving pass.
//!
//! This is the tentpole experiment of the `rtr-engine` layer: the schemes
//! answer millions of roundtrip queries across threads, with per-shard
//! accounting and zero per-query allocation in the engine itself.  The suite
//! is the **sparse** configuration ([`rtr_core::SparseSchemeSuite`]): the §2
//! scheme rides the Õ(√n) landmark + ball substrate, the §3 scheme the
//! tree-cover substrate with its on-demand handshake, and the §4 scheme
//! shares the §3 hierarchy — nothing in the build path materialises an
//! `n·n`-capacity table, which is what takes the whole stack to `n = 10⁵`.
//!
//! Alongside throughput the run reports, per scheme, the total and per-node
//! routing-table footprint ([`rtr_sim::TableStats`] summed over nodes, with
//! its ratio to the `n²` distance-word baseline the compactness bounds are
//! measured against) and the lazy oracle's peak resident rows — the two
//! numbers that certify the o(n²) memory claim.
//!
//! **Single-pass serving.**  Every stream is served exactly once, through the
//! verification plane.  With `RTR_VERIFY=off` (the default) the engine still
//! runs a strided sample — `queries / RTR_SAMPLES` — purely to produce the
//! exact stretch columns (the role the retired `StretchSample` machinery
//! used to play), but the artifact records the run as unverified.  With
//! `sampled`/`full` the same pass also enforces the proven stretch ceilings
//! (`exstretch`, `polystretch` hard-fail on any violating query) and records
//! the verify columns.  The serve-only wall is *derived* from the verified
//! run via the recorded flush wall (`elapsed − flush_wall/workers`), so
//! `RTR_VERIFY_MAX_SLOWDOWN` (e.g. `2.0`) still fails the run when in-flight
//! verification costs more than that multiple of bare serving — without a
//! second, unverified pass to compare against.
//!
//! **Sharded plane.**  `RTR_SHARDS` (default 4; `0` selects the unsharded
//! engine) partitions destinations under `RTR_SHARD_POLICY` (`hash` |
//! `range`); cross-shard requests travel bounded handoff channels and
//! verification buckets live per shard, so the verify oracle computes at
//! most `2 · distinct(destinations)` rows no matter how many workers serve —
//! the run hard-fails under full verification if that bound (plus a
//! `2 · shards` flush slack) is exceeded.  `RTR_WORKER_SWEEP` (default
//! `1,2,4,8,16`; `none` disables) re-serves the mix workload fully verified
//! at each worker count on a fresh verify oracle, recording and gating that
//! verify rows stay flat as workers grow.
//!
//! The run's headline numbers are also written as a machine-readable
//! [`ServeBaseline`] artifact (`BENCH_serve.json`), which CI diffs against
//! the checked-in seed baseline `ci/BENCH_serve.json` — see the
//! `check_serve_baseline` binary and the README's baseline-workflow section.
//!
//! **Telemetry.**  The run prints the `rtr-telemetry` span-tree report
//! (build-stage and sweep spans with count/total/mean/max wall) and writes
//! the full registry — counters, gauges, histograms, spans, flight recorder
//! — to `RTR_TELEMETRY_JSON` (default `BENCH_telemetry.json`).  Before
//! exporting it hard-fails unless the exported `oracle.verify.rows_computed`
//! counter and `serve.distinct_destinations` gauge **exactly** equal the
//! `verify_rows_computed` / `distinct_destinations` values the baseline
//! artifact gates (counted at the same sources, so drift means the
//! observability plane lies).  `RTR_TELEMETRY_MAX_OVERHEAD` (e.g. `1.25`)
//! additionally re-serves the mix workload unverified with the sink enabled
//! vs. the runtime no-op sink and fails if the enabled wall exceeds that
//! factor.
//!
//! Environment: `RTR_N` (default 10 000 — CI smoke and local large-n runs
//! share this binary by overriding it), `RTR_QUERIES` per workload (default
//! 200 000), `RTR_WORKERS` (default: available parallelism), `RTR_CACHE`
//! lazy-oracle rows (default `n/50`), `RTR_SAMPLES` stretch samples per run
//! (default 2 000), `RTR_SEED` (default 42), `RTR_BENCH_JSON` artifact path
//! (default `BENCH_serve.json`), `RTR_MAX_BUILD_ROW_FACTOR` — when set, the
//! run **fails** if the suite build computed more than `factor · n` oracle
//! rows (the CI guard for the shared-sweep row budget) — plus `RTR_VERIFY`,
//! `RTR_VERIFY_CACHE` (default `2n`), `RTR_VERIFY_MAX_SLOWDOWN`,
//! `RTR_SHARDS`, `RTR_SHARD_POLICY`, `RTR_WORKER_SWEEP`,
//! `RTR_TELEMETRY_JSON` and `RTR_TELEMETRY_MAX_OVERHEAD` above.

use rtr_bench::banner;
use rtr_bench::baseline::{SchemeBaseline, ServeBaseline, SweepPoint};
use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseSchemeSuite, SparseSuiteParams};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, StretchBound, VerifiedReport,
    VerifyConfig, VerifyCost, VerifyMode, Workload,
};
use rtr_graph::generators::ring_with_chords;
use rtr_graph::NodeId;
use rtr_metric::LazyDijkstraOracle;
use rtr_sim::RoundtripRouting;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Sums every node's [`rtr_sim::TableStats`] and prints the scheme's resident
/// footprint against the `n²` baseline — the 64-bit distance words a dense
/// all-pairs structure (the distance matrix, or the retired handshake side
/// table) would pin.  Returns `(total bytes, worst-node bits)` for the
/// baseline artifact.
fn report_tables<S: RoundtripRouting>(plane: &FrozenPlane<S>) -> (u64, u64) {
    let n = plane.node_count();
    let mut total_entries: u128 = 0;
    let mut total_bits: u128 = 0;
    let mut max_node_bits = 0usize;
    for v in (0..n).map(NodeId::from_index) {
        let stats = plane.scheme().table_stats(v);
        total_entries += stats.entries as u128;
        total_bits += stats.bits as u128;
        max_node_bits = max_node_bits.max(stats.bits);
    }
    let dense_bits = (n as u128) * (n as u128) * 64;
    println!(
        "  tables: {:.2} Mentries, {:.1} MiB total ({:.2}% of n² dense words), worst node {:.1} KiB",
        total_entries as f64 / 1e6,
        total_bits as f64 / (8.0 * 1024.0 * 1024.0),
        100.0 * total_bits as f64 / dense_bits as f64,
        max_node_bits as f64 / (8.0 * 1024.0),
    );
    ((total_bits / 8) as u64, max_node_bits as u64)
}

/// One stream's verified serving outcome, identical in shape whether it ran
/// on the sharded or the unsharded engine.
struct StreamOutcome {
    summary: rtr_engine::ServeSummary,
    report: VerifiedReport,
    cost: VerifyCost,
    /// Cross-shard handoffs summed over shards (0 on the unsharded engine).
    handoffs: u64,
}

/// Serves one request stream through whichever engine the run selected.
fn serve_stream<S>(
    engine: &Engine,
    plane: &FrozenPlane<S>,
    sharded: Option<&ShardedPlane<S>>,
    requests: &[rtr_engine::Request],
    oracle: &LazyDijkstraOracle<'_>,
    config: &VerifyConfig,
    label: &str,
) -> StreamOutcome
where
    S: RoundtripRouting + Send + Sync,
{
    match sharded {
        Some(sharded) => {
            let out = engine
                .serve_verified_sharded(sharded, requests, oracle, config)
                .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
            let handoffs = out.shards.iter().map(|s| s.handoffs).sum();
            StreamOutcome { summary: out.summary, report: out.report, cost: out.cost, handoffs }
        }
        None => {
            let out = engine
                .serve_verified(plane, requests, oracle, config)
                .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
            StreamOutcome { summary: out.summary, report: out.report, cost: out.cost, handoffs: 0 }
        }
    }
}

/// Serves every workload once through the verification plane, returning the
/// scheme's baseline row plus `(serving wall, flush wall)` — the engine's
/// clock for the verified pass and the portion spent inside bucket flushes,
/// from which the verify-slowdown gate derives the serve-only wall.
///
/// `record_verify` is false when the user asked for `RTR_VERIFY=off`: the
/// pass still samples (for the stretch columns) but the artifact's verify
/// fields stay zero, preserving `off` baseline semantics.
#[allow(clippy::too_many_arguments)] // a bench driver, not a library API
fn serve_all<S>(
    plane: &FrozenPlane<S>,
    shard_map: Option<ShardMap>,
    engine: &Engine,
    verify_oracle: &LazyDijkstraOracle<'_>,
    config: &VerifyConfig,
    record_verify: bool,
    queries: usize,
    seed: u64,
    destination_seen: &mut [bool],
) -> (SchemeBaseline, Duration, Duration)
where
    S: RoundtripRouting + Send + Sync,
{
    println!(
        "\n{:<14} {:>10} {:>9} {:>14} {:>22} {:>7} {:>7} {:>9}",
        plane.scheme_name(),
        "queries/s",
        "avg-hops",
        "hops p50/95/99",
        "stretch p50/p95/p99",
        "max-str",
        "viols",
        "handoffs"
    );
    let sharded = shard_map.map(|map| ShardedPlane::new(plane.clone(), map));
    let mut base = SchemeBaseline {
        scheme: plane.scheme_name().to_string(),
        table_bytes: 0,
        worst_node_bits: 0,
        worst_sampled_stretch: 0.0,
        min_queries_per_sec: f64::INFINITY,
        verified_queries: 0,
        verify_violations: 0,
        worst_verified_stretch: 0.0,
    };
    let mut serving_wall = Duration::ZERO;
    let mut flush_wall = Duration::ZERO;
    for workload in Workload::ALL {
        let requests = workload.generate(plane.node_count(), queries, seed);
        for r in &requests {
            destination_seen[r.dst.index()] = true;
        }
        let label = format!("{} under {}", plane.scheme_name(), workload.name());
        let out =
            serve_stream(engine, plane, sharded.as_ref(), &requests, verify_oracle, config, &label);
        assert_eq!(out.summary.queries, queries);
        serving_wall += out.summary.elapsed;
        flush_wall += out.cost.flush_wall;
        let (h50, h95, h99) = out.summary.hop_latency();
        let report = &out.report;
        base.worst_sampled_stretch = base.worst_sampled_stretch.max(report.max_stretch());
        base.min_queries_per_sec = base.min_queries_per_sec.min(out.summary.queries_per_sec());
        if record_verify {
            base.verified_queries += report.checked as u64;
            base.verify_violations += report.violations.len() as u64;
            base.worst_verified_stretch = base.worst_verified_stretch.max(report.max_stretch());
        }
        println!(
            "  {:<12} {:>10.0} {:>9.2} {:>14} {:>22} {:>7.3} {:>7} {:>9}",
            workload.name(),
            out.summary.queries_per_sec(),
            out.summary.avg_hops(),
            format!("{h50}/{h95}/{h99}"),
            format!(
                "{:.3}/{:.3}/{:.3}",
                report.histogram.percentile(0.50),
                report.histogram.percentile(0.95),
                report.histogram.percentile(0.99)
            ),
            report.max_stretch(),
            report.violations.len(),
            out.handoffs,
        );
    }
    let (table_bytes, worst_node_bits) = report_tables(plane);
    base.table_bytes = table_bytes;
    base.worst_node_bits = worst_node_bits;
    (base, serving_wall, flush_wall)
}

fn main() {
    let n = env_usize("RTR_N", 10_000);
    let queries = env_usize("RTR_QUERIES", 200_000);
    let workers = env_usize(
        "RTR_WORKERS",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );
    let cache_rows = env_usize("RTR_CACHE", (n / 50).max(16));
    let samples = env_usize("RTR_SAMPLES", 2_000).max(1);
    let seed = env_usize("RTR_SEED", 42) as u64;
    let verify_mode = match std::env::var("RTR_VERIFY").as_deref() {
        Err(_) | Ok("off") => VerifyMode::Off,
        Ok("full") => VerifyMode::Full,
        Ok("sampled") => VerifyMode::Sampled { stride: (queries / samples).max(1) },
        Ok(other) => panic!("RTR_VERIFY must be off|sampled|full, got {other}"),
    };
    let verify_cache = env_usize("RTR_VERIFY_CACHE", (2 * n).max(64));
    let shards = env_usize("RTR_SHARDS", 4);
    let shard_map = match (shards, std::env::var("RTR_SHARD_POLICY").as_deref()) {
        (0, _) => None,
        (s, Err(_) | Ok("hash")) => Some(ShardMap::hashed(n, s, seed)),
        (s, Ok("range")) => Some(ShardMap::range(n, s)),
        (_, Ok(other)) => panic!("RTR_SHARD_POLICY must be hash|range, got {other}"),
    };
    let shard_policy = shard_map.as_ref().map_or("none", |m| m.policy().name()).to_string();
    let sweep: Vec<usize> = match std::env::var("RTR_WORKER_SWEEP") {
        Err(_) => vec![1, 2, 4, 8, 16],
        Ok(s) if s.is_empty() || s == "none" => Vec::new(),
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("RTR_WORKER_SWEEP: comma-separated worker counts"))
            .collect(),
    };

    banner(&format!(
        "E13: serving throughput, n = {n}, {queries} queries/workload, {workers} workers, \
         {} ({shard_policy})",
        if shards == 0 { "unsharded".to_string() } else { format!("{shards} shards") },
    ));
    let t0 = Instant::now();
    let g = Arc::new(ring_with_chords(n, 3 * n, seed).expect("generator failed"));
    println!("graph: n = {}, m = {} ({:.1?})", g.node_count(), g.edge_count(), t0.elapsed());

    let oracle = LazyDijkstraOracle::new(&g, cache_rows);
    let names = NamingAssignment::random(n, seed ^ 0x517e);

    let t1 = Instant::now();
    let suite = SparseSchemeSuite::build(&g, &oracle, &names, SparseSuiteParams::default());
    let build_stats = oracle.stats();
    println!(
        "sparse suite built in {:.1?} (rows computed {} = {:.2}·n, peak resident {} of {} = {:.1}% of n²)",
        t1.elapsed(),
        build_stats.rows_computed,
        build_stats.rows_computed as f64 / n as f64,
        build_stats.peak_resident_rows,
        n,
        100.0 * build_stats.peak_resident_rows as f64 / n as f64
    );
    if let Ok(factor) = std::env::var("RTR_MAX_BUILD_ROW_FACTOR") {
        let factor: f64 = factor.parse().expect("RTR_MAX_BUILD_ROW_FACTOR must be a number");
        let limit = (factor * n as f64).ceil() as usize;
        if build_stats.rows_computed > limit {
            eprintln!(
                "FAIL: suite build computed {} oracle rows, budget is {factor}·n = {limit} — \
                 the shared sweep is no longer shared",
                build_stats.rows_computed
            );
            std::process::exit(1);
        }
        println!("build row budget ok: {} <= {factor}·n = {limit}", build_stats.rows_computed);
    }

    // The proven stretch ceilings the verification plane enforces: the §3
    // scheme's (2^k − 1)·β over the tree-cover substrate and the §4 paper
    // bound.  The sparse §2 scheme rides the landmark substrate, whose
    // stretch is measured-not-proven (DESIGN.md substitution), so it
    // verifies without a hard ceiling.
    let ex_bound = suite
        .exstretch
        .paper_stretch_bound()
        .expect("tree-cover substrate carries a proven stretch");
    let poly_bound = suite.poly.paper_stretch_bound();

    let (stretch6, exstretch, poly) = suite.into_parts();
    let frozen_names = Arc::new(names.to_names());
    let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
    let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
    let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

    let engine = Engine::new(EngineConfig::with_workers(workers));

    // The single serving pass: `off` still samples (for the stretch
    // columns) but records the run as unverified; `sampled`/`full` also
    // enforce the proven ceilings and fill the artifact's verify fields.
    let record_verify = verify_mode != VerifyMode::Off;
    let engine_mode = match verify_mode {
        VerifyMode::Off => VerifyMode::Sampled { stride: (queries / samples).max(1) },
        mode => mode,
    };
    let config = |bound: Option<StretchBound>| VerifyConfig {
        mode: engine_mode,
        bound: if record_verify { bound } else { None },
        ..VerifyConfig::default()
    };
    // The gated serve's oracle is the only one carrying the "verify"
    // telemetry scope, so `oracle.verify.rows_computed` counts exactly the
    // rows `verify_rows_computed` gates — the export cross-check below (and
    // the `check_telemetry` binary in CI) would catch any drift.
    let verify_oracle = LazyDijkstraOracle::new(&g, verify_cache).with_telemetry_scope("verify");
    let mut destination_seen = vec![false; n];

    banner(&format!("serving ({} verification in-pass)", engine_mode.name()));
    let mut serving_wall = Duration::ZERO;
    let mut flush_wall = Duration::ZERO;
    let mut schemes = Vec::with_capacity(3);
    // The planes carry distinct scheme types, so the three runs are spelled
    // out rather than looped.
    macro_rules! run_scheme {
        ($plane:expr, $bound:expr, $scheme_seed:expr) => {{
            let (base, wall, flush) = serve_all(
                $plane,
                shard_map,
                &engine,
                &verify_oracle,
                &config($bound),
                record_verify,
                queries,
                $scheme_seed,
                &mut destination_seen,
            );
            schemes.push(base);
            serving_wall += wall;
            flush_wall += flush;
        }};
    }
    run_scheme!(&plane6, None, seed ^ 0x6001);
    run_scheme!(&planex, Some(StretchBound::at_most(ex_bound)), seed ^ 0x6002);
    run_scheme!(&planep, Some(StretchBound::at_most(poly_bound)), seed ^ 0x6003);

    let distinct_destinations = destination_seen.iter().filter(|&&s| s).count();
    rtr_telemetry::gauge("serve.distinct_destinations").set(distinct_destinations as u64);
    let vstats = verify_oracle.stats();
    println!(
        "\nverification oracle: rows computed {}, cache hits {} ({:.1}% hit rate), \
         evictions {}, peak resident {} ({} distinct destinations over all streams)",
        vstats.rows_computed,
        vstats.cache_hits,
        100.0 * verify_oracle.hit_rate(),
        vstats.evictions,
        vstats.peak_resident_rows,
        distinct_destinations
    );
    if verify_mode == VerifyMode::Full {
        // The per-shard-bucket economics: full verification costs two
        // Dijkstras per *distinct destination*, never per worker, with up to
        // one duplicate window per shard at flush boundaries.
        let row_budget = 2 * distinct_destinations + 2 * shards.max(1);
        if vstats.rows_computed > row_budget {
            eprintln!(
                "FAIL: verification computed {} oracle rows, budget is \
                 2·distinct + 2·shards = {row_budget}",
                vstats.rows_computed
            );
            std::process::exit(1);
        }
        println!("verify row budget ok: {} <= {row_budget}", vstats.rows_computed);
    }
    if record_verify {
        // Derive the serve-only wall from the verified pass: flush_wall sums
        // over accumulators, so dividing by the worker count bounds the
        // wall-clock share verification can have added.
        let serve_only = (serving_wall.as_secs_f64()
            - flush_wall.as_secs_f64() / workers.max(1) as f64)
            .max(1e-9);
        let ratio = serving_wall.as_secs_f64() / serve_only;
        println!(
            "verified serving wall {serving_wall:.1?}, flush wall {flush_wall:.1?} over \
             {workers} workers ({ratio:.2}× derived slowdown)"
        );
        if let Ok(factor) = std::env::var("RTR_VERIFY_MAX_SLOWDOWN") {
            let factor: f64 = factor.parse().expect("RTR_VERIFY_MAX_SLOWDOWN must be a number");
            if ratio > factor {
                eprintln!(
                    "FAIL: in-flight verification inflated the serving wall {ratio:.2}×, \
                     budget {factor}×"
                );
                std::process::exit(1);
            }
            println!("verify slowdown budget ok: {ratio:.2}× <= {factor}×");
        }
    }

    // Worker sweep: the mix workload on the §2 plane, fully verified on a
    // fresh oracle per point — the artifact's record that throughput scales
    // with workers while verify rows stay flat (the per-shard-bucket claim).
    let mut worker_sweep = Vec::with_capacity(sweep.len());
    if !sweep.is_empty() {
        banner("worker sweep (mix workload, full verification)");
        let requests = Workload::Mix.generate(n, queries, seed ^ 0x6001);
        let mut mix_seen = vec![false; n];
        for r in &requests {
            mix_seen[r.dst.index()] = true;
        }
        let mix_distinct = mix_seen.iter().filter(|&&s| s).count();
        let sweep_config =
            VerifyConfig { mode: VerifyMode::Full, bound: None, ..VerifyConfig::default() };
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>9}",
            "workers", "queries/s", "verify-rows", "row-fetches", "handoffs"
        );
        for &w in &sweep {
            let sweep_engine = Engine::new(EngineConfig::with_workers(w));
            let sweep_oracle = LazyDijkstraOracle::new(&g, verify_cache);
            let out = serve_stream(
                &sweep_engine,
                &plane6,
                shard_map.map(|m| ShardedPlane::new(plane6.clone(), m)).as_ref(),
                &requests,
                &sweep_oracle,
                &sweep_config,
                &format!("sweep at {w} workers"),
            );
            let rows = sweep_oracle.stats().rows_computed;
            println!(
                "{:>9} {:>12.0} {:>12} {:>12} {:>9}",
                w,
                out.summary.queries_per_sec(),
                rows,
                out.cost.row_fetches,
                out.handoffs
            );
            let row_budget = 2 * mix_distinct + 2 * shards.max(1);
            if rows > row_budget {
                eprintln!(
                    "FAIL: verify rows grew with workers — {w} workers computed {rows} rows, \
                     budget 2·distinct + 2·shards = {row_budget}"
                );
                std::process::exit(1);
            }
            worker_sweep.push(SweepPoint {
                workers: w,
                queries_per_sec: out.summary.queries_per_sec(),
                verify_rows: rows as u64,
            });
        }
        println!("verify rows flat across the sweep (≤ 2·{mix_distinct} + 2·{})", shards.max(1));
    }

    let stats = oracle.stats();
    banner("oracle");
    println!(
        "rows computed {}, cache hits {}, peak resident rows {} ({:.1}% of n²)",
        stats.rows_computed,
        stats.cache_hits,
        stats.peak_resident_rows,
        100.0 * stats.peak_resident_rows as f64 / n as f64
    );
    println!("total wall-clock: {:.1?}", t0.elapsed());

    let artifact = ServeBaseline {
        n,
        queries_per_workload: queries,
        seed,
        stretch_samples: samples,
        cache_rows,
        verify_mode: verify_mode.name().to_string(),
        shards,
        shard_policy,
        build_rows_computed: build_stats.rows_computed,
        peak_resident_rows: stats.peak_resident_rows,
        verify_rows_computed: vstats.rows_computed as u64,
        distinct_destinations: distinct_destinations as u64,
        worker_sweep,
        schemes,
    };
    let json_path =
        std::env::var("RTR_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&json_path, artifact.to_json())
        .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    println!("baseline artifact written to {json_path}");

    // Telemetry overhead gate: re-serve the mix workload unverified with the
    // sink enabled vs. the runtime no-op sink (minimum of three interleaved
    // pairs after a warm-up) and fail if the enabled wall exceeds the budget
    // factor.  Runs before the export so the process-global counters are
    // final when the artifact is written; the cross-checked names
    // (`oracle.verify.*`, `serve.distinct_destinations`) are untouched here.
    if let Ok(factor) = std::env::var("RTR_TELEMETRY_MAX_OVERHEAD") {
        let factor: f64 = factor.parse().expect("RTR_TELEMETRY_MAX_OVERHEAD must be a number");
        banner("telemetry overhead gate (mix workload, unverified serve)");
        let requests = Workload::Mix.generate(n, queries, seed ^ 0x6001);
        let overhead_sharded = shard_map.map(|m| ShardedPlane::new(plane6.clone(), m));
        let run = |enabled: bool| -> Duration {
            rtr_telemetry::set_enabled(enabled);
            let started = Instant::now();
            match &overhead_sharded {
                Some(s) => {
                    engine.serve_sharded(s, &requests).expect("overhead serve failed");
                }
                None => {
                    engine.serve(&plane6, &requests).expect("overhead serve failed");
                }
            }
            started.elapsed()
        };
        run(true);
        run(false);
        let (mut best_on, mut best_off) = (Duration::MAX, Duration::MAX);
        for _ in 0..3 {
            best_on = best_on.min(run(true));
            best_off = best_off.min(run(false));
        }
        rtr_telemetry::set_enabled(true);
        let ratio = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-9);
        println!("enabled {best_on:.1?} vs no-op sink {best_off:.1?} ({ratio:.3}×)");
        if ratio > factor {
            eprintln!("FAIL: telemetry overhead {ratio:.3}× exceeds budget {factor}×");
            std::process::exit(1);
        }
        println!("telemetry overhead budget ok: {ratio:.3}× <= {factor}×");
    }

    // Span-tree report, export cross-check, and the RTR_TELEMETRY_JSON
    // artifact.  The cross-check repeats in CI via `check_telemetry` on the
    // written files; failing here too keeps local runs honest.
    let registry = rtr_telemetry::registry();
    banner("telemetry");
    print!("{}", registry.span_report());
    let telemetry_rows = registry.counter_value("oracle.verify.rows_computed");
    if telemetry_rows != artifact.verify_rows_computed {
        eprintln!(
            "FAIL: telemetry counter oracle.verify.rows_computed = {telemetry_rows} disagrees \
             with the baseline-gated verify_rows_computed = {}",
            artifact.verify_rows_computed
        );
        std::process::exit(1);
    }
    let (telemetry_distinct, _) = registry.gauge_value("serve.distinct_destinations");
    if telemetry_distinct != artifact.distinct_destinations {
        eprintln!(
            "FAIL: telemetry gauge serve.distinct_destinations = {telemetry_distinct} disagrees \
             with the baseline-gated distinct_destinations = {}",
            artifact.distinct_destinations
        );
        std::process::exit(1);
    }
    println!(
        "telemetry cross-check ok: verify rows {telemetry_rows}, distinct destinations \
         {telemetry_distinct}"
    );
    let telemetry_path =
        std::env::var("RTR_TELEMETRY_JSON").unwrap_or_else(|_| "BENCH_telemetry.json".to_string());
    std::fs::write(&telemetry_path, registry.to_json())
        .unwrap_or_else(|e| panic!("writing {telemetry_path}: {e}"));
    println!("telemetry artifact written to {telemetry_path}");
}
