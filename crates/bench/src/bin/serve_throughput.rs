//! E13 — serving throughput: build the sparse scheme suite at large `n`
//! through the lazy oracle and serve every workload from the engine's worker
//! pool, reporting queries/sec, hop latency and tail stretch per scheme.
//!
//! This is the tentpole experiment of the `rtr-engine` layer: the schemes
//! answer millions of roundtrip queries across threads, with per-worker
//! accounting and zero per-query allocation in the engine itself.  The suite
//! is the **sparse** configuration ([`rtr_core::SparseSchemeSuite`]): the §2
//! scheme rides the Õ(√n) landmark + ball substrate, the §3 scheme the
//! tree-cover substrate with its on-demand handshake, and the §4 scheme
//! shares the §3 hierarchy — nothing in the build path materialises an
//! `n·n`-capacity table, which is what takes the whole stack to `n = 10⁵`.
//!
//! Alongside throughput the run reports, per scheme, the total and per-node
//! routing-table footprint ([`rtr_sim::TableStats`] summed over nodes, with
//! its ratio to the `n²` distance-word baseline the compactness bounds are
//! measured against) and the lazy oracle's peak resident rows — the two
//! numbers that certify the o(n²) memory claim.
//!
//! Stretch is exact over a strided sample, answered from destination
//! roundtrip rows (cheap under Zipf/hotspot skew; bounded by the sample size
//! under uniform load).
//!
//! The run's headline numbers are also written as a machine-readable
//! [`ServeBaseline`] artifact (`BENCH_serve.json`), which CI diffs against
//! the checked-in seed baseline `ci/BENCH_serve.json` — see the
//! `check_serve_baseline` binary and the README's baseline-workflow section.
//!
//! **Verification modes** (`RTR_VERIFY=off|sampled|full`, default `off`):
//! after the unverified pass, each scheme is served again through
//! [`rtr_engine::Engine::serve_verified`] — every (or every stride-th)
//! query's measured cost checked against the exact roundtrip metric via
//! destination-batched row lookups on a **dedicated** verification oracle
//! (`RTR_VERIFY_CACHE` rows, default `2n` so each distinct destination's
//! rows are computed once across workers).  Schemes with a proven ceiling
//! (`exstretch`, `polystretch`) hard-fail the run on any violating query;
//! `RTR_VERIFY_MAX_SLOWDOWN` (e.g. `2.0`) additionally fails the run if the
//! verified serving wall exceeds that multiple of the unverified wall — the
//! CI guard that full-stream verification stays affordable.
//!
//! Environment: `RTR_N` (default 10 000 — CI smoke and local large-n runs
//! share this binary by overriding it), `RTR_QUERIES` per workload (default
//! 200 000), `RTR_WORKERS` (default: available parallelism), `RTR_CACHE`
//! lazy-oracle rows (default `n/50`), `RTR_SAMPLES` stretch samples per run
//! (default 2 000), `RTR_SEED` (default 42), `RTR_BENCH_JSON` artifact path
//! (default `BENCH_serve.json`), `RTR_MAX_BUILD_ROW_FACTOR` — when set, the
//! run **fails** if the suite build computed more than `factor · n` oracle
//! rows (the CI guard for the shared-sweep row budget) — plus the
//! `RTR_VERIFY*` knobs above.

use rtr_bench::banner;
use rtr_bench::baseline::{SchemeBaseline, ServeBaseline};
use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseSchemeSuite, SparseSuiteParams};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, StretchBound, VerifyConfig, VerifyMode, Workload,
};
use rtr_graph::generators::ring_with_chords;
use rtr_graph::NodeId;
use rtr_metric::LazyDijkstraOracle;
use rtr_sim::RoundtripRouting;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Sums every node's [`rtr_sim::TableStats`] and prints the scheme's resident
/// footprint against the `n²` baseline — the 64-bit distance words a dense
/// all-pairs structure (the distance matrix, or the retired handshake side
/// table) would pin.  Returns `(total bytes, worst-node bits)` for the
/// baseline artifact.
fn report_tables<S: RoundtripRouting>(plane: &FrozenPlane<S>) -> (u64, u64) {
    let n = plane.node_count();
    let mut total_entries: u128 = 0;
    let mut total_bits: u128 = 0;
    let mut max_node_bits = 0usize;
    for v in (0..n).map(NodeId::from_index) {
        let stats = plane.scheme().table_stats(v);
        total_entries += stats.entries as u128;
        total_bits += stats.bits as u128;
        max_node_bits = max_node_bits.max(stats.bits);
    }
    let dense_bits = (n as u128) * (n as u128) * 64;
    println!(
        "  tables: {:.2} Mentries, {:.1} MiB total ({:.2}% of n² dense words), worst node {:.1} KiB",
        total_entries as f64 / 1e6,
        total_bits as f64 / (8.0 * 1024.0 * 1024.0),
        100.0 * total_bits as f64 / dense_bits as f64,
        max_node_bits as f64 / (8.0 * 1024.0),
    );
    ((total_bits / 8) as u64, max_node_bits as u64)
}

/// Serves every workload unverified, returning the scheme's baseline row
/// plus the accumulated serving wall — the engine's own serving clock plus
/// the sampled-stretch post-processing (the two costs full verification
/// subsumes), deliberately excluding table-stats sweeps and printing so the
/// verify-slowdown gate compares like with like.
fn serve_all<S>(
    plane: &FrozenPlane<S>,
    engine: &Engine,
    m: &LazyDijkstraOracle<'_>,
    queries: usize,
    seed: u64,
) -> (SchemeBaseline, Duration)
where
    S: RoundtripRouting + Send + Sync,
{
    println!(
        "\n{:<14} {:>10} {:>9} {:>14} {:>22} {:>7}",
        plane.scheme_name(),
        "queries/s",
        "avg-hops",
        "hops p50/95/99",
        "stretch p50/p95/p99",
        "max-str"
    );
    let mut worst_stretch: f64 = 0.0;
    let mut min_qps = f64::INFINITY;
    let mut serving_wall = Duration::ZERO;
    for workload in Workload::ALL {
        let requests = workload.generate(plane.node_count(), queries, seed);
        let summary = engine
            .serve(plane, &requests)
            .unwrap_or_else(|e| panic!("{} under {}: {e}", plane.scheme_name(), workload.name()));
        assert_eq!(summary.queries, queries);
        let (h50, h95, h99) = summary.hop_latency();
        let stretch_started = Instant::now();
        let stretch = summary.stretch_summary(m).expect("strided sample is never empty");
        serving_wall += summary.elapsed + stretch_started.elapsed();
        worst_stretch = worst_stretch.max(stretch.max);
        min_qps = min_qps.min(summary.queries_per_sec());
        println!(
            "  {:<12} {:>10.0} {:>9.2} {:>14} {:>22} {:>7.3}",
            workload.name(),
            summary.queries_per_sec(),
            summary.avg_hops(),
            format!("{h50}/{h95}/{h99}"),
            format!("{:.3}/{:.3}/{:.3}", stretch.p50, stretch.p95, stretch.p99),
            stretch.max,
        );
    }
    let (table_bytes, worst_node_bits) = report_tables(plane);
    let stats = m.stats();
    println!(
        "  oracle after serving: peak resident rows {} ({:.2}% of n)",
        stats.peak_resident_rows,
        100.0 * stats.peak_resident_rows as f64 / plane.node_count() as f64
    );
    let baseline = SchemeBaseline {
        scheme: plane.scheme_name().to_string(),
        table_bytes,
        worst_node_bits,
        worst_sampled_stretch: worst_stretch,
        min_queries_per_sec: min_qps,
        verified_queries: 0,
        verify_violations: 0,
        worst_verified_stretch: 0.0,
    };
    (baseline, serving_wall)
}

/// Serves every workload again through the verification plane, updating
/// `base` with the scheme's verify-mode numbers and returning the
/// accumulated verified serving wall (the engine's serving clock, which
/// includes the in-flight bucket flushes; exact stretch needs no
/// post-processing).  Hard-panics (non-zero exit) if a query exceeds a
/// configured proven bound — that is the point of oracle-backed serving.
fn verify_all<S>(
    plane: &FrozenPlane<S>,
    engine: &Engine,
    verify_oracle: &LazyDijkstraOracle<'_>,
    config: &VerifyConfig,
    queries: usize,
    seed: u64,
    base: &mut SchemeBaseline,
) -> Duration
where
    S: RoundtripRouting + Send + Sync,
{
    println!(
        "\n{:<14} {:>10} {:>9} {:>7} {:>22} {:>7} {:>10}",
        format!("{} ✓", plane.scheme_name()),
        "queries/s",
        "checked",
        "viols",
        "verified p50/p95/p99",
        "max-str",
        "row-fetch"
    );
    let mut serving_wall = Duration::ZERO;
    for workload in Workload::ALL {
        let requests = workload.generate(plane.node_count(), queries, seed);
        let outcome =
            engine.serve_verified(plane, &requests, verify_oracle, config).unwrap_or_else(|e| {
                panic!("{} under {} failed verification: {e}", plane.scheme_name(), workload.name())
            });
        serving_wall += outcome.summary.elapsed;
        let report = &outcome.report;
        println!(
            "  {:<12} {:>10.0} {:>9} {:>7} {:>22} {:>7.3} {:>10}",
            workload.name(),
            outcome.summary.queries_per_sec(),
            report.checked,
            report.violations.len(),
            format!(
                "{:.3}/{:.3}/{:.3}",
                report.histogram.percentile(0.50),
                report.histogram.percentile(0.95),
                report.histogram.percentile(0.99)
            ),
            report.max_stretch(),
            outcome.cost.row_fetches,
        );
        base.verified_queries += report.checked as u64;
        base.verify_violations += report.violations.len() as u64;
        base.worst_verified_stretch = base.worst_verified_stretch.max(report.max_stretch());
    }
    serving_wall
}

fn main() {
    let n = env_usize("RTR_N", 10_000);
    let queries = env_usize("RTR_QUERIES", 200_000);
    let workers = env_usize(
        "RTR_WORKERS",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );
    let cache_rows = env_usize("RTR_CACHE", (n / 50).max(16));
    let samples = env_usize("RTR_SAMPLES", 2_000).max(1);
    let seed = env_usize("RTR_SEED", 42) as u64;
    let verify_mode = match std::env::var("RTR_VERIFY").as_deref() {
        Err(_) | Ok("off") => VerifyMode::Off,
        Ok("full") => VerifyMode::Full,
        Ok("sampled") => VerifyMode::Sampled { stride: (queries / samples).max(1) },
        Ok(other) => panic!("RTR_VERIFY must be off|sampled|full, got {other}"),
    };
    let verify_cache = env_usize("RTR_VERIFY_CACHE", (2 * n).max(64));

    banner(&format!(
        "E13: serving throughput, n = {n}, {queries} queries/workload, {workers} workers"
    ));
    let t0 = Instant::now();
    let g = Arc::new(ring_with_chords(n, 3 * n, seed).expect("generator failed"));
    println!("graph: n = {}, m = {} ({:.1?})", g.node_count(), g.edge_count(), t0.elapsed());

    let oracle = LazyDijkstraOracle::new(&g, cache_rows);
    let names = NamingAssignment::random(n, seed ^ 0x517e);

    let t1 = Instant::now();
    let suite = SparseSchemeSuite::build(&g, &oracle, &names, SparseSuiteParams::default());
    let build_stats = oracle.stats();
    println!(
        "sparse suite built in {:.1?} (rows computed {} = {:.2}·n, peak resident {} of {} = {:.1}% of n²)",
        t1.elapsed(),
        build_stats.rows_computed,
        build_stats.rows_computed as f64 / n as f64,
        build_stats.peak_resident_rows,
        n,
        100.0 * build_stats.peak_resident_rows as f64 / n as f64
    );
    if let Ok(factor) = std::env::var("RTR_MAX_BUILD_ROW_FACTOR") {
        let factor: f64 = factor.parse().expect("RTR_MAX_BUILD_ROW_FACTOR must be a number");
        let limit = (factor * n as f64).ceil() as usize;
        if build_stats.rows_computed > limit {
            eprintln!(
                "FAIL: suite build computed {} oracle rows, budget is {factor}·n = {limit} — \
                 the shared sweep is no longer shared",
                build_stats.rows_computed
            );
            std::process::exit(1);
        }
        println!("build row budget ok: {} <= {factor}·n = {limit}", build_stats.rows_computed);
    }

    // The proven stretch ceilings the verification plane enforces: the §3
    // scheme's (2^k − 1)·β over the tree-cover substrate and the §4 paper
    // bound.  The sparse §2 scheme rides the landmark substrate, whose
    // stretch is measured-not-proven (DESIGN.md substitution), so it
    // verifies without a hard ceiling.
    let ex_bound = suite
        .exstretch
        .paper_stretch_bound()
        .expect("tree-cover substrate carries a proven stretch");
    let poly_bound = suite.poly.paper_stretch_bound();

    let (stretch6, exstretch, poly) = suite.into_parts();
    let frozen_names = Arc::new(names.to_names());
    let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
    let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
    let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

    let mut config = EngineConfig::with_workers(workers);
    config.stretch_sample_stride = (queries / samples).max(1);
    let engine = Engine::new(config);

    banner("serving");
    let mut unverified_wall = Duration::ZERO;
    let mut schemes = Vec::with_capacity(3);
    for (baseline, wall) in [
        serve_all(&plane6, &engine, &oracle, queries, seed ^ 0x6001),
        serve_all(&planex, &engine, &oracle, queries, seed ^ 0x6002),
        serve_all(&planep, &engine, &oracle, queries, seed ^ 0x6003),
    ] {
        schemes.push(baseline);
        unverified_wall += wall;
    }

    if verify_mode != VerifyMode::Off {
        banner(&format!("verification ({} mode)", verify_mode.name()));
        let verify_oracle = LazyDijkstraOracle::new(&g, verify_cache);
        let config = |bound: Option<StretchBound>| VerifyConfig {
            mode: verify_mode,
            bound,
            ..VerifyConfig::default()
        };
        let mut verified_wall = Duration::ZERO;
        verified_wall += verify_all(
            &plane6,
            &engine,
            &verify_oracle,
            &config(None),
            queries,
            seed ^ 0x6001,
            &mut schemes[0],
        );
        verified_wall += verify_all(
            &planex,
            &engine,
            &verify_oracle,
            &config(Some(StretchBound::at_most(ex_bound))),
            queries,
            seed ^ 0x6002,
            &mut schemes[1],
        );
        verified_wall += verify_all(
            &planep,
            &engine,
            &verify_oracle,
            &config(Some(StretchBound::at_most(poly_bound))),
            queries,
            seed ^ 0x6003,
            &mut schemes[2],
        );
        let vstats = verify_oracle.stats();
        println!(
            "\nverification oracle: rows computed {}, cache hits {}, peak resident {} \
             ({:.1}% of n)",
            vstats.rows_computed,
            vstats.cache_hits,
            vstats.peak_resident_rows,
            100.0 * vstats.peak_resident_rows as f64 / n as f64
        );
        println!(
            "verified serving wall {:.1?} vs unverified {:.1?} ({:.2}×)",
            verified_wall,
            unverified_wall,
            verified_wall.as_secs_f64() / unverified_wall.as_secs_f64().max(1e-9)
        );
        if let Ok(factor) = std::env::var("RTR_VERIFY_MAX_SLOWDOWN") {
            let factor: f64 = factor.parse().expect("RTR_VERIFY_MAX_SLOWDOWN must be a number");
            let ratio = verified_wall.as_secs_f64() / unverified_wall.as_secs_f64().max(1e-9);
            if ratio > factor {
                eprintln!(
                    "FAIL: verified serving took {ratio:.2}× the unverified wall, budget {factor}×"
                );
                std::process::exit(1);
            }
            println!("verify slowdown budget ok: {ratio:.2}× <= {factor}×");
        }
    }

    let stats = oracle.stats();
    banner("oracle");
    println!(
        "rows computed {}, cache hits {}, peak resident rows {} ({:.1}% of n²)",
        stats.rows_computed,
        stats.cache_hits,
        stats.peak_resident_rows,
        100.0 * stats.peak_resident_rows as f64 / n as f64
    );
    println!("total wall-clock: {:.1?}", t0.elapsed());

    let artifact = ServeBaseline {
        n,
        queries_per_workload: queries,
        seed,
        stretch_samples: samples,
        cache_rows,
        verify_mode: verify_mode.name().to_string(),
        build_rows_computed: build_stats.rows_computed,
        peak_resident_rows: stats.peak_resident_rows,
        schemes,
    };
    let json_path =
        std::env::var("RTR_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&json_path, artifact.to_json())
        .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    println!("baseline artifact written to {json_path}");
}
