//! Experiment E5 — §4: the polynomial-tradeoff scheme. Sweeps `k`, reporting
//! measured stretch against the `8k² + 4k − 4` bound and table sizes against
//! `k²·n^{2/k}·log RTDiam`.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{PolyParams, PolynomialStretch};
use rtr_graph::generators::Family;

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256], 1, 2000);

    banner("E5: PolynomialStretch (bound 8k^2 + 4k - 4)");
    println!(
        "{:<8} {:>6} {:>4} {:>9} {:>9} {:>9} {:>8} {:>12} {:>10}",
        "family", "n", "k", "avg-str", "p95-str", "max-str", "bound", "max-entries", "levels"
    );
    for family in [Family::Gnp, Family::Grid] {
        for &n in &cfg.sizes {
            let inst = instance(family, n, 21);
            let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
            for k in [2u32, 3, 4] {
                let scheme = PolynomialStretch::build(g, m, names, PolyParams::with_k(k));
                let eval = SchemeEvaluation::measure(
                    g,
                    m,
                    names,
                    &scheme,
                    cfg.selection(g.node_count(), k as u64),
                )
                .unwrap();
                let bound = scheme.paper_stretch_bound();
                assert!(eval.max_stretch <= bound as f64 + 1e-9, "paper bound violated");
                println!(
                    "{:<8} {:>6} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>12} {:>10}",
                    inst.family,
                    g.node_count(),
                    k,
                    eval.avg_stretch,
                    eval.p95_stretch,
                    eval.max_stretch,
                    bound,
                    eval.max_table_entries,
                    scheme.level_count()
                );
            }
        }
    }
}
