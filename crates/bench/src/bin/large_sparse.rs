//! E12 — large-sparse scaling: build `StretchSix` at `n = 10 000` through the
//! on-demand [`LazyDijkstraOracle`] and record the peak-memory proxy.
//!
//! The dense `DistanceMatrix` at `n = 10 000` is `n² = 10⁸` distances
//! (~800 MB) before any scheme table exists — the wall that capped every seed
//! experiment at a few thousand nodes. This binary demonstrates the
//! `DistanceOracle` refactor's headline: the whole pipeline (truncated
//! `Init_v` orders, Lemma 1 block distribution, landmark substrate, the §2
//! scheme) runs against a bounded LRU row cache, and the run reports
//!
//! * `rows computed` — Dijkstra invocations over the oracle's lifetime,
//! * `peak resident rows` — the most rows ever held at once (each row is `n`
//!   distances), i.e. the peak-memory proxy, asserted `< 30%` of the `n`
//!   rows the dense matrix would materialise,
//! * construction wall-clock per phase and sampled roundtrip stretch, so the
//!   scaling numbers land in EXPERIMENTS.md with correctness evidence
//!   attached.
//!
//! Environment: `RTR_N` (default 10 000), `RTR_CACHE` (default `n/50`),
//! `RTR_PAIRS` (default 200 sampled roundtrips).

use rtr_bench::banner;
use rtr_core::naming::NamingAssignment;
use rtr_core::{Stretch6Params, StretchSix};
use rtr_graph::generators::ring_with_chords;
use rtr_graph::NodeId;
use rtr_metric::LazyDijkstraOracle;
use rtr_namedep::{LandmarkBallScheme, LandmarkParams};
use rtr_sim::{RoundtripRouting, Simulator};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env_usize("RTR_N", 10_000);
    let cache_rows = env_usize("RTR_CACHE", (n / 50).max(16));
    let sample_pairs = env_usize("RTR_PAIRS", 200);

    banner(&format!("E12: large sparse build, n = {n}, row cache = {cache_rows}"));
    let t0 = Instant::now();
    let g = ring_with_chords(n, 3 * n, 42).expect("generator failed");
    println!("graph: n = {}, m = {} ({:.1?})", g.node_count(), g.edge_count(), t0.elapsed());

    let oracle = LazyDijkstraOracle::new(&g, cache_rows);
    let names = NamingAssignment::random(n, 7);

    let t1 = Instant::now();
    let substrate = LandmarkBallScheme::build(&g, &oracle, LandmarkParams::default());
    println!(
        "landmark substrate: {} landmarks, max ball {} ({:.1?})",
        substrate.landmarks().len(),
        substrate.max_ball_size(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let scheme = StretchSix::build(&g, &oracle, &names, substrate, Stretch6Params::default());
    println!("stretch-6 tables ({:.1?})", t2.elapsed());

    let stats = oracle.stats();
    let dense_rows = n; // the dense matrix materialises one n-entry row per node
    let peak_fraction = stats.peak_resident_rows as f64 / dense_rows as f64;
    banner("peak-memory proxy");
    println!("rows computed (Dijkstras):   {}", stats.rows_computed);
    println!("row-cache hits:              {}", stats.cache_hits);
    println!(
        "peak resident rows:          {} of the {} rows a dense matrix holds ({:.1}% of n²)",
        stats.peak_resident_rows,
        dense_rows,
        100.0 * peak_fraction
    );
    // The 30% budget is the experiment's acceptance bar; it only makes sense
    // when the configured cache is itself below the bar (at toy n the default
    // 16-row floor already exceeds 30% of n).
    if cache_rows * 10 < 3 * dense_rows {
        assert!(
            peak_fraction < 0.30,
            "peak resident rows {} breach the 30% budget of n = {n}",
            stats.peak_resident_rows
        );
    } else {
        println!("(budget assertion skipped: cache {cache_rows} ≥ 30% of n = {n})");
    }

    banner("sampled correctness + stretch");
    let sim = Simulator::new(&g);
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut step = 0x9e37u64;
    let mut checked = 0usize;
    while checked < sample_pairs {
        step = step.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        let s = NodeId((step >> 16) as u32 % n as u32);
        let t = NodeId((step >> 40) as u32 % n as u32);
        if s == t {
            continue;
        }
        let report = sim
            .roundtrip(&scheme, s, t, names.name_of(t))
            .unwrap_or_else(|e| panic!("roundtrip ({s},{t}) failed: {e}"));
        let stretch = report.stretch(&oracle);
        worst = worst.max(stretch);
        sum += stretch;
        checked += 1;
    }
    println!(
        "{checked} sampled roundtrips: avg stretch {:.3}, worst {:.3}",
        sum / checked as f64,
        worst
    );

    let max_entries = g.nodes().map(|v| scheme.table_stats(v).entries).max().unwrap_or(0);
    println!("largest table: {max_entries} entries (n = {n}; compact ⇔ entries ≪ n)");
    println!("total wall-clock: {:.1?}", t0.elapsed());
}
