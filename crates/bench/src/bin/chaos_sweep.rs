//! E14 — the chaos sweep: seeded fault injection, verified degraded
//! serving, and incremental substrate repair, gated as the fourth CI
//! baseline (`BENCH_chaos.json`).
//!
//! The run builds the sparse §2+§3 substrate once as a
//! [`SparseRepairKit`] over a `ring_with_chords` graph, then for each
//! **failure fraction** injects a seeded [`FaultPlan`] and serves three
//! fully-verified epochs of the §3 plane through the tolerant engine
//! ([`Engine::serve_epoch_sharded`]):
//!
//! 1. **pre-fault** — the healthy substrate; must be perfectly clean under
//!    the §3 proven ceiling ([`ExStretch::paper_stretch_bound`]);
//! 2. **degraded** — the *old* scheme serving over the mutated graph.
//!    Routes crossing a removed chord fail ([`FailedPair`]s), surviving
//!    routes may exceed the ceiling; both are the measurement, recorded per
//!    fraction as the success rate and worst verified stretch;
//! 3. **post-repair** — schemes minted from
//!    [`SparseRepairKit::repair`] on the rebased oracle; must be perfectly
//!    clean again, and [`chaos_report`] records which degraded-window
//!    offenders the repair restored.
//!
//! **Topology.** The graph is `ring_with_chords_weighted`: ring weights in
//! the default range, chord weights widened to `1..=RTR_CHAOS_CHORD_WMAX`.
//! Chords heavier than the typical graph distance are *metrically
//! redundant* — never on any shortest path — which is what lets a network
//! absorb a real 5–10% edge-failure fraction: redundant capacity fails
//! silently, while the handful of tight chords lost is what degrades
//! service.
//!
//! **Fault selection.** Candidates are the chord edges only — the ring is
//! never faulted, so the mutated graph stays strongly connected by
//! construction.  Each candidate's solo dirty-row set under conservative row
//! invalidation ([`RowInvalidation::analyze`]) is precomputed once as a
//! bitset (identical for removal and inflation — tightness is a property of
//! the pre-fault edge).  Per fraction a seeded shuffle walks the candidates,
//! accepting each fault whose *incremental* dirty rows (vs. the union of
//! rows already dirtied) still fit the dirty-row budget: redundant chords
//! cost zero rows and always fit, tight chords are taken until the budget
//! binds.  Single-fault invalidations union exactly, so the projection is
//! the true multi-fault dirty-row count.  Every third accepted fault becomes
//! a ×4 weight inflation (the rest are removals), and requested vs. applied
//! counts are reported honestly in the artifact — nothing is silently
//! capped.
//!
//! **Repair economy.** Per fraction the run records the rows the
//! incremental repair recomputed on the rebased [`CachedSubsetOracle`]
//! against the rows a from-scratch [`SparseRepairKit::rebuild_reference`]
//! pays on a fresh oracle, and **hard-fails** (exit 1) if repair costs more
//! than [`REPAIR_ROW_BUDGET`] (25%) of the rebuild — or if the post-repair
//! epoch is not clean.  The same two invariants are re-checked by
//! `check_serve_baseline` on the artifact, so CI enforces them even against
//! a stale baseline.
//!
//! Environment: `RTR_CHAOS_N` (default 600), `RTR_CHAOS_QUERIES` per epoch
//! (default 4 000), `RTR_CHAOS_SEED` (default 42), `RTR_CHAOS_WORKERS`
//! (default 4), `RTR_CHAOS_SHARDS` (default 4), `RTR_CHAOS_SHARD_POLICY`
//! (`hash` | `range`), `RTR_CHAOS_CHORDS` (default `3n`),
//! `RTR_CHAOS_CHORD_WMAX` (largest chord weight, default 256 — the
//! redundancy dial: larger means more chords are metrically silent),
//! `RTR_CHAOS_FRACTIONS` (comma-separated, default `0.02,0.05,0.10`),
//! `RTR_CHAOS_DIRTY_BUDGET` (fraction of the `2n` metric rows the selection
//! may dirty, default `0.22` — chosen under the 25% repair-row gate with
//! headroom), `RTR_CHAOS_JSON` (artifact path, default `BENCH_chaos.json`)
//! and `RTR_CHAOS_TELEMETRY_JSON` (registry export, default
//! `BENCH_chaos_telemetry.json`).  The full inventory and the
//! baseline-regeneration recipe live in `docs/OPERATIONS.md`.
//!
//! [`ExStretch::paper_stretch_bound`]: rtr_core::ExStretch::paper_stretch_bound
//! [`FailedPair`]: rtr_engine::FailedPair
//! [`Engine::serve_epoch_sharded`]: rtr_engine::Engine::serve_epoch_sharded
//! [`chaos_report`]: rtr_engine::chaos_report
//! [`SparseRepairKit`]: rtr_core::SparseRepairKit
//! [`SparseRepairKit::repair`]: rtr_core::SparseRepairKit::repair
//! [`SparseRepairKit::rebuild_reference`]: rtr_core::SparseRepairKit::rebuild_reference
//! [`RowInvalidation`]: rtr_metric::RowInvalidation
//! [`CachedSubsetOracle`]: rtr_metric::CachedSubsetOracle
//! [`FaultPlan`]: rtr_graph::FaultPlan
//! [`REPAIR_ROW_BUDGET`]: rtr_bench::baseline::REPAIR_ROW_BUDGET

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtr_bench::banner;
use rtr_bench::baseline::{ChaosBaseline, ChaosFraction, REPAIR_ROW_BUDGET};
use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseRepairKit, SparseSuiteParams};
use rtr_engine::Workload;
use rtr_engine::{
    chaos_report, Engine, EngineConfig, EpochServe, FrozenPlane, ShardMap, ShardedPlane,
    StretchBound, VerifyConfig,
};
use rtr_graph::generators::{ring_with_chords_weighted, WeightRange};
use rtr_graph::{EdgeFault, FaultPlan, GraphDelta, NodeId};
use rtr_metric::{CachedSubsetOracle, RowInvalidation};
use std::sync::Arc;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// The seeded, impact-budgeted fault selection for one fraction.
struct Selection {
    plan: FaultPlan,
    requested: usize,
    removals: usize,
    inflations: usize,
    dirty_rows_projected: usize,
}

/// Bit-packed dirty-row set of a single candidate fault (forward rows at
/// bits `0..n`, reverse rows at `n..2n`), shared between removal and
/// inflation: tightness is a property of the pre-fault edge, so `new_weight`
/// does not change the set.
fn solo_impact(
    m0: &CachedSubsetOracle<'_>,
    from: NodeId,
    to: NodeId,
    weight: u64,
    n: usize,
    words: usize,
) -> Vec<u64> {
    let inc = RowInvalidation::analyze(m0, &[EdgeFault { from, to, weight, new_weight: None }]);
    let mut bits = vec![0u64; words];
    for i in 0..n {
        let u = NodeId(i as u32);
        if inc.is_fwd_dirty(u) {
            bits[i / 64] |= 1 << (i % 64);
        }
        if inc.is_rev_dirty(u) {
            let j = n + i;
            bits[j / 64] |= 1 << (j % 64);
        }
    }
    bits
}

/// Walks the seeded-shuffled candidates, accepting each fault whose
/// incremental dirty rows (vs. the union of rows already dirtied) still fit
/// `row_budget`, until `target` faults are selected or the pool is
/// exhausted.  Single-fault invalidations union exactly (each fault is
/// analyzed against the same pre-fault metric), so the projection is the
/// true multi-fault dirty-row count.
fn select_faults(
    candidates: &[(NodeId, NodeId)],
    impacts: &[Vec<u64>],
    target: usize,
    row_budget: usize,
    inflation_factor: u32,
    seed: u64,
) -> Selection {
    let words = impacts.first().map_or(0, Vec::len);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut union = vec![0u64; words];
    let mut dirty_rows = 0usize;
    let mut deltas = Vec::with_capacity(target);
    let (mut removals, mut inflations) = (0usize, 0usize);
    for ci in order {
        if deltas.len() == target {
            break;
        }
        let cost: usize =
            impacts[ci].iter().zip(&union).map(|(w, u)| (w & !u).count_ones() as usize).sum();
        if dirty_rows + cost > row_budget {
            continue;
        }
        dirty_rows += cost;
        for (u, w) in union.iter_mut().zip(&impacts[ci]) {
            *u |= w;
        }
        let (from, to) = candidates[ci];
        if deltas.len() % 3 == 2 {
            inflations += 1;
            deltas.push(GraphDelta::InflateWeight { from, to, factor: inflation_factor });
        } else {
            removals += 1;
            deltas.push(GraphDelta::RemoveEdge { from, to });
        }
    }
    Selection {
        plan: FaultPlan::new(deltas, seed),
        requested: target,
        removals,
        inflations,
        dirty_rows_projected: dirty_rows,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let n = env_usize("RTR_CHAOS_N", 600);
    let queries = env_usize("RTR_CHAOS_QUERIES", 4_000);
    let seed = env_usize("RTR_CHAOS_SEED", 42) as u64;
    let workers = env_usize("RTR_CHAOS_WORKERS", 4);
    let shards = env_usize("RTR_CHAOS_SHARDS", 4).max(1);
    let chords = env_usize("RTR_CHAOS_CHORDS", 3 * n);
    let chord_wmax = env_usize("RTR_CHAOS_CHORD_WMAX", 256) as u64;
    let dirty_budget_fraction = env_f64("RTR_CHAOS_DIRTY_BUDGET", 0.22);
    let dirty_row_budget = (dirty_budget_fraction * 2.0 * n as f64).floor() as usize;
    let fractions: Vec<f64> = std::env::var("RTR_CHAOS_FRACTIONS")
        .unwrap_or_else(|_| "0.02,0.05,0.10".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("RTR_CHAOS_FRACTIONS: comma-separated fractions"))
        .collect();
    let shard_map = match std::env::var("RTR_CHAOS_SHARD_POLICY").as_deref() {
        Err(_) | Ok("hash") => ShardMap::hashed(n, shards, seed),
        Ok("range") => ShardMap::range(n, shards),
        Ok(other) => panic!("RTR_CHAOS_SHARD_POLICY must be hash|range, got {other}"),
    };
    let shard_policy = shard_map.policy().name().to_string();

    banner(&format!(
        "E14: chaos sweep, n = {n}, {queries} queries/epoch, {workers} workers, {shards} shards \
         ({shard_policy}), dirty-row budget {dirty_row_budget} of {}",
        2 * n
    ));
    let t0 = Instant::now();
    let g0 = Arc::new(
        ring_with_chords_weighted(
            n,
            chords,
            seed,
            WeightRange::default(),
            WeightRange::new(1, chord_wmax),
        )
        .expect("generator failed"),
    );
    let edge_count = g0.edge_count();
    let candidates: Vec<(NodeId, NodeId)> = g0
        .nodes()
        .flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to)))
        .filter(|&(u, v)| (u.index() + 1) % n != v.index())
        .collect();
    println!(
        "graph: n = {n}, m = {edge_count} ({} chord fault candidates, ring excluded, \
         chord weights 1..={chord_wmax})",
        candidates.len()
    );

    // The pre-fault substrate, built once and shared by every fraction: the
    // subset oracle materialises all 2n rows during the kit build, so the
    // rebased per-fraction oracles carry every clean row for free.
    let m0 = CachedSubsetOracle::new(&g0);
    let kit = SparseRepairKit::build(&g0, &m0, SparseSuiteParams::default());
    let names = NamingAssignment::random(n, seed ^ 0x7e57);
    let (_s6, sx) = kit.schemes(&g0, &m0, &names);
    let bound = sx.paper_stretch_bound().expect("tree-cover substrate carries a proven stretch");
    let frozen_names = Arc::new(names.to_names());
    let pre_plane = FrozenPlane::freeze(Arc::clone(&g0), sx, Arc::clone(&frozen_names));
    println!(
        "substrate built in {:.1?} ({} rows), §3 proven ceiling {bound}",
        t0.elapsed(),
        m0.stats().rows_computed
    );

    // Solo dirty-row bitsets, one per candidate, shared by every fraction's
    // greedy selection (every metric row is already resident after the kit
    // build, so each analysis is four cached row reads).
    let words = (2 * n).div_ceil(64);
    let t_impact = Instant::now();
    let impacts: Vec<Vec<u64>> = candidates
        .iter()
        .map(|&(from, to)| {
            let w = g0.edge_weight(from, to).expect("candidates come from the live edge set");
            solo_impact(&m0, from, to, w, n, words)
        })
        .collect();
    let zero_impact = impacts.iter().filter(|b| b.iter().all(|&w| w == 0)).count();
    println!(
        "impact map: {} candidates analyzed in {:.1?} ({zero_impact} dirty no rows at all)",
        candidates.len(),
        t_impact.elapsed()
    );

    let engine = Engine::new(EngineConfig::with_workers(workers));
    let config = VerifyConfig::full().with_bound(StretchBound::at_most(bound));
    let mut records: Vec<ChaosFraction> = Vec::with_capacity(fractions.len());

    for (fi, &fraction) in fractions.iter().enumerate() {
        banner(&format!("failure fraction {fraction:.3}"));
        let target = (fraction * edge_count as f64).round() as usize;
        let selection = select_faults(
            &candidates,
            &impacts,
            target,
            dirty_row_budget,
            4,
            seed ^ (0xC0A5 + fi as u64 * 0x9E37_79B9),
        );
        let applied_count = selection.plan.len();
        println!(
            "faults: {applied_count} applied of {} requested ({} removals, {} inflations, \
             {} projected dirty rows ≤ budget {dirty_row_budget}){}",
            selection.requested,
            selection.removals,
            selection.inflations,
            selection.dirty_rows_projected,
            if applied_count < selection.requested {
                " — impact budget capped the selection"
            } else {
                ""
            }
        );

        let mut mutated = (*g0).clone();
        let application = selection.plan.apply(&mut mutated);
        assert_eq!(application.skipped, 0, "chord candidates are distinct live edges");
        assert!(
            mutated.is_strongly_connected(),
            "chord-only faults must keep the ring-connected graph strongly connected"
        );
        let g1 = Arc::new(mutated);

        let invalidation = RowInvalidation::for_application(&m0, &application);
        let m1 = CachedSubsetOracle::rebased(&m0, &g1, &invalidation);
        let (kit1, rstats) = kit.repair(&g1, &m1, &invalidation, &application);

        // The repair economy: what a from-scratch rebuild of the same
        // substrate pays on a fresh oracle over the mutated graph.
        let m_fresh = CachedSubsetOracle::new(&g1);
        let _reference = kit.rebuild_reference(&g1, &m_fresh);
        let full_rebuild_rows = m_fresh.stats().rows_computed as u64;
        println!(
            "repair: {} dirty nodes, {} rows recomputed vs {} full-rebuild rows \
             ({:.1}%), {} clusters re-anchored, {} balls repaired, {:.2} ms",
            rstats.dirty_nodes,
            rstats.rows_recomputed,
            full_rebuild_rows,
            100.0 * rstats.rows_recomputed as f64 / full_rebuild_rows as f64,
            rstats.clusters_reanchored,
            rstats.balls_repaired,
            rstats.epoch_ns as f64 / 1e6
        );
        if rstats.rows_recomputed as f64 > REPAIR_ROW_BUDGET * full_rebuild_rows as f64 {
            fail(&format!(
                "fraction {fraction:.3}: repair recomputed {} rows, over {:.0}% of the \
                 {full_rebuild_rows}-row full rebuild",
                rstats.rows_recomputed,
                100.0 * REPAIR_ROW_BUDGET
            ));
        }

        let (_s6r, sxr) = kit1.schemes(&g1, &m1, &names);
        let degraded_plane = pre_plane.clone().with_graph(Arc::clone(&g1));
        let post_plane = FrozenPlane::freeze(Arc::clone(&g1), sxr, Arc::clone(&frozen_names));

        let epoch_seed = |salt: u64| seed.wrapping_mul(salt).wrapping_add(fi as u64);
        let serve = |plane: &FrozenPlane<_>, oracle: &CachedSubsetOracle<'_>, salt| -> EpochServe {
            let requests = Workload::Mix.generate(n, queries, epoch_seed(salt));
            engine.serve_epoch_sharded(
                &ShardedPlane::new(plane.clone(), shard_map),
                &requests,
                oracle,
                &config,
            )
        };
        let pre = serve(&pre_plane, &m0, 31);
        let degraded = serve(&degraded_plane, &m1, 37);
        let post = serve(&post_plane, &m1, 41);
        let report = chaos_report(&pre, &degraded, &post);
        let [pre_epoch, degraded_epoch, post_epoch] = &report.epochs[..] else {
            unreachable!("chaos_report always yields three epochs");
        };

        if !pre_epoch.is_clean() {
            fail(&format!(
                "fraction {fraction:.3}: pre-fault epoch violated the proven ceiling \
                 ({} violations, {} failures)",
                pre_epoch.report.violations.len(),
                pre_epoch.failed()
            ));
        }
        let delivered = degraded_epoch.report.queries as u64;
        let failed = degraded_epoch.failed() as u64;
        assert_eq!(delivered + failed, queries as u64, "every request delivers or fails");
        println!(
            "epochs: pre worst {:.3} | degraded {:.1}% delivered, {} violations, worst {:.3} | \
             post worst {:.3}, {} offender pairs restored",
            pre_epoch.report.max_stretch(),
            100.0 * delivered as f64 / queries as f64,
            degraded_epoch.report.violations.len(),
            degraded_epoch.report.max_stretch(),
            post_epoch.report.max_stretch(),
            post_epoch.restored.len()
        );
        if !post_epoch.is_clean() {
            fail(&format!(
                "fraction {fraction:.3}: post-repair epoch is not clean ({} violations, \
                 {} delivery failures) — repair did not restore the proven ceiling",
                post_epoch.report.violations.len(),
                post_epoch.failed()
            ));
        }

        records.push(ChaosFraction {
            fraction,
            faults_requested: selection.requested,
            faults_applied: application.faults.len(),
            removals: selection.removals,
            inflations: selection.inflations,
            dirty_nodes: rstats.dirty_nodes,
            repair_rows: rstats.rows_recomputed,
            full_rebuild_rows,
            clusters_reanchored: rstats.clusters_reanchored,
            balls_repaired: rstats.balls_repaired,
            repair_epoch_ns: rstats.epoch_ns,
            pre_worst_stretch: pre_epoch.report.max_stretch(),
            degraded_delivered: delivered,
            degraded_failed: failed,
            degraded_violations: degraded_epoch.report.violations.len() as u64,
            degraded_worst_stretch: degraded_epoch.report.max_stretch(),
            degraded_success_rate: delivered as f64 / queries as f64,
            restored_pairs: post_epoch.restored.len() as u64,
            post_worst_stretch: post_epoch.report.max_stretch(),
            post_violations: post_epoch.report.violations.len() as u64,
            post_failed: post_epoch.failed() as u64,
        });
    }

    let artifact = ChaosBaseline {
        n,
        queries_per_epoch: queries,
        seed,
        workers,
        shards,
        shard_policy,
        chords,
        edge_count,
        dirty_row_budget,
        bound,
        fractions: records,
    };
    let json_path =
        std::env::var("RTR_CHAOS_JSON").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    std::fs::write(&json_path, artifact.to_json())
        .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    println!("\nchaos baseline artifact written to {json_path}");

    // Cross-check the repair telemetry against the artifact before
    // exporting, exactly as `check_telemetry` will in CI: the counters are
    // incremented by `SparseRepairKit::repair` itself, so disagreement means
    // the observability plane is lying about the repair economy.
    let registry = rtr_telemetry::registry();
    let want_rows: u64 = artifact.fractions.iter().map(|f| f.repair_rows).sum();
    let got_rows = registry.counter_value("repair.rows_recomputed");
    if got_rows != want_rows {
        fail(&format!(
            "telemetry counter repair.rows_recomputed = {got_rows} disagrees with the \
             artifact's summed repair rows = {want_rows}"
        ));
    }
    let want_clusters: u64 = artifact.fractions.iter().map(|f| f.clusters_reanchored as u64).sum();
    let got_clusters = registry.counter_value("repair.clusters_reanchored");
    if got_clusters != want_clusters {
        fail(&format!(
            "telemetry counter repair.clusters_reanchored = {got_clusters} disagrees with the \
             artifact's summed re-anchored clusters = {want_clusters}"
        ));
    }
    println!(
        "telemetry cross-check ok: repair rows {got_rows}, clusters re-anchored {got_clusters}"
    );
    let telemetry_path = std::env::var("RTR_CHAOS_TELEMETRY_JSON")
        .unwrap_or_else(|_| "BENCH_chaos_telemetry.json".to_string());
    std::fs::write(&telemetry_path, registry.to_json())
        .unwrap_or_else(|e| panic!("writing {telemetry_path}: {e}"));
    println!("telemetry artifact written to {telemetry_path}");
    println!("total wall-clock: {:.1?}", t0.elapsed());
}
