//! Experiment E9 — the Lemma 2 / Lemma 5 substrates: measured roundtrip
//! stretch, the rate at which the Lemma 2 inequality
//! `p(u,v) ≤ r(u,v) + d(u,v)` is satisfied, and table sizes, for all three
//! name-dependent substrates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_graph::generators::Family;
use rtr_graph::{DiGraph, NodeId};
use rtr_metric::DistanceMatrix;
use rtr_namedep::{
    ExactOracleScheme, LandmarkBallScheme, LandmarkParams, NameDependentSubstrate, TreeCoverScheme,
};
use rtr_sim::ForwardAction;

/// Drives a substrate leg locally (the same loop `rtr-sim` runs for schemes).
fn leg<S: NameDependentSubstrate>(g: &DiGraph, s: &S, src: NodeId, mut label: S::Label) -> u64 {
    let mut at = src;
    let mut weight = 0;
    for _ in 0..8 * g.node_count() + 16 {
        match s.step(at, &mut label).expect("substrate step failed") {
            ForwardAction::Deliver => return weight,
            ForwardAction::Forward(port) => {
                let e = g.edge_by_port(at, port).expect("port resolves");
                weight += e.weight;
                at = e.to;
            }
        }
    }
    panic!("substrate did not terminate");
}

fn measure<S: NameDependentSubstrate>(
    name: &str,
    g: &DiGraph,
    m: &DistanceMatrix,
    s: &S,
    pairs: &[(NodeId, NodeId)],
) {
    let mut sum = 0.0;
    let mut worst: f64 = 0.0;
    let mut lemma2_ok = 0usize;
    for &(u, v) in pairs {
        let out = leg(g, s, u, s.pair_label(u, v));
        let back = leg(g, s, v, s.pair_label(v, u));
        let stretch = (out + back) as f64 / m.roundtrip(u, v) as f64;
        sum += stretch;
        worst = worst.max(stretch);
        if out <= m.roundtrip(u, v) + m.distance(u, v) {
            lemma2_ok += 1;
        }
    }
    let max_entries = g.nodes().map(|v| s.table_stats(v).entries).max().unwrap();
    let max_bits = g.nodes().map(|v| s.table_stats(v).bits).max().unwrap();
    println!(
        "{:<14} {:>6} {:>10.3} {:>10.3} {:>12.1}% {:>12} {:>12} {:>10}",
        name,
        g.node_count(),
        sum / pairs.len() as f64,
        worst,
        100.0 * lemma2_ok as f64 / pairs.len() as f64,
        max_entries,
        max_bits,
        s.max_label_bits()
    );
}

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256], 1, 3000);

    banner("E9: name-dependent substrates (roundtrip stretch, Lemma 2 rate, tables)");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>13} {:>12} {:>12} {:>10}",
        "substrate",
        "n",
        "avg-str",
        "max-str",
        "lemma2-rate",
        "max-entries",
        "max-bits",
        "lbl-bits"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 77);
        let (g, m) = (&inst.graph, &inst.metric);

        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        pairs.shuffle(&mut StdRng::seed_from_u64(4));
        pairs.truncate(cfg.pairs);

        let oracle = ExactOracleScheme::build(g);
        measure("exact-oracle", g, m, &oracle, &pairs);

        let landmark = LandmarkBallScheme::build(g, m, LandmarkParams::default());
        measure("landmark-ball", g, m, &landmark, &pairs);

        let cover = TreeCoverScheme::build(g, m, 2);
        measure("tree-cover k2", g, m, &cover, &pairs);
        println!();
    }
}
