//! Experiment E8 — Lemma 14: compact fixed-port tree routing. Reports label
//! sizes against O(log² n), light-edge depth against log₂ n, and verifies
//! that every root-to-node route is optimal on the tree.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_graph::generators::Family;
use rtr_graph::NodeId;
use rtr_trees::{OutTree, TreeRouter, TreeStep};

fn main() {
    let cfg = ExperimentConfig::from_env(&[128, 256, 512, 1024], 2, 0);

    banner("E8: tree routing (Lemma 14)");
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "family", "n", "seed", "max-lbl-bits", "log^2(n)", "light-depth", "log2(n)", "optimal"
    );
    for family in [Family::Gnp, Family::Grid, Family::ScaleFree] {
        for &n in &cfg.sizes {
            for seed in 0..cfg.seeds {
                let inst = instance(family, n, seed);
                let g = &inst.graph;
                let root = NodeId(0);
                let tree = OutTree::shortest_paths(g, root);
                let router = TreeRouter::build(&tree);

                let nn = g.node_count();
                let max_label_bits =
                    g.nodes().filter_map(|v| router.label(v)).map(|l| l.bits(nn)).max().unwrap();
                let log2n = (nn as f64).log2();

                // Verify optimality by driving every label from the root.
                let mut optimal = true;
                for v in g.nodes() {
                    let label = router.label(v).unwrap().clone();
                    let mut at = root;
                    let mut weight = 0u64;
                    loop {
                        match router.step_at(at, &label) {
                            TreeStep::Deliver => break,
                            TreeStep::Forward(port) => {
                                let e = g.edge_by_port(at, port).unwrap();
                                weight += e.weight;
                                at = e.to;
                            }
                            TreeStep::NotInSubtree => panic!("lost the subtree"),
                        }
                    }
                    if weight != tree.distance(v) {
                        optimal = false;
                    }
                }

                println!(
                    "{:<12} {:>6} {:>6} {:>12} {:>10.0} {:>12} {:>12.1} {:>10}",
                    inst.family,
                    nn,
                    seed,
                    max_label_bits,
                    log2n * log2n,
                    router.max_light_depth(),
                    log2n,
                    optimal
                );
                assert!(optimal, "tree routing produced a suboptimal route");
                assert!(router.max_light_depth() as f64 <= log2n);
            }
        }
    }
}
