//! Experiment E4 — Theorem 9: the exponential-tradeoff scheme. Sweeps the
//! digit count `k`, reporting measured stretch against the `(2^k − 1)·β`
//! bound (β = 1 for the oracle substrate, β = 4(2k_c−1) for the tree-cover
//! substrate) and dictionary size against n^{1/k}.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{ExStretch, ExStretchParams};
use rtr_graph::generators::Family;
use rtr_namedep::{ExactOracleScheme, NameDependentSubstrate, TreeCoverScheme};

fn main() {
    let cfg = ExperimentConfig::from_env(&[128, 256], 1, 2500);

    banner("E4: ExStretch with the exact-oracle substrate (bound 2^k - 1)");
    println!(
        "{:<6} {:>4} {:>9} {:>9} {:>9} {:>8} {:>12} {:>10}",
        "n", "k", "avg-str", "p95-str", "max-str", "bound", "max-entries", "n^(1/k)"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 11);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        for k in [2u32, 3, 4, 5] {
            let scheme = ExStretch::build(
                g,
                m,
                names,
                ExactOracleScheme::build(g),
                ExStretchParams::with_k(k),
            );
            let eval = SchemeEvaluation::measure(g, m, names, &scheme, cfg.selection(n, k as u64))
                .unwrap();
            let bound = (1u64 << k) - 1;
            assert!(eval.max_stretch <= bound as f64 + 1e-9);
            let max_dict = g.nodes().map(|v| scheme.dictionary_stats(v).entries).max().unwrap();
            println!(
                "{:<6} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>12} {:>10.1}",
                n,
                k,
                eval.avg_stretch,
                eval.p95_stretch,
                eval.max_stretch,
                bound,
                max_dict,
                (n as f64).powf(1.0 / k as f64)
            );
        }
    }

    banner("E4b: ExStretch with the compact tree-cover substrate (bound (2^k-1)*beta)");
    println!(
        "{:<6} {:>4} {:>6} {:>9} {:>9} {:>10} {:>12}",
        "n", "k", "beta", "avg-str", "max-str", "bound", "max-entries"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 12);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        for k in [2u32, 3] {
            let substrate = TreeCoverScheme::build(g, m, 2);
            let beta = substrate.guaranteed_roundtrip_stretch().unwrap();
            let scheme = ExStretch::build(g, m, names, substrate, ExStretchParams::with_k(k));
            let eval = SchemeEvaluation::measure(g, m, names, &scheme, cfg.selection(n, k as u64))
                .unwrap();
            let bound = scheme.paper_stretch_bound().expect("tree-cover β is proven") as f64;
            assert!(eval.max_stretch <= bound + 1e-9);
            println!(
                "{:<6} {:>4} {:>6.1} {:>9.3} {:>9.3} {:>10.1} {:>12}",
                n, k, beta, eval.avg_stretch, eval.max_stretch, bound, eval.max_table_entries
            );
        }
    }
}
