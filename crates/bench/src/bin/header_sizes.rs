//! Experiment E12 — header sizes: the largest packet header each scheme ever
//! writes, against the paper's `O(log² n)` (stretch-6, polynomial) and
//! `o(k·log² n)` (exponential) accounting.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{
    ExStretch, ExStretchParams, PolyParams, PolynomialStretch, Stretch6Params, StretchSix,
};
use rtr_graph::generators::Family;
use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams};
use rtr_sim::id_bits;

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256, 512], 1, 1500);

    banner("E12: maximum header bits per scheme");
    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>14}",
        "scheme", "n", "max-hdr-bits", "log^2(n)", "k*log^2(n)"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 55);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        let selection = cfg.selection(g.node_count(), 9);
        let word = id_bits(g.node_count());
        let log2 = (word * word) as u64;

        let s6 = StretchSix::build(
            g,
            m,
            names,
            LandmarkBallScheme::build(g, m, LandmarkParams::default()),
            Stretch6Params::default(),
        );
        let eval = SchemeEvaluation::measure(g, m, names, &s6, selection).unwrap();
        println!(
            "{:<16} {:>6} {:>14} {:>12} {:>14}",
            "s6/landmark", n, eval.max_header_bits, log2, "-"
        );

        let k = 3u32;
        let ex =
            ExStretch::build(g, m, names, ExactOracleScheme::build(g), ExStretchParams::with_k(k));
        let eval = SchemeEvaluation::measure(g, m, names, &ex, selection).unwrap();
        println!(
            "{:<16} {:>6} {:>14} {:>12} {:>14}",
            "ex-k3/oracle",
            n,
            eval.max_header_bits,
            log2,
            k as u64 * log2
        );

        let poly = PolynomialStretch::build(g, m, names, PolyParams::with_k(2));
        let eval = SchemeEvaluation::measure(g, m, names, &poly, selection).unwrap();
        println!(
            "{:<16} {:>6} {:>14} {:>12} {:>14}",
            "poly-k2", n, eval.max_header_bits, log2, "-"
        );
        println!();
    }
}
