//! E14 — network serving throughput: put the §2 sparse plane behind the
//! `rtr-serve` TCP front door on loopback, drive it with a mixed
//! batch/single client fleet, and prove the **bit-identity** acceptance
//! property: the network session's [`VerifiedReport`] equals (a) the
//! `REPORT` frame fetched over the wire and (b) one in-process
//! `serve_verified_sharded` call over the exact request stream the server
//! admitted — byte for byte, regardless of network arrival order.
//!
//! The run also gates the verification plane's row economy end to end: the
//! server's verify oracle (telemetry scope `verify`, cache `2n`) must
//! compute at most `2·distinct(destinations) + 2·shards` rows even though
//! queries arrive interleaved over `RTR_CLIENTS` sockets — the serving
//! core's per-shard destination buckets are what keep that true.  The
//! `/metrics` endpoint's JSON is captured **over the wire** and written as
//! the telemetry artifact, so `check_telemetry` cross-checks the network
//! capture exactly like an in-process export; the run additionally
//! cross-checks it inline against the oracle's own stats before exiting.
//!
//! Headline numbers land in a [`ServeBaseline`] artifact
//! (`BENCH_serve_net.json`, gated in CI against `ci/BENCH_serve_net.json`
//! by `check_serve_baseline`): throughput is warn-only (loopback wall is a
//! host property), while table footprint, verified coverage, distinct
//! destinations and verify rows gate hard.  Per-endpoint p50/p95/p99
//! latency comes from the `serve.net.*_ns` `DurationHistogram`s.
//!
//! Environment: `RTR_N` (default 600), `RTR_QUERIES` **total** across the
//! fleet (default 30 000), `RTR_CLIENTS` (default 6; even ids send `BATCH`
//! frames, odd ids single `ROUTE` frames), `RTR_BATCH` queries per batch
//! frame (default 64), `RTR_WORKERS` (default 4), `RTR_SHARDS` (default 4),
//! `RTR_SHARD_POLICY` (`hash` | `range`), `RTR_SEED` (default 42),
//! `RTR_CACHE` build-oracle rows (default `n/50`), `RTR_VERIFY_CACHE`
//! (default `2n` — at that size verify rows are exactly `2·distinct`, so
//! the baseline gate is deterministic), `RTR_INFLIGHT` admission budget
//! (default 16 384 — high enough that a gated run rejects nothing; the
//! overload path is exercised by the `rtr-serve` tests), `RTR_BENCH_JSON`
//! (default `BENCH_serve_net.json`) and `RTR_TELEMETRY_JSON` (default
//! `BENCH_telemetry_net.json`).

use rtr_bench::banner;
use rtr_bench::baseline::{JsonValue, SchemeBaseline, ServeBaseline};
use rtr_core::naming::NamingAssignment;
use rtr_core::{SparseSchemeSuite, SparseSuiteParams};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, Request, ShardMap, ShardedPlane, VerifiedReport,
    VerifyConfig, Workload,
};
use rtr_graph::generators::ring_with_chords;
use rtr_graph::NodeId;
use rtr_metric::LazyDijkstraOracle;
use rtr_serve::{Client, ServeConfig};
use rtr_sim::RoundtripRouting;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// `(total table bytes, worst-node bits)` for the baseline artifact — the
/// same sum `serve_throughput` reports.
fn table_footprint<S: RoundtripRouting>(plane: &FrozenPlane<S>) -> (u64, u64) {
    let mut total_bits: u128 = 0;
    let mut max_node_bits = 0usize;
    for v in (0..plane.node_count()).map(NodeId::from_index) {
        let stats = plane.scheme().table_stats(v);
        total_bits += stats.bits as u128;
        max_node_bits = max_node_bits.max(stats.bits);
    }
    ((total_bits / 8) as u64, max_node_bits as u64)
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let n = env_usize("RTR_N", 600);
    let total = env_usize("RTR_QUERIES", 30_000);
    let clients = env_usize("RTR_CLIENTS", 6).max(1);
    let batch = env_usize("RTR_BATCH", 64).max(1);
    let workers = env_usize("RTR_WORKERS", 4);
    let cache_rows = env_usize("RTR_CACHE", (n / 50).max(16));
    let seed = env_usize("RTR_SEED", 42) as u64;
    let verify_cache = env_usize("RTR_VERIFY_CACHE", (2 * n).max(64));
    let shards = env_usize("RTR_SHARDS", 4).max(1);
    let inflight = env_usize("RTR_INFLIGHT", 16_384);
    let shard_map = match std::env::var("RTR_SHARD_POLICY").as_deref() {
        Err(_) | Ok("hash") => ShardMap::hashed(n, shards, seed),
        Ok("range") => ShardMap::range(n, shards),
        Ok(other) => panic!("RTR_SHARD_POLICY must be hash|range, got {other}"),
    };
    let shard_policy = shard_map.policy().name().to_string();

    banner(&format!(
        "E14: network serving, n = {n}, {total} queries over {clients} clients \
         (batch {batch}), {workers} workers, {shards} shards ({shard_policy})"
    ));
    let t0 = Instant::now();
    let g = Arc::new(ring_with_chords(n, 3 * n, seed).expect("generator failed"));
    println!("graph: n = {}, m = {} ({:.1?})", g.node_count(), g.edge_count(), t0.elapsed());

    let oracle = LazyDijkstraOracle::new(&g, cache_rows);
    let names = NamingAssignment::random(n, seed ^ 0x517e);
    let t1 = Instant::now();
    let suite = SparseSchemeSuite::build(&g, &oracle, &names, SparseSuiteParams::default());
    let build_stats = oracle.stats();
    println!(
        "sparse suite built in {:.1?} (rows computed {} = {:.2}·n)",
        t1.elapsed(),
        build_stats.rows_computed,
        build_stats.rows_computed as f64 / n as f64
    );
    // Only the §2 plane goes behind the socket; the other suite members are
    // covered by E13.
    let (stretch6, _exstretch, _poly) = suite.into_parts();
    let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::new(names.to_names()));
    let (table_bytes, worst_node_bits) = table_footprint(&plane6);
    let scheme_name = plane6.scheme_name().to_string();
    let sharded = ShardedPlane::new(plane6, shard_map);

    // Per-client request streams: deterministic, one workload flavour per
    // client, totalling exactly `total` queries.
    let per_client: Vec<Vec<Request>> = (0..clients)
        .map(|c| {
            let count = total / clients + usize::from(c < total % clients);
            Workload::ALL[c % Workload::ALL.len()].generate(n, count, seed ^ (0xc11e00 + c as u64))
        })
        .collect();
    let mut destination_seen = vec![false; n];
    for requests in &per_client {
        for r in requests {
            destination_seen[r.dst.index()] = true;
        }
    }
    let distinct_destinations = destination_seen.iter().filter(|&&s| s).count();
    // Published before the wire capture so the network `/metrics` artifact
    // carries it for `check_telemetry`.
    rtr_telemetry::gauge("serve.distinct_destinations").set(distinct_destinations as u64);

    let engine = Engine::new(EngineConfig::with_workers(workers));
    let verify_oracle = LazyDijkstraOracle::new(&g, verify_cache).with_telemetry_scope("verify");
    let serve_config = ServeConfig { inflight_max: inflight, ..ServeConfig::default() };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);

    banner("loopback serving (full verification in-pass)");
    let served_log: Mutex<Vec<(u64, u32, u32)>> = Mutex::new(Vec::with_capacity(total));
    let mut fleet_wall = Duration::ZERO;
    let (outcome, wire_report, wire_metrics) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            rtr_serve::serve(
                listener,
                &engine,
                &sharded,
                &verify_oracle,
                &VerifyConfig::full(),
                &serve_config,
                &shutdown,
            )
        });
        let fleet_started = Instant::now();
        std::thread::scope(|fleet| {
            for (c, requests) in per_client.iter().enumerate() {
                let served_log = &served_log;
                fleet.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut log = Vec::with_capacity(requests.len());
                    if c % 2 == 0 {
                        for chunk in requests.chunks(batch) {
                            let pairs: Vec<(u32, u32)> =
                                chunk.iter().map(|r| (r.src.0, r.dst.0)).collect();
                            let routes = client.batch(&pairs).expect("batch frame");
                            for (route, &(src, dst)) in routes.iter().zip(&pairs) {
                                log.push((route.index, src, dst));
                            }
                        }
                    } else {
                        for r in requests {
                            let route = client.route(r.src.0, r.dst.0).expect("route frame");
                            log.push((route.index, r.src.0, r.dst.0));
                        }
                    }
                    served_log.lock().unwrap().extend_from_slice(&log);
                });
            }
        });
        fleet_wall = fleet_started.elapsed();
        let mut control = Client::connect(addr).expect("control connect");
        let report = control.report().expect("REPORT frame");
        let metrics = control.metrics().expect("METRICS frame");
        control.shutdown().expect("SHUTDOWN frame");
        let outcome = server.join().expect("server panicked").expect("serve failed");
        (outcome, report, metrics)
    });
    println!(
        "fleet done in {fleet_wall:.1?}: {} queries/s over the wire ({} connections, {} frames, \
         {} served, {} rejected)",
        (total as f64 / fleet_wall.as_secs_f64()).round(),
        outcome.connections,
        outcome.frames,
        outcome.served,
        outcome.rejected
    );
    if outcome.served != total as u64 || outcome.rejected != 0 {
        fail(&format!(
            "expected {total} served / 0 rejected, got {} / {} — raise RTR_INFLIGHT for gated runs",
            outcome.served, outcome.rejected
        ));
    }

    // Reconstruct the exact admission-ordered stream from the returned
    // indices: every index in 0..total exactly once, or the front door
    // dropped or duplicated work.
    let log = served_log.into_inner().unwrap();
    let mut stream: Vec<Option<Request>> = vec![None; total];
    for &(index, src, dst) in &log {
        let slot = stream
            .get_mut(index as usize)
            .unwrap_or_else(|| fail(&format!("returned index {index} out of range")));
        if slot.is_some() {
            fail(&format!("index {index} returned twice"));
        }
        *slot = Some(Request { src: NodeId(src), dst: NodeId(dst) });
    }
    let stream: Vec<Request> = stream
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| fail(&format!("no reply carried stream index {i}"))))
        .collect();

    // Row-economy gate: network arrival order must not break the per-shard
    // destination buckets.
    let vstats = verify_oracle.stats();
    let row_budget = 2 * distinct_destinations + 2 * shards;
    println!(
        "verify oracle over the wire: rows computed {}, cache hits {}, peak resident {} \
         ({distinct_destinations} distinct destinations, budget {row_budget})",
        vstats.rows_computed, vstats.cache_hits, vstats.peak_resident_rows
    );
    if vstats.rows_computed > row_budget {
        fail(&format!(
            "verification computed {} oracle rows over the wire, budget \
             2·distinct + 2·shards = {row_budget}",
            vstats.rows_computed
        ));
    }

    // The acceptance property: serve the reconstructed stream in one
    // in-process call (fresh, unscoped verify oracle so the wire-captured
    // `oracle.verify.*` counters stay untouched) and demand bit-identity.
    banner("bit-identity cross-check");
    let cmp_oracle = LazyDijkstraOracle::new(&g, verify_cache);
    let in_process = engine
        .serve_verified_sharded(&sharded, &stream, &cmp_oracle, &VerifyConfig::full())
        .expect("in-process serve failed");
    let net_report: &VerifiedReport = &outcome.verified.report;
    if net_report != &in_process.report {
        fail("network session report differs from the in-process serve of the same stream");
    }
    if wire_report != in_process.report {
        fail("REPORT frame differs from the in-process serve of the same stream");
    }
    for (net, local) in outcome.verified.shards.iter().zip(&in_process.shards) {
        if net.queries != local.queries {
            fail(&format!(
                "shard {} served {} queries over the wire but {} in-process",
                net.shard, net.queries, local.queries
            ));
        }
    }
    println!(
        "bit-identity ok: wire REPORT == session report == in-process report \
         ({} queries, {} checked, max stretch {:.3})",
        net_report.queries,
        net_report.checked,
        net_report.max_stretch()
    );

    // The wire-captured `/metrics` JSON must agree with the oracle's own
    // stats — the same exactness `check_telemetry` enforces in CI on the
    // written artifact.
    let telemetry = JsonValue::parse(&wire_metrics).expect("wire metrics JSON parses");
    let wire_rows = telemetry
        .field("counters")
        .and_then(|c| match c.field_opt("oracle.verify.rows_computed") {
            Some(v) => v.as_u64(),
            None => Ok(0),
        })
        .expect("counter decodes");
    if wire_rows != vstats.rows_computed as u64 {
        fail(&format!(
            "wire /metrics says oracle.verify.rows_computed = {wire_rows}, the oracle says {}",
            vstats.rows_computed
        ));
    }
    println!("wire /metrics cross-check ok: verify rows {wire_rows}");

    banner("endpoint latency (p50/p95/p99, from serve.net.*_ns histograms)");
    for (label, name) in [
        ("route", "serve.net.route_ns"),
        ("batch", "serve.net.batch_ns"),
        ("report", "serve.net.report_ns"),
        ("metrics", "serve.net.metrics_ns"),
    ] {
        let h = rtr_telemetry::histogram(name);
        if h.count() == 0 {
            continue;
        }
        println!(
            "  {label:<8} {:>8.1}µs {:>8.1}µs {:>8.1}µs  ({} frames)",
            h.percentile_ns(0.50) as f64 / 1e3,
            h.percentile_ns(0.95) as f64 / 1e3,
            h.percentile_ns(0.99) as f64 / 1e3,
            h.count()
        );
    }

    let summary = &outcome.verified.summary;
    let artifact = ServeBaseline {
        n,
        queries_per_workload: total, // the fleet total: one net stream, not per-workload
        seed,
        stretch_samples: 0,
        cache_rows,
        verify_mode: "full".to_string(),
        shards,
        shard_policy,
        build_rows_computed: build_stats.rows_computed,
        peak_resident_rows: build_stats.peak_resident_rows,
        verify_rows_computed: vstats.rows_computed as u64,
        distinct_destinations: distinct_destinations as u64,
        worker_sweep: Vec::new(),
        schemes: vec![SchemeBaseline {
            scheme: scheme_name,
            table_bytes,
            worst_node_bits,
            worst_sampled_stretch: net_report.max_stretch(),
            min_queries_per_sec: total as f64 / fleet_wall.as_secs_f64(),
            verified_queries: net_report.checked as u64,
            verify_violations: net_report.violations.len() as u64,
            worst_verified_stretch: net_report.max_stretch(),
        }],
    };
    println!(
        "engine summary: {} queries at {:.0}/s inside the core, avg hops {:.2}",
        summary.queries,
        summary.queries_per_sec(),
        summary.avg_hops()
    );
    let json_path =
        std::env::var("RTR_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve_net.json".to_string());
    std::fs::write(&json_path, artifact.to_json())
        .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    println!("baseline artifact written to {json_path}");
    let telemetry_path = std::env::var("RTR_TELEMETRY_JSON")
        .unwrap_or_else(|_| "BENCH_telemetry_net.json".to_string());
    // The artifact is the *network capture*, byte for byte — not a local
    // re-export — so CI's check_telemetry gates what a client actually saw.
    std::fs::write(&telemetry_path, &wire_metrics)
        .unwrap_or_else(|e| panic!("writing {telemetry_path}: {e}"));
    println!("wire-captured telemetry artifact written to {telemetry_path}");
    println!("total wall-clock: {:.1?}", t0.elapsed());
}
