//! Experiment E2 — the §2 theorem: the stretch-6 scheme on a size sweep over
//! several graph families. Reports the stretch distribution (must stay ≤ 6
//! with the oracle substrate) and table-size scaling against √n·log n.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{Stretch6Params, StretchSix};
use rtr_graph::generators::Family;
use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams};

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256, 512], 2, 2500);

    banner("E2: stretch-6 scheme, oracle substrate (hard bound: 6)");
    println!(
        "{:<12} {:>6} {:>8} {:>9} {:>9} {:>9} {:>12} {:>14}",
        "family", "n", "seed", "avg-str", "p95-str", "max-str", "max-entries", "sqrt(n)*log(n)"
    );
    for family in [Family::Gnp, Family::Grid, Family::RingChords, Family::ScaleFree] {
        for &n in &cfg.sizes {
            for seed in 0..cfg.seeds {
                let inst = instance(family, n, seed);
                let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
                let scheme = StretchSix::build(
                    g,
                    m,
                    names,
                    ExactOracleScheme::build(g),
                    Stretch6Params::default(),
                );
                let eval = SchemeEvaluation::measure(
                    g,
                    m,
                    names,
                    &scheme,
                    cfg.selection(g.node_count(), seed),
                )
                .unwrap();
                let max_dict = g.nodes().map(|v| scheme.dictionary_stats(v).entries).max().unwrap();
                let reference =
                    ((g.node_count() as f64).sqrt() * (g.node_count() as f64).ln()).ceil() as usize;
                assert!(eval.max_stretch <= 6.0 + 1e-9, "stretch-6 bound violated");
                println!(
                    "{:<12} {:>6} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>12} {:>14}",
                    inst.family,
                    g.node_count(),
                    seed,
                    eval.avg_stretch,
                    eval.p95_stretch,
                    eval.max_stretch,
                    max_dict,
                    reference
                );
            }
        }
    }

    banner("E2b: stretch-6 scheme, compact landmark substrate (measured end-to-end)");
    println!(
        "{:<12} {:>6} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "family", "n", "avg-str", "p95-str", "max-str", "max-entries", "max-bits"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 7);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        let scheme = StretchSix::build(
            g,
            m,
            names,
            LandmarkBallScheme::build(g, m, LandmarkParams::default()),
            Stretch6Params::default(),
        );
        let eval = SchemeEvaluation::measure(g, m, names, &scheme, cfg.selection(n, 3)).unwrap();
        println!(
            "{:<12} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>12} {:>12}",
            inst.family,
            g.node_count(),
            eval.avg_stretch,
            eval.p95_stretch,
            eval.max_stretch,
            eval.max_table_entries,
            eval.max_table_bits
        );
    }
}
