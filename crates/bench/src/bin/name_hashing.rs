//! Experiment E11 — the §1.1.2 name-independence reduction: hash arbitrary
//! 64-bit names into `{0, …, n−1}` and measure the collision buckets and the
//! constant table blow-up the paper claims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_bench::{banner, ExperimentConfig};
use rtr_dictionary::naming::NameRegistry;

fn main() {
    let cfg = ExperimentConfig::from_env(&[256, 1024, 4096, 16384], 5, 0);

    banner("E11: name hashing reduction (universal hashing into {0..n-1})");
    println!(
        "{:>8} {:>6} {:>14} {:>16} {:>16} {:>10}",
        "n", "seed", "max-bucket", "collision-slots", "excess-entries", "blowup"
    );
    for &n in &cfg.sizes {
        for seed in 0..cfg.seeds {
            // Adversarial-ish original names: clustered 64-bit values.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut names: Vec<u64> = Vec::with_capacity(n);
            let mut used = std::collections::HashSet::new();
            while names.len() < n {
                let base: u64 = rng.gen_range(0..1u64 << 40) << 20;
                let x = base + rng.gen_range(0..1024u64);
                if used.insert(x) {
                    names.push(x);
                }
            }
            let reg = NameRegistry::new(&names, seed ^ 0xdead_beef).unwrap();
            println!(
                "{:>8} {:>6} {:>14} {:>16} {:>16} {:>10.3}",
                n,
                seed,
                reg.max_bucket_size(),
                reg.collision_slots(),
                reg.excess_entries(),
                reg.blowup()
            );
        }
    }
    println!("(blowup is 1.0 by construction: every original name is stored exactly once;\n the per-slot bucket sizes above are the constant factor the paper refers to)");
}
