//! Experiment E3 — Lemma 1 / Lemma 4 and Fig. 2: the randomized block
//! distribution. Verifies coverage from scratch and reports blocks per node
//! against the O(log n) guarantee, plus the number of repair insertions.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_dictionary::{AddressSpace, BlockDistribution, DistributionParams};
use rtr_graph::generators::Family;
use rtr_metric::RoundtripOrder;

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 144, 256, 400], 3, 0);

    banner("E3: block distribution (Lemma 1: k=2, Lemma 4: k=3,4)");
    println!(
        "{:<8} {:>6} {:>4} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "family", "n", "k", "seed", "max|S_v|", "avg|S_v|", "4ln(n)", "repairs", "covered"
    );
    for family in [Family::Gnp, Family::Grid] {
        for &n in &cfg.sizes {
            for k in [2u32, 3, 4] {
                for seed in 0..cfg.seeds {
                    let inst = instance(family, n, seed);
                    let order = RoundtripOrder::build(&inst.metric);
                    let space = AddressSpace::new(inst.graph.node_count(), k);
                    let dist = BlockDistribution::build(
                        space,
                        &order,
                        DistributionParams { density: 4.0, seed },
                    );
                    let covered = dist.verify_coverage(&order);
                    assert!(covered, "Lemma 4 coverage violated");
                    println!(
                        "{:<8} {:>6} {:>4} {:>6} {:>9} {:>9.2} {:>9.1} {:>9} {:>9}",
                        inst.family,
                        inst.graph.node_count(),
                        k,
                        seed,
                        dist.max_set_size(),
                        dist.avg_set_size(),
                        4.0 * (inst.graph.node_count() as f64).ln(),
                        dist.repair_count(),
                        covered
                    );
                }
            }
        }
    }
}
